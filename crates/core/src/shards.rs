//! Sharded engine: N independent [`Db`] shards behind one handle.
//!
//! A single [`Db`] serializes writes on one writer lock and runs all
//! background work on one scheduler — one core's worth of ceiling no
//! matter the hardware. [`DbShards`] removes that ceiling the standard
//! way: the key space is hash-partitioned across `N` fully independent
//! engines (each with its own WAL, memtables, index tree, value store,
//! and GC runner), so writes to different shards never contend and
//! flush/compaction/GC run per shard — fanned across the
//! [`gc_threads`](crate::Options::gc_threads) pool by the maintenance
//! entry points, which is where multi-core finally pays off.
//!
//! What stays **global**:
//!
//! * **Routing** — a seeded, platform-independent hash of the user key
//!   picks the shard. The `(shard count, seed)` pair is persisted in a
//!   `SHARDS` meta file at first open and re-loaded on reopen, so a key
//!   always routes to the shard that owns its data; reopening with a
//!   different shard count is refused rather than silently misrouting.
//! * **The block cache** — one 16-way-sharded [`BlockCache`] is handed
//!   to every shard, so a single memory budget serves the whole store.
//!   (Table-*reader* caches stay per shard: file numbers are per-shard
//!   namespaces. The block cache is where the memory lives.)
//! * **The space budget** — one [`Throttle`] with the §III-D limit is
//!   shared by all shards, and each shard's admission check compares the
//!   limit against the *sum* of all shard footprints. A shard that finds
//!   the store over budget reclaims locally (aggressive GC + forced
//!   compaction) until the global total is back under.
//!
//! Reads compose naturally: [`get`](DbShards::get) routes to one shard;
//! [`scan`](DbShards::scan) runs a k-way ordered merge over per-shard
//! iterators (hash partitioning makes shard streams disjoint, so the
//! merge is a pure min-heads pick); [`view`](DbShards::view) /
//! [`snapshot`](DbShards::snapshot) pin one registered view per shard as
//! a coordinated set. Each member view is strictly consistent for its
//! shard; the set is taken at one call site, which is as much cross-shard
//! ordering as a store without a global sequence can promise —
//! single-key consistency is exactly [`Db`]'s.
//!
//! Multi-shard batch writes are **crash-atomic across shards**: a
//! two-phase-commit coordinator log at the store root records the full
//! redo payload before any shard is touched, and recovery at open rolls
//! prepared-but-uncommitted batches forward (see [`crate::txn`]).
//! Single-shard batches skip the coordinator entirely — the common case
//! pays zero extra I/O.

use crate::db::{Db, DbScanIter, ScanEntry};
use crate::engine::GcReport;
use crate::options::{knob_setters, Options};
use crate::stats::{DbStats, GcStepTimes, SpaceBreakdown};
use crate::throttle::Throttle;
use crate::txn::{Coordinator, TxnCounters};
use crate::view::{ReadOptions, ReadPin, ReadView, Snapshot, WriteOptions, WriteReceipt};
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::usage::UsageEnv;
use scavenger_env::IoClass;
use scavenger_lsm::WriteBatch;
use scavenger_table::btable::BlockCache;
use scavenger_util::ikey::ValueType;
use scavenger_util::{Error, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Options for opening a [`DbShards`].
///
/// `base` configures every shard identically (mode, feature toggles,
/// tuning); its `dir` is the *root* directory — shard `i` lives under
/// `dir/shard-NNN`. `base.space_limit` is interpreted as the **global**
/// budget across all shards.
#[derive(Clone)]
pub struct ShardedOptions {
    /// Per-shard engine options; `dir` is the sharded store's root.
    pub base: Options,
    /// Number of shards (1 ..= 256). Fixed at first open: the key →
    /// shard mapping is persisted, and reopening with a different count
    /// is refused.
    pub num_shards: usize,
    /// Seed for the routing hash. Only consulted at *first* open (then
    /// persisted); reopen uses the stored seed so routing never moves.
    pub route_seed: u64,
}

impl ShardedOptions {
    /// Scaled defaults: 4 shards over [`Options::new`].
    pub fn new(
        env: scavenger_env::EnvRef,
        dir: impl Into<String>,
        mode: crate::options::EngineMode,
    ) -> ShardedOptions {
        ShardedOptions {
            base: Options::new(env, dir, mode),
            num_shards: 4,
            route_seed: 0x5ca7_e26e,
        }
    }

    /// Typed builder over [`ShardedOptions::new`] — the sharded twin of
    /// [`Options::builder`](crate::Options::builder), carrying the same
    /// per-shard knob setters plus the shard-layer ones.
    ///
    /// ```
    /// use scavenger::{DbShards, EngineMode, MemEnv, ShardedOptions};
    ///
    /// let db: DbShards = ShardedOptions::builder(MemEnv::shared(), "sb-demo", EngineMode::Scavenger)
    ///     .num_shards(2)
    ///     .gc_threads(2)
    ///     .memtable_size(32 * 1024)
    ///     .open()
    ///     .unwrap();
    /// assert_eq!(db.num_shards(), 2);
    /// ```
    pub fn builder(
        env: scavenger_env::EnvRef,
        dir: impl Into<String>,
        mode: crate::options::EngineMode,
    ) -> ShardedOptionsBuilder {
        ShardedOptionsBuilder {
            sharded: ShardedOptions::new(env, dir, mode),
        }
    }
}

/// Typed builder for [`ShardedOptions`], created by
/// [`ShardedOptions::builder`]. Shard-layer knobs
/// ([`num_shards`](ShardedOptionsBuilder::num_shards),
/// [`route_seed`](ShardedOptionsBuilder::route_seed)) live next to the
/// full per-shard knob set (applied to [`ShardedOptions::base`]), so a
/// sharded store is configured in one fluent chain ending in
/// [`build`](ShardedOptionsBuilder::build) or
/// [`open`](ShardedOptionsBuilder::open).
#[derive(Clone)]
pub struct ShardedOptionsBuilder {
    sharded: ShardedOptions,
}

impl ShardedOptionsBuilder {
    /// Number of shards (1 ..= 256); fixed at first open.
    #[must_use]
    pub fn num_shards(mut self, n: usize) -> Self {
        self.sharded.num_shards = n;
        self
    }

    /// Routing-hash seed, consulted only at first open (then persisted).
    #[must_use]
    pub fn route_seed(mut self, seed: u64) -> Self {
        self.sharded.route_seed = seed;
        self
    }

    /// Replace the whole per-shard base [`Options`] at once. This
    /// overwrites **every** per-shard knob, including any set earlier
    /// in the chain — when combining it with the individual setters
    /// below, call `base(...)` *first* and tweak fields after. Note
    /// that [`DbShards::open`] installs its own shared throttle and
    /// set-wide space-usage source on every shard, so
    /// `shared_throttle` / `space_usage` carried by `base` are
    /// overwritten (which is also why this builder has no setters for
    /// them).
    #[must_use]
    pub fn base(mut self, base: Options) -> Self {
        self.sharded.base = base;
        self
    }

    knob_setters!([sharded.base]);

    /// Finish the chain: the configured [`ShardedOptions`].
    pub fn build(self) -> ShardedOptions {
        self.sharded
    }

    /// Build and open the sharded store in one step.
    pub fn open(self) -> Result<DbShards> {
        DbShards::open(self.build())
    }
}

/// The persisted routing contract: shard count + hash seed, written to
/// `<root>/SHARDS` at first open and authoritative from then on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardMeta {
    shards: usize,
    seed: u64,
}

const META_MAGIC: &str = "scavenger-shards v1";

impl ShardMeta {
    fn encode(&self) -> String {
        format!(
            "{META_MAGIC}\nshards={}\nseed={:#018x}\n",
            self.shards, self.seed
        )
    }

    fn decode(data: &[u8]) -> Result<ShardMeta> {
        let text =
            std::str::from_utf8(data).map_err(|_| Error::corruption("SHARDS meta is not UTF-8"))?;
        let mut lines = text.lines();
        if lines.next() != Some(META_MAGIC) {
            return Err(Error::corruption("SHARDS meta has wrong magic"));
        }
        let mut shards = None;
        let mut seed = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("shards=") {
                shards = v.parse::<usize>().ok();
            } else if let Some(v) = line.strip_prefix("seed=") {
                let v = v.strip_prefix("0x").unwrap_or(v);
                seed = u64::from_str_radix(v, 16).ok();
            }
        }
        match (shards, seed) {
            (Some(shards), Some(seed)) if shards >= 1 => Ok(ShardMeta { shards, seed }),
            _ => Err(Error::corruption("SHARDS meta is malformed")),
        }
    }
}

/// Directory of shard `index` under `root`.
fn shard_dir(root: &str, index: usize) -> String {
    format!("{root}/shard-{index:03}")
}

/// Route a user key to a shard: seeded FNV-1a over the key bytes with a
/// splitmix-style finalizer. Pure integer arithmetic — byte-for-byte
/// stable across platforms, builds, and process restarts, which is what
/// makes the persisted `(count, seed)` pair sufficient for reopen-stable
/// placement.
fn route(seed: u64, key: &[u8], num_shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % num_shards as u64) as usize
}

struct ShardsInner {
    shards: Vec<Db>,
    meta: ShardMeta,
    root: String,
    env: scavenger_env::EnvRef,
    throttle: Arc<Throttle>,
    cache: Arc<BlockCache>,
    /// Cross-shard maintenance fan-out width (from `base.gc_threads`).
    maintenance_threads: usize,
    /// Two-phase-commit log for multi-shard batches (see [`crate::txn`]).
    coord: Coordinator,
    /// Serializes optimistic-transaction commits: validation and apply
    /// happen under this lock, so committed transactions serialize
    /// against each other even when they span shards.
    txn_lock: Mutex<()>,
    /// Optimistic-transaction commit/conflict counters (shard-set level;
    /// the per-shard `Db` counters stay zero — commits route here).
    txn: TxnCounters,
}

impl ShardsInner {
    fn shard_of(&self, key: &[u8]) -> usize {
        route(self.meta.seed, key, self.meta.shards)
    }
}

/// A sharded Scavenger store: one handle over `N` hash-partitioned
/// [`Db`] shards (cheaply cloneable).
///
/// ```
/// use scavenger::{DbShards, EngineMode, MemEnv, ShardedOptions};
///
/// let opts = ShardedOptions::new(MemEnv::shared(), "sharded-demo", EngineMode::Scavenger);
/// let db = DbShards::open(opts).unwrap();
/// for i in 0..32 {
///     db.put(format!("user{i:02}"), vec![i as u8; 1024]).unwrap();
/// }
/// db.flush().unwrap();
/// // Point reads route to one shard; scans merge all shards in key order.
/// assert_eq!(db.get(b"user07").unwrap().unwrap().len(), 1024);
/// let mut it = db.scan(b"user00", Some(b"user10")).unwrap();
/// let entries = it.collect_n(usize::MAX).unwrap();
/// assert_eq!(entries.len(), 10);
/// assert!(entries.windows(2).all(|w| w[0].key < w[1].key));
/// ```
#[derive(Clone)]
pub struct DbShards {
    inner: Arc<ShardsInner>,
}

impl DbShards {
    /// Open (or recover) a sharded store.
    ///
    /// First open persists the `(num_shards, route_seed)` routing
    /// contract to `<root>/SHARDS`; later opens load the stored seed
    /// (the caller's `route_seed` is ignored) and refuse a mismatched
    /// shard count instead of silently re-routing keys away from their
    /// data.
    pub fn open(opts: ShardedOptions) -> Result<DbShards> {
        if opts.num_shards == 0 || opts.num_shards > 256 {
            return Err(Error::internal(format!(
                "num_shards must be in 1..=256, got {}",
                opts.num_shards
            )));
        }
        let env = opts.base.env.clone();
        let root = opts.base.dir.clone();
        env.create_dir_all(&root)?;
        let meta_path = format!("{root}/SHARDS");
        let meta = if env.file_exists(&meta_path) {
            let stored = ShardMeta::decode(&env.read_file(&meta_path, IoClass::Other)?)?;
            if stored.shards != opts.num_shards {
                return Err(Error::internal(format!(
                    "store was created with {} shards, reopened with {} — \
                     hash routing would move keys away from their data",
                    stored.shards, opts.num_shards
                )));
            }
            stored
        } else {
            let meta = ShardMeta {
                shards: opts.num_shards,
                seed: opts.route_seed,
            };
            // Write-temp + fsync + atomic rename so a crash mid-create
            // never leaves a torn SHARDS file: reopen either sees the
            // complete meta or none at all (and re-creates it).
            let tmp_path = format!("{meta_path}.tmp");
            {
                let mut f = env.new_writable(&tmp_path, IoClass::Other)?;
                f.append(meta.encode().as_bytes())?;
                f.sync()?;
            }
            env.rename(&tmp_path, &meta_path)?;
            meta
        };

        // One block cache and one throttle for the whole set; the usage
        // source sums every shard's incremental space tracker plus a
        // root-level tracker (routing meta, coordinator log), so the
        // §III-D limit is a single global budget no matter which shard
        // admits the write — and checking it is O(shards) atomic loads,
        // not a directory walk.
        let cache = opts.base.block_cache.clone().unwrap_or_else(|| {
            Arc::new(BlockCache::with_capacity(
                opts.base.block_cache_bytes.max(4096),
            ))
        });
        let throttle = Arc::new(Throttle::new(
            opts.base.space_limit,
            opts.base.throttle_gc_factor,
        ));
        let shard_prefixes: Vec<String> = (0..meta.shards)
            .map(|i| format!("{}/", shard_dir(&root, i)))
            .collect();
        let (root_env, root_tracker) =
            UsageEnv::wrap_excluding(env.clone(), &format!("{root}/"), shard_prefixes.clone())?;

        // Build every shard's env layer first (metered for per-shard I/O
        // attribution, usage-tracked for space), so the usage closure can
        // close over the complete tracker set before any shard opens.
        let mut shard_envs = Vec::with_capacity(meta.shards);
        let mut trackers = vec![root_tracker];
        for prefix in &shard_prefixes {
            let metered: scavenger_env::EnvRef =
                Arc::new(scavenger_env::MeteredEnv::new(env.clone()));
            let (shard_env, tracker) = UsageEnv::wrap(metered, prefix)?;
            shard_envs.push(shard_env);
            trackers.push(tracker);
        }
        let space_usage: crate::options::SpaceUsageFn =
            Arc::new(move || trackers.iter().map(|t| t.total()).sum());

        let mut shards = Vec::with_capacity(meta.shards);
        for shard_env in shard_envs {
            let i = shards.len();
            let mut shard_opts = opts.base.clone();
            shard_opts.dir = shard_dir(&root, i);
            // Per-shard I/O attribution: every shard runs under its own
            // metered wrapper, so `shard.stats().io` counts only that
            // shard's traffic (the shared env keeps the global totals).
            shard_opts.env = shard_env;
            shard_opts.block_cache = Some(cache.clone());
            shard_opts.shared_throttle = Some(throttle.clone());
            shard_opts.space_usage = Some(space_usage.clone());
            shards.push(Db::open(shard_opts)?);
        }

        // All shards are open: complete any multi-shard batch whose 2PC
        // prepare is durable but whose commit never landed (crash
        // mid-fan-out), then start a fresh coordinator log. The
        // coordinator writes through the root usage wrapper so its log
        // bytes count toward the global budget.
        let coord = Coordinator::open(&root_env, &root, &shards)?;

        Ok(DbShards {
            inner: Arc::new(ShardsInner {
                shards,
                meta,
                root,
                env: root_env,
                throttle,
                cache,
                maintenance_threads: opts.base.gc_threads.max(1),
                coord,
                txn_lock: Mutex::new(()),
                txn: TxnCounters::default(),
            }),
        })
    }

    // ---------------- routing ----------------

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.meta.shards
    }

    /// The persisted routing seed.
    pub fn route_seed(&self) -> u64 {
        self.inner.meta.seed
    }

    /// The shard index `key` routes to — stable across reopen.
    pub fn shard_of(&self, key: impl AsRef<[u8]>) -> usize {
        self.inner.shard_of(key.as_ref())
    }

    /// Direct handle to shard `index` (experiments, per-shard stats).
    pub fn shard(&self, index: usize) -> &Db {
        &self.inner.shards[index]
    }

    /// The shared block cache.
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.inner.cache
    }

    /// The shared space throttle (global limit + counters).
    pub fn throttle(&self) -> &Arc<Throttle> {
        &self.inner.throttle
    }

    // ---------------- writes ----------------

    /// Insert or overwrite a key (routed; default [`WriteOptions`]).
    pub fn put(&self, key: impl AsRef<[u8]>, value: impl Into<Bytes>) -> Result<WriteReceipt> {
        let key = key.as_ref();
        self.inner.shards[self.inner.shard_of(key)].put(key, value)
    }

    /// Insert or overwrite a key with explicit options.
    pub fn put_with(
        &self,
        opts: &WriteOptions,
        key: impl AsRef<[u8]>,
        value: impl Into<Bytes>,
    ) -> Result<WriteReceipt> {
        let key = key.as_ref();
        self.inner.shards[self.inner.shard_of(key)].put_with(opts, key, value)
    }

    /// Delete a key (routed; default [`WriteOptions`]).
    pub fn delete(&self, key: impl AsRef<[u8]>) -> Result<WriteReceipt> {
        let key = key.as_ref();
        self.inner.shards[self.inner.shard_of(key)].delete(key)
    }

    /// Delete a key with explicit options.
    pub fn delete_with(&self, opts: &WriteOptions, key: impl AsRef<[u8]>) -> Result<WriteReceipt> {
        let key = key.as_ref();
        self.inner.shards[self.inner.shard_of(key)].delete_with(opts, key)
    }

    /// Apply a batch (default [`WriteOptions`]). See
    /// [`write_with`](DbShards::write_with) for atomicity scope.
    pub fn write(&self, batch: WriteBatch) -> Result<WriteReceipt> {
        self.write_with(&WriteOptions::default(), batch)
    }

    /// Apply a batch atomically: entries are split by shard (preserving
    /// per-key order). A batch that lands on **one** shard commits
    /// through that shard's write path directly — the fast path, zero
    /// coordination I/O. A batch spanning **multiple** shards commits
    /// through the two-phase-commit coordinator: the full redo payload
    /// is fsynced to the coordinator log before any shard is touched,
    /// every sub-batch is applied with a forced WAL sync, and recovery
    /// at the next open rolls a prepared-but-uncommitted batch forward
    /// — so a crash can never surface half the batch durably.
    ///
    /// The returned [`WriteReceipt`] is an aggregate over the touched
    /// shards: sequences are per-shard namespaces, so `seq` and
    /// `group_len` are maxima/sums across sub-batch receipts. A
    /// multi-shard receipt always reports `synced == true` (the 2PC
    /// commit record asserts every part is durable, so shard syncs are
    /// forced regardless of `opts.sync`); a single-shard receipt
    /// reports whatever its shard's commit did. An empty batch returns
    /// an inert receipt (`group_len == 0`, `synced == false`).
    pub fn write_with(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<WriteReceipt> {
        let n = self.inner.meta.shards;
        let mut per_shard: Vec<WriteBatch> = (0..n).map(|_| WriteBatch::new()).collect();
        for e in batch.entries() {
            let s = self.inner.shard_of(&e.key);
            match e.vtype {
                ValueType::Value => per_shard[s].put(&e.key, e.value.clone()),
                ValueType::Deletion => per_shard[s].delete(&e.key),
                ValueType::ValueRef => {
                    return Err(Error::internal(
                        "value references are engine-internal and cannot be routed \
                         through a sharded write"
                            .to_string(),
                    ))
                }
            }
        }
        let mut parts: Vec<(usize, WriteBatch)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .collect();
        match parts.len() {
            0 => Ok(WriteReceipt {
                seq: 0,
                group_len: 0,
                synced: false,
            }),
            1 => {
                let (i, b) = parts.pop().expect("len checked");
                self.inner.shards[i].write_with(opts, b)
            }
            _ => self.inner.coord.commit(&self.inner.shards, parts, opts),
        }
    }

    /// Validate a transaction's read set against current per-shard
    /// sequences and, if every read is still current, apply its write
    /// buffer through [`write_with`](DbShards::write_with) (2PC when it
    /// spans shards). Commits serialize on the store-wide transaction
    /// lock, so concurrent transactions are serializable against each
    /// other; raw non-transactional writes can still land between
    /// validation and apply, as documented on
    /// [`Transactional`](crate::Transactional).
    pub(crate) fn txn_commit_raw(
        &self,
        reads: &[(Vec<u8>, scavenger_util::ikey::SeqNo)],
        batch: WriteBatch,
        opts: &WriteOptions,
    ) -> Result<WriteReceipt> {
        let inner = &self.inner;
        let _commit_guard = inner.txn_lock.lock();
        for (key, read_seq) in reads {
            let shard = inner.shard_of(key);
            if let Some(seq) = inner.shards[shard].lsm().latest_seq(key)? {
                if seq > *read_seq {
                    inner.txn.conflicted();
                    return Err(Error::txn_conflict(format!(
                        "key {:?} was written at sequence {seq} on shard {shard}, after \
                         the transaction's read point {read_seq}",
                        String::from_utf8_lossy(key)
                    )));
                }
            }
        }
        let receipt = self.write_with(opts, batch)?;
        inner.txn.committed();
        Ok(receipt)
    }

    // ---------------- reads ----------------

    /// Latest value of `key`, or `None` — one shard lookup.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        let key = key.as_ref();
        self.inner.shards[self.inner.shard_of(key)].get(key)
    }

    /// Value of `key` as seen by `opts` (routed to the key's shard).
    /// The pin must be a sharded one
    /// ([`ReadPin::ShardsView`] /
    /// [`ReadPin::ShardsSnapshot`]) or
    /// [`ReadPin::Latest`]; a single-engine pin
    /// is an error on a sharded handle.
    pub fn get_with(&self, opts: &ReadOptions<'_>, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        let key = key.as_ref();
        match opts.pin {
            ReadPin::ShardsView(v) => v.get_opt(key, opts.fill_cache),
            ReadPin::ShardsSnapshot(s) => s.get_opt(key, opts.fill_cache),
            // No pinned set: route straight to the owning shard — one
            // transient pin there, not a coordinated pin on every shard.
            ReadPin::Latest => {
                let ro = ReadOptions {
                    fill_cache: opts.fill_cache,
                    ..ReadOptions::default()
                };
                self.inner.shards[self.inner.shard_of(key)].get_with(&ro, key)
            }
            ReadPin::View(_) | ReadPin::Snapshot(_) => Err(Error::invalid_argument(
                "single-engine pin passed to a sharded read",
            )),
        }
    }

    /// Pin a coordinated view set: one registered [`ReadView`] per
    /// shard, taken at this call. Reads through it are strictly
    /// consistent per shard for the set's lifetime.
    pub fn view(&self) -> ShardsView {
        ShardsView {
            views: self.inner.shards.iter().map(|s| s.view()).collect(),
            inner: self.inner.clone(),
        }
    }

    /// Take a coordinated snapshot set: one RAII [`Snapshot`] per shard.
    /// Participates in snapshot-gated GC policy on every shard (e.g.
    /// Titan's defer-while-snapshots-exist rule).
    pub fn snapshot(&self) -> ShardsSnapshot {
        ShardsSnapshot {
            snaps: self.inner.shards.iter().map(|s| s.snapshot()).collect(),
            inner: self.inner.clone(),
        }
    }

    /// Range scan over `[lo, hi)` across all shards, in one merged key
    /// order, pinned at a coordinated view set taken by this call.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ShardsScanIter> {
        self.view().scan(lo, hi)
    }

    /// Range scan as seen by `opts`: bounds from `lower/upper_bound`,
    /// the read point from the given sharded view or snapshot set (a
    /// fresh coordinated set otherwise). A single-engine pin is an
    /// error on a sharded handle.
    pub fn scan_with(&self, opts: &ReadOptions<'_>) -> Result<ShardsScanIter> {
        let lo = opts.lower_bound.as_deref().unwrap_or(b"");
        let hi = opts.upper_bound.as_deref();
        match opts.pin {
            ReadPin::ShardsView(v) => v.scan_opt(lo, hi, opts.fill_cache),
            ReadPin::ShardsSnapshot(s) => s.view_scan_opt(lo, hi, opts.fill_cache),
            ReadPin::Latest => self.view().scan_opt(lo, hi, opts.fill_cache),
            ReadPin::View(_) | ReadPin::Snapshot(_) => Err(Error::invalid_argument(
                "single-engine pin passed to a sharded scan",
            )),
        }
    }

    // ---------------- maintenance ----------------

    /// Flush every shard (fanned across the maintenance pool).
    pub fn flush(&self) -> Result<()> {
        self.for_each_shard(|db| db.flush()).map(|_| ())
    }

    /// Compact every shard until stable (fanned across the pool).
    pub fn compact_all(&self) -> Result<()> {
        self.for_each_shard(|db| db.compact_all()).map(|_| ())
    }

    /// Run one GC job per shard (fanned across the pool). The
    /// [`GcReport`] holds each shard's outcome, indexed by shard — the
    /// same shape [`Db::run_gc`](crate::engine::Maintenance) reports
    /// through the trait surface with a single slot, so generic callers
    /// never branch on the handle type.
    pub fn run_gc(&self) -> Result<GcReport> {
        Ok(GcReport {
            outcomes: self.for_each_shard(|db| db.run_gc())?,
        })
    }

    /// Run GC on every shard until no candidate crosses the threshold.
    /// Returns the total number of jobs across shards.
    pub fn run_gc_until_clean(&self) -> Result<usize> {
        Ok(self
            .for_each_shard(|db| db.run_gc_until_clean())?
            .into_iter()
            .sum())
    }

    /// Recover every shard from read-only degraded mode (see
    /// [`Db::resume`]): shards that are healthy are verified and left
    /// untouched; degraded shards have their manifest re-verified, orphan
    /// value files cleaned, and writes re-enabled. The first shard whose
    /// verification fails aborts the sweep with its error.
    pub fn resume(&self) -> Result<()> {
        self.for_each_shard(|db| db.resume()).map(|_| ())
    }

    /// True if *any* shard is in read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.inner.shards.iter().any(|s| s.is_degraded())
    }

    /// Run `f` over every shard, fanning across up to
    /// [`gc_threads`](crate::Options::gc_threads) scoped workers (the
    /// same knob that sizes per-shard GC I/O fan-out); `gc_threads = 1`
    /// degenerates to a deterministic sequential sweep. Results are
    /// returned in shard order; the first error wins.
    fn for_each_shard<R, F>(&self, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(&Db) -> Result<R> + Sync,
    {
        let shards = &self.inner.shards;
        let workers = self.inner.maintenance_threads.min(shards.len());
        if workers <= 1 {
            return shards.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R>>>> =
            shards.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= shards.len() {
                        break;
                    }
                    *slots[i].lock() = Some(f(&shards[i]));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker filled every slot"))
            .collect()
    }

    // ---------------- introspection ----------------

    /// Per-shard statistics snapshots, indexed by shard.
    pub fn shard_stats(&self) -> Vec<DbStats> {
        self.inner.shards.iter().map(|s| s.stats()).collect()
    }

    /// Aggregate statistics across the whole shard set — the sharded
    /// analogue of [`Db::stats`]: counters, space, and I/O sum over
    /// shards (each shard runs under its own
    /// [`MeteredEnv`](scavenger_env::MeteredEnv), so `io` is true
    /// shard-set attribution rather than the env-global snapshot), the
    /// throttle counter is read once from the shared throttle, the
    /// cache hit ratio comes from the shared block cache,
    /// `index_space_amp` is the ksst-byte-weighted mean, and
    /// `oldest_read_point` is the minimum across shards (sequences are
    /// per-shard, so it is a conservative "oldest anywhere" gauge).
    pub fn stats(&self) -> DbStats {
        let per_shard = self.shard_stats();
        let mut gc = GcStepTimes::default();
        let mut space = SpaceBreakdown::default();
        let mut exposed_garbage_bytes = 0;
        let mut value_store_bytes = 0;
        let mut value_files = 0;
        let mut flushes = 0;
        let mut compactions = 0;
        let mut merge_drops = 0;
        let mut pinned_views = 0;
        let mut live_snapshots = 0;
        let mut bg_errors = 0;
        let mut bg_retries = 0;
        let mut degraded = false;
        let mut wal_tail_corruptions = 0;
        let mut group_commit_groups = 0;
        let mut group_commit_batches = 0;
        let mut group_commit_max_group = 0;
        let mut group_commit_fsyncs_saved = 0;
        let mut oldest_read_point = None;
        let mut amp_weighted = 0.0;
        let mut amp_weight = 0u64;
        let mut cdc_events_published = 0;
        let mut cdc_subscribers = 0;
        let mut cdc_retained_wal_bytes = 0;
        let mut cdc_lag_seqs = 0;
        let mut cdc_catchup_reads = 0;
        let mut pinned_bytes = 0;
        let mut io = scavenger_env::IoStatsSnapshot::default();
        for s in &per_shard {
            io.accumulate(&s.io);
            gc.accumulate(&s.gc);
            space.accumulate(&s.space);
            exposed_garbage_bytes += s.exposed_garbage_bytes;
            value_store_bytes += s.value_store_bytes;
            value_files += s.value_files;
            flushes += s.flushes;
            compactions += s.compactions;
            merge_drops += s.merge_drops;
            pinned_views += s.pinned_views;
            live_snapshots += s.live_snapshots;
            bg_errors += s.bg_errors;
            bg_retries += s.bg_retries;
            degraded |= s.degraded;
            wal_tail_corruptions += s.wal_tail_corruptions;
            group_commit_groups += s.group_commit_groups;
            group_commit_batches += s.group_commit_batches;
            group_commit_max_group = group_commit_max_group.max(s.group_commit_max_group);
            group_commit_fsyncs_saved += s.group_commit_fsyncs_saved;
            oldest_read_point = match (oldest_read_point, s.oldest_read_point) {
                (Some(a), Some(b)) => Some(std::cmp::min(a, b)),
                (a, b) => a.or(b),
            };
            amp_weighted += s.index_space_amp * s.space.ksst_bytes as f64;
            amp_weight += s.space.ksst_bytes;
            cdc_events_published += s.cdc_events_published;
            cdc_subscribers += s.cdc_subscribers;
            cdc_retained_wal_bytes += s.cdc_retained_wal_bytes;
            // Max, not sum: per-shard sequences are independent
            // namespaces, so "how far behind is the slowest subscriber"
            // is the worst shard, not an addition across them.
            cdc_lag_seqs = cdc_lag_seqs.max(s.cdc_lag_seqs);
            cdc_catchup_reads += s.cdc_catchup_reads;
            pinned_bytes += s.pinned_bytes;
        }
        // Reuse the per-shard breakdowns computed above instead of
        // re-walking every shard directory through self.space(); only
        // the root-level files (routing meta, coordinator log) are
        // added on top.
        space.other_bytes += self.root_file_bytes();
        DbStats {
            // Sum of the per-shard metered counters — true shard-set
            // attribution, not the env-global snapshot (which also
            // counts whatever else shares the env). Only the SHARDS
            // meta-file I/O escapes attribution, by construction.
            io,
            gc,
            space,
            index_space_amp: if amp_weight == 0 {
                1.0
            } else {
                amp_weighted / amp_weight as f64
            },
            exposed_garbage_bytes,
            value_store_bytes,
            value_files,
            cache_hit_ratio: self.inner.cache.hit_ratio(),
            flushes,
            compactions,
            merge_drops,
            throttle_stalls: self.inner.throttle.activation_count(),
            oldest_read_point,
            pinned_views,
            live_snapshots,
            bg_errors,
            bg_retries,
            degraded,
            wal_tail_corruptions,
            group_commit_groups,
            group_commit_batches,
            // Max, not sum: the gauge answers "largest group anywhere",
            // and per-shard groups never merge across shards.
            group_commit_max_group,
            group_commit_fsyncs_saved,
            // Transactions commit at the shard-set level, so the
            // per-shard counters summed above are zero by construction
            // — these come straight from the set-level state.
            txn_commits: self.inner.txn.commits(),
            txn_conflicts: self.inner.txn.conflicts(),
            txn_2pc_commits: self
                .inner
                .coord
                .commits
                .load(std::sync::atomic::Ordering::Relaxed),
            txn_2pc_rollforwards: self
                .inner
                .coord
                .rollforwards
                .load(std::sync::atomic::Ordering::Relaxed),
            cdc_events_published,
            cdc_subscribers,
            cdc_retained_wal_bytes,
            cdc_lag_seqs,
            cdc_catchup_reads,
            pinned_bytes,
        }
    }

    /// Aggregate on-disk space across every shard (plus the root-level
    /// routing meta and coordinator log, under `other_bytes`).
    pub fn space(&self) -> SpaceBreakdown {
        let mut total = SpaceBreakdown::default();
        for s in &self.inner.shards {
            total.accumulate(&s.space());
        }
        total.other_bytes += self.root_file_bytes();
        total
    }

    /// Bytes of the store-level files living at the root (the `SHARDS`
    /// routing meta and the 2PC coordinator log).
    fn root_file_bytes(&self) -> u64 {
        let env = &self.inner.env;
        let root = &self.inner.root;
        env.file_size(&format!("{root}/SHARDS")).unwrap_or(0)
            + env
                .file_size(&format!("{root}/{}", crate::txn::COORD_LOG))
                .unwrap_or(0)
    }
}

/// A coordinated, pinned view set: one registered [`ReadView`] per
/// shard. Point reads route to the owning shard's view; scans merge all
/// shard views in key order. Each member is strictly consistent for its
/// shard for the set's whole lifetime.
pub struct ShardsView {
    views: Vec<ReadView>,
    inner: Arc<ShardsInner>,
}

impl ShardsView {
    /// Value of `key` at the view set.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        self.get_opt(key.as_ref(), true)
    }

    pub(crate) fn get_opt(&self, key: &[u8], fill_cache: bool) -> Result<Option<Bytes>> {
        self.views[self.inner.shard_of(key)].get_opt(key, fill_cache)
    }

    /// Merged range scan over `[lo, hi)` across every shard's view.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ShardsScanIter> {
        self.scan_opt(lo, hi, true)
    }

    pub(crate) fn scan_opt(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        fill_cache: bool,
    ) -> Result<ShardsScanIter> {
        let mut iters = Vec::with_capacity(self.views.len());
        for v in &self.views {
            iters.push(v.scan_opt(lo, hi, fill_cache)?);
        }
        ShardsScanIter::new(iters)
    }

    /// The per-shard views, indexed by shard.
    pub fn shard_views(&self) -> &[ReadView] {
        &self.views
    }

    /// The sequence a transaction's conflict check for `key` compares
    /// against: the owning shard's view sequence (sequences are
    /// per-shard namespaces, so the key's shard is the only one that
    /// matters).
    pub(crate) fn read_seq_for(&self, key: &[u8]) -> scavenger_util::ikey::SeqNo {
        self.views[self.inner.shard_of(key)].sequence()
    }
}

/// A coordinated snapshot set: one RAII [`Snapshot`] per shard.
/// Dropping it releases every shard's read point.
pub struct ShardsSnapshot {
    snaps: Vec<Snapshot>,
    inner: Arc<ShardsInner>,
}

impl ShardsSnapshot {
    /// Value of `key` at the snapshot set.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        let key = key.as_ref();
        self.snaps[self.inner.shard_of(key)].get(key)
    }

    pub(crate) fn get_opt(&self, key: &[u8], fill_cache: bool) -> Result<Option<Bytes>> {
        self.snaps[self.inner.shard_of(key)]
            .view()
            .get_opt(key, fill_cache)
    }

    /// Merged range scan at the snapshot set.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ShardsScanIter> {
        self.view_scan_opt(lo, hi, true)
    }

    pub(crate) fn view_scan_opt(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        fill_cache: bool,
    ) -> Result<ShardsScanIter> {
        let mut iters = Vec::with_capacity(self.snaps.len());
        for s in &self.snaps {
            iters.push(s.view().scan_opt(lo, hi, fill_cache)?);
        }
        ShardsScanIter::new(iters)
    }

    /// The per-shard snapshots, indexed by shard.
    pub fn shard_snapshots(&self) -> &[Snapshot] {
        &self.snaps
    }
}

/// K-way ordered merge over per-shard scan iterators — the
/// [`KvRead::Iter`](crate::engine::KvRead) of [`DbShards`]. Not
/// re-exported at the crate root: name it through the trait's
/// associated type (`<DbShards as KvRead>::Iter`) or this module path.
///
/// Hash partitioning makes the shard streams *disjoint* (a user key
/// lives on exactly one shard), so merging is a pure smallest-head pick
/// — no cross-shard version shadowing to resolve. Ties (impossible by
/// construction) would resolve to the lowest shard index, keeping the
/// iterator deterministic even under a buggy router.
///
/// Implements [`Iterator`] over `Result<ScanEntry>` with the same
/// contract as [`DbScanIter`]: after yielding an error the iterator is
/// fused. [`next_entry`](ShardsScanIter::next_entry) and
/// [`collect_n`](ShardsScanIter::collect_n) are thin wrappers over the
/// `Iterator` impl.
pub struct ShardsScanIter {
    iters: Vec<DbScanIter>,
    heads: Vec<Option<ScanEntry>>,
    /// A refill failure noticed *after* a head was popped: the popped
    /// entry is delivered first, then this error surfaces on the next
    /// pull — an already-resolved entry is never dropped.
    pending_err: Option<Error>,
    done: bool,
}

impl ShardsScanIter {
    fn new(mut iters: Vec<DbScanIter>) -> Result<ShardsScanIter> {
        let mut heads = Vec::with_capacity(iters.len());
        for it in &mut iters {
            heads.push(it.next_entry()?);
        }
        Ok(ShardsScanIter {
            iters,
            heads,
            pending_err: None,
            done: false,
        })
    }

    /// Pick the smallest head, yield it, and refill from its shard. A
    /// failed refill is deferred behind the popped entry (see
    /// `pending_err`), matching the single-engine behavior of yielding
    /// every successfully resolved entry before the error.
    fn merge_next(&mut self) -> Result<Option<ScanEntry>> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        let mut min: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some(e) = head {
                min = match min {
                    Some(m) if self.heads[m].as_ref().unwrap().key <= e.key => Some(m),
                    _ => Some(i),
                };
            }
        }
        match min {
            Some(i) => {
                let out = self.heads[i].take();
                match self.iters[i].next_entry() {
                    Ok(head) => self.heads[i] = head,
                    Err(e) => self.pending_err = Some(e),
                }
                Ok(out)
            }
            None => Ok(None),
        }
    }

    /// Next entry in global key order, or `None` when every shard is
    /// exhausted (thin wrapper over the [`Iterator`] impl).
    pub fn next_entry(&mut self) -> Result<Option<ScanEntry>> {
        self.next().transpose()
    }

    /// Collect up to `limit` entries (thin wrapper over the [`Iterator`]
    /// impl).
    pub fn collect_n(&mut self, limit: usize) -> Result<Vec<ScanEntry>> {
        self.by_ref().take(limit).collect()
    }
}

impl Iterator for ShardsScanIter {
    type Item = Result<ScanEntry>;

    fn next(&mut self) -> Option<Result<ScanEntry>> {
        if self.done {
            return None;
        }
        let pulled = self.merge_next();
        scavenger_util::iter::fuse(&mut self.done, pulled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::EngineMode;
    use scavenger_env::MemEnv;

    fn small_sharded(dir: &str, shards: usize) -> ShardedOptions {
        let mut o = ShardedOptions::new(MemEnv::shared(), dir, EngineMode::Scavenger);
        o.num_shards = shards;
        o.base.memtable_size = 8 * 1024;
        o.base.vsst_target_size = 32 * 1024;
        o.base.base_level_bytes = 64 * 1024;
        o.base.ksst_target_size = 16 * 1024;
        o
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let n = 8;
        let seed = 0xdead_beef;
        let mut counts = vec![0usize; n];
        for i in 0..4000 {
            let key = format!("user-{i:05}");
            let a = route(seed, key.as_bytes(), n);
            let b = route(seed, key.as_bytes(), n);
            assert_eq!(a, b, "routing must be a pure function");
            counts[a] += 1;
        }
        // 4000 keys over 8 shards: expect ~500 each; a shard below 250
        // or above 1000 means the hash is badly skewed.
        for (i, c) in counts.iter().enumerate() {
            assert!((250..1000).contains(c), "shard {i} got {c} of 4000 keys");
        }
        // A different seed produces a different placement for at least
        // some keys (the seed actually participates).
        let moved = (0..1000)
            .filter(|i| {
                let key = format!("user-{i:05}");
                route(seed, key.as_bytes(), n) != route(seed + 1, key.as_bytes(), n)
            })
            .count();
        assert!(moved > 100, "seed changes placement ({moved}/1000 moved)");
    }

    #[test]
    fn meta_roundtrip_and_rejects_garbage() {
        let m = ShardMeta {
            shards: 12,
            seed: 0x0123_4567_89ab_cdef,
        };
        assert_eq!(ShardMeta::decode(m.encode().as_bytes()).unwrap(), m);
        assert!(ShardMeta::decode(b"not a meta file").is_err());
        assert!(ShardMeta::decode(b"scavenger-shards v1\nshards=0\nseed=0x1\n").is_err());
        assert!(ShardMeta::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn get_put_delete_route_consistently() {
        let db = DbShards::open(small_sharded("shards-db", 4)).unwrap();
        for i in 0..200 {
            db.put(format!("key{i:03}"), format!("v{i}").into_bytes())
                .unwrap();
        }
        for i in 0..200 {
            assert_eq!(
                db.get(format!("key{i:03}")).unwrap().unwrap(),
                Bytes::from(format!("v{i}").into_bytes())
            );
        }
        // Every shard should own some keys at this scale.
        for s in 0..4 {
            let owned = (0..200)
                .filter(|i| db.shard_of(format!("key{i:03}")) == s)
                .count();
            assert!(owned > 0, "shard {s} owns no keys");
        }
        db.delete("key005").unwrap();
        assert!(db.get("key005").unwrap().is_none());
        // The key is really gone from its owning shard, not merely
        // invisible through routing.
        assert!(db
            .shard(db.shard_of("key005"))
            .get("key005")
            .unwrap()
            .is_none());
    }

    #[test]
    fn merged_scan_is_globally_ordered() {
        let db = DbShards::open(small_sharded("shards-scan", 4)).unwrap();
        for i in 0..300 {
            db.put(format!("key{i:04}"), vec![(i % 251) as u8; 64])
                .unwrap();
        }
        db.flush().unwrap();
        let mut it = db.scan(b"", None).unwrap();
        let entries = it.collect_n(usize::MAX).unwrap();
        assert_eq!(entries.len(), 300);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.key, format!("key{i:04}").into_bytes());
        }
    }

    #[test]
    fn multi_shard_batch_splits_and_applies() {
        let db = DbShards::open(small_sharded("shards-batch", 4)).unwrap();
        let mut b = WriteBatch::new();
        for i in 0..40 {
            b.put(format!("batch{i:02}"), Bytes::from(vec![i as u8; 32]));
        }
        b.delete("batch07");
        db.write(b).unwrap();
        assert!(db.get("batch07").unwrap().is_none());
        for i in (0..40).filter(|&i| i != 7) {
            assert_eq!(
                db.get(format!("batch{i:02}")).unwrap().unwrap(),
                Bytes::from(vec![i as u8; 32])
            );
        }
    }

    #[test]
    fn shards_handle_is_send_sync_and_cloneable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbShards>();
        assert_send_sync::<ShardsView>();
        assert_send_sync::<ShardsSnapshot>();
        let db = DbShards::open(small_sharded("shards-clone", 2)).unwrap();
        let db2 = db.clone();
        db.put("k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(db2.get("k").unwrap().unwrap(), Bytes::from_static(b"v"));
    }
}
