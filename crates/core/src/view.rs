//! Pinned read views and per-call read/write options — the public
//! consistency surface of the engine.
//!
//! # Pinned reads only (the `get_at` / `scan_at` surface is gone)
//!
//! Earlier versions exposed snapshot reads as a bare sequence number:
//! take a [`Snapshot`], then call `db.get_at(key, snapshot.sequence())`
//! or `db.scan_at(lo, hi, snapshot.sequence())`. The sequence alone
//! never pinned anything — reads walked the live structures, and an
//! unregistered sequence could observe a version whose value a
//! concurrent GC had already retired (the old `Db::get` papered over
//! this with a retry loop). Those entry points have been removed; every
//! historical read now goes through a *registered* pin:
//!
//! * [`Db::view`](crate::db::Db::view) returns a [`ReadView`] — an
//!   atomically pinned superversion (active memtable + immutable
//!   memtables + SST version + visible sequence) whose reads are
//!   strictly consistent for the view's whole lifetime.
//! * [`Snapshot`] is an RAII handle *owning* a registered view: call
//!   [`Snapshot::get`] / [`Snapshot::scan`] directly, or pass the
//!   snapshot to [`Db::get_with`](crate::db::Db::get_with) /
//!   [`Db::scan_with`](crate::db::Db::scan_with) via
//!   [`ReadPin::Snapshot`] (`ReadOptions::pinned(&snap)`). Dropping the
//!   snapshot unregisters it.
//! * Code that previously carried a `SeqNo` around should carry the
//!   [`Snapshot`] (or [`ReadView`]) itself: the handle *is* the read
//!   point, and holding it is what keeps every version it can see
//!   resolvable. [`Snapshot::sequence`] remains available for
//!   diagnostics and ordering comparisons.
//! * [`ReadOptions`] / [`WriteOptions`] carry per-call knobs
//!   ([`Db::get_with`](crate::db::Db::get_with),
//!   [`Db::scan_with`](crate::db::Db::scan_with),
//!   [`Db::put_with`](crate::db::Db::put_with),
//!   [`Db::write_with`](crate::db::Db::write_with)); the plain
//!   `get`/`put`/`scan` entry points are thin wrappers over the
//!   defaults. [`WriteOptions`] is defined in the LSM crate and
//!   re-exported here: one write-options type travels from the server
//!   wire protocol all the way to the WAL append, and every write
//!   returns a [`WriteReceipt`] describing its commit group.

use crate::db::{DbInner, DbScanIter};
use crate::shards::{ShardsSnapshot, ShardsView};
use bytes::Bytes;
use scavenger_util::ikey::SeqNo;
use scavenger_util::Result;
use std::sync::Arc;

/// A pinned, strictly-consistent read view of the database.
///
/// Created by [`Db::view`](crate::db::Db::view). The view pins one
/// superversion of the index tree and registers its sequence as a read
/// point, so for as long as it lives:
///
/// * every read resolves against the same point-in-time state — writes,
///   flushes, and compactions committed after creation are invisible;
/// * the garbage collector preserves every value version the view can
///   see (no dangling value references, no read retries).
pub struct ReadView {
    pub(crate) view: scavenger_lsm::LsmView,
    pub(crate) db: Arc<DbInner>,
}

impl ReadView {
    /// The sequence this view reads at.
    pub fn sequence(&self) -> SeqNo {
        self.view.sequence()
    }

    /// Value of `key` at the view, or `None` if absent/deleted.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        self.get_opt(key.as_ref(), true)
    }

    pub(crate) fn get_opt(&self, key: &[u8], fill_cache: bool) -> Result<Option<Bytes>> {
        let r = self.view.get_opt(key, fill_cache)?;
        self.db.resolve_read(key, r)
    }

    /// Range scan over `[lo, hi)` (unbounded when `hi` is `None`) at the
    /// view, resolving separated values. The iterator carries its own
    /// pin and stays valid after the view is dropped.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<DbScanIter> {
        self.scan_opt(lo, hi, true)
    }

    pub(crate) fn scan_opt(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        fill_cache: bool,
    ) -> Result<DbScanIter> {
        Ok(DbScanIter::new(
            self.view.scan_opt(lo, hi, fill_cache)?,
            self.db.clone(),
        ))
    }
}

/// A consistent point-in-time snapshot: an RAII handle owning a
/// registered [`ReadView`]. Dropping the snapshot unregisters its
/// sequence and releases the pinned structures.
///
/// Unlike a transient [`ReadView`], a snapshot also participates in
/// snapshot-specific GC policy (e.g. Titan-style write-back GC defers
/// whole jobs while snapshots exist).
pub struct Snapshot {
    pub(crate) view: ReadView,
}

impl Snapshot {
    /// The snapshot's sequence number (diagnostics and ordering
    /// comparisons — reads go through the snapshot itself, which is the
    /// registered pin).
    pub fn sequence(&self) -> SeqNo {
        self.view.sequence()
    }

    /// The owned read view.
    pub fn view(&self) -> &ReadView {
        &self.view
    }

    /// Value of `key` at the snapshot.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        self.view.get(key)
    }

    /// Range scan at the snapshot.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<DbScanIter> {
        self.view.scan(lo, hi)
    }
}

/// The read point a [`ReadOptions`] call resolves against: the latest
/// state, or one of the four pinned read surfaces — single-engine
/// [`ReadView`] / [`Snapshot`], or their sharded counterparts
/// [`ShardsView`] / [`ShardsSnapshot`].
///
/// One enum instead of per-engine option structs means a single
/// [`ReadOptions`] type serves both [`Db`](crate::Db) and
/// [`DbShards`](crate::DbShards) (the trait surface in
/// [`engine`](crate::engine) depends on this). Passing a pin from the
/// *other* engine flavor — a `ShardsView` to a `Db` read, or a plain
/// `ReadView` to a sharded read — is reported as an error by the
/// receiving engine, never silently ignored.
///
/// Marked `#[non_exhaustive]`: a new backend contributes its pinned
/// surfaces as additional variants (plus `From` impls), which is an
/// additive, non-breaking change — downstream matches must carry a
/// wildcard arm and should treat unknown pins as the wrong flavor.
#[derive(Clone, Copy, Default)]
#[non_exhaustive]
pub enum ReadPin<'a> {
    /// No pin: read through a fresh transient view at the latest
    /// sequence.
    #[default]
    Latest,
    /// Read through a pinned single-engine view.
    View(&'a ReadView),
    /// Read at a single-engine snapshot.
    Snapshot(&'a Snapshot),
    /// Read through a coordinated per-shard view set.
    ShardsView(&'a ShardsView),
    /// Read at a coordinated per-shard snapshot set.
    ShardsSnapshot(&'a ShardsSnapshot),
}

impl<'a> From<&'a ReadView> for ReadPin<'a> {
    fn from(v: &'a ReadView) -> Self {
        ReadPin::View(v)
    }
}

impl<'a> From<&'a Snapshot> for ReadPin<'a> {
    fn from(s: &'a Snapshot) -> Self {
        ReadPin::Snapshot(s)
    }
}

impl<'a> From<&'a ShardsView> for ReadPin<'a> {
    fn from(v: &'a ShardsView) -> Self {
        ReadPin::ShardsView(v)
    }
}

impl<'a> From<&'a ShardsSnapshot> for ReadPin<'a> {
    fn from(s: &'a ShardsSnapshot) -> Self {
        ReadPin::ShardsSnapshot(s)
    }
}

/// Per-call read options for [`Db::get_with`](crate::db::Db::get_with),
/// [`Db::scan_with`](crate::db::Db::scan_with), and their
/// [`DbShards`](crate::DbShards) counterparts — one options type for
/// every engine handle.
///
/// The read point comes from [`pin`](ReadOptions::pin): latest state by
/// default, or any of the pinned read surfaces via
/// [`ReadOptions::pinned`].
///
/// ```
/// use scavenger::{Db, EngineMode, MemEnv, Options, ReadOptions};
///
/// let db = Db::open(Options::new(MemEnv::shared(), "ro-demo", EngineMode::Scavenger)).unwrap();
/// for i in 0..20u8 {
///     db.put(format!("key{i:02}"), vec![i; 64]).unwrap();
/// }
/// // Bounded scan that bypasses the caches (one-shot cold read).
/// let ro = ReadOptions {
///     lower_bound: Some(b"key05".to_vec()),
///     upper_bound: Some(b"key10".to_vec()),
///     fill_cache: false,
///     ..ReadOptions::default()
/// };
/// let entries = db.scan_with(&ro).unwrap().collect_n(usize::MAX).unwrap();
/// assert_eq!(entries.len(), 5);
/// assert_eq!(entries[0].key, b"key05");
/// ```
pub struct ReadOptions<'a> {
    /// The read point: latest, or a pinned view/snapshot of either
    /// engine flavor.
    pub pin: ReadPin<'a>,
    /// When `false`, the read bypasses the table-handle and block caches
    /// entirely (one-shot readers) so a scan of cold data cannot evict
    /// the hot working set. Default `true`.
    pub fill_cache: bool,
    /// Inclusive lower key bound for
    /// [`Db::scan_with`](crate::db::Db::scan_with); unbounded (`""`)
    /// when `None`.
    pub lower_bound: Option<Vec<u8>>,
    /// Exclusive upper key bound for
    /// [`Db::scan_with`](crate::db::Db::scan_with); unbounded when
    /// `None`.
    pub upper_bound: Option<Vec<u8>>,
}

impl Default for ReadOptions<'_> {
    fn default() -> Self {
        ReadOptions {
            pin: ReadPin::Latest,
            fill_cache: true,
            lower_bound: None,
            upper_bound: None,
        }
    }
}

impl<'a> ReadOptions<'a> {
    /// Options reading at `pin` — any of the four pinned read surfaces
    /// converts:
    ///
    /// ```
    /// use scavenger::{Db, EngineMode, MemEnv, Options, ReadOptions};
    ///
    /// let db = Db::open(Options::new(MemEnv::shared(), "pin-demo", EngineMode::Scavenger)).unwrap();
    /// db.put(b"k", b"old".to_vec()).unwrap();
    /// let snap = db.snapshot();
    /// db.put(b"k", b"new".to_vec()).unwrap();
    /// let at_snap = db.get_with(&ReadOptions::pinned(&snap), b"k").unwrap().unwrap();
    /// assert_eq!(at_snap.as_ref(), b"old");
    /// ```
    pub fn pinned(pin: impl Into<ReadPin<'a>>) -> Self {
        ReadOptions {
            pin: pin.into(),
            ..ReadOptions::default()
        }
    }

    /// Options reading through `view`.
    pub fn at_view(view: &'a ReadView) -> Self {
        ReadOptions::pinned(view)
    }

    /// Options reading at `snapshot`.
    pub fn at_snapshot(snapshot: &'a Snapshot) -> Self {
        ReadOptions::pinned(snapshot)
    }
}

/// Per-call write options for [`Db::put_with`](crate::db::Db::put_with),
/// [`Db::delete_with`](crate::db::Db::delete_with), and
/// [`Db::write_with`](crate::db::Db::write_with) — re-exported from the
/// LSM crate so the same struct travels from the server wire protocol
/// down to the WAL append.
///
/// ```
/// use scavenger::{Db, EngineMode, MemEnv, Options, WriteOptions};
///
/// let db = Db::open(Options::new(MemEnv::shared(), "wo-demo", EngineMode::Scavenger)).unwrap();
/// // Bulk load without per-write WAL fsyncs (group durability).
/// let nosync = WriteOptions { sync: false, ..WriteOptions::default() };
/// for i in 0..100u8 {
///     db.put_with(&nosync, format!("key{i:03}"), vec![i; 256]).unwrap();
/// }
/// db.flush().unwrap(); // flush makes the batch durable
/// assert_eq!(db.get(b"key042").unwrap().unwrap().as_ref(), &[42u8; 256][..]);
/// ```
pub use scavenger_lsm::WriteOptions;

/// Typed acknowledgment returned by every write — the sequence range it
/// committed at, how many batches shared its commit group, and whether
/// an fsync covered it. Re-exported from the LSM crate.
///
/// ```
/// use scavenger::{Db, EngineMode, MemEnv, Options};
///
/// let db = Db::open(Options::new(MemEnv::shared(), "wr-demo", EngineMode::Scavenger)).unwrap();
/// let receipt = db.put(b"k", b"v".to_vec()).unwrap();
/// assert!(receipt.synced);
/// assert_eq!(receipt.group_len, 1); // no concurrent riders
/// ```
pub use scavenger_lsm::WriteReceipt;
