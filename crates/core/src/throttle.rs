//! Space-aware throttling (paper §III-D).
//!
//! "As space nears full capacity, the strategy slows or halts foreground
//! writes, lowering the garbage ratio threshold for aggressive GC.
//! Foreground writing can resume after space reclamation."
//!
//! The policy lives here; [`Db`](crate::db::Db) consults it before every
//! write. When usage exceeds the limit, the engine runs aggressive
//! reclamation rounds: GC at a lowered threshold, plus *forced*
//! compactions to convert hidden garbage into exposed garbage when no GC
//! candidate exists yet.
//!
//! One `Throttle` can be **shared across engines**: a
//! [`DbShards`](crate::DbShards) set hands every shard the same instance
//! (via [`Options::shared_throttle`](crate::Options::shared_throttle))
//! together with a usage source summing all shard footprints
//! ([`Options::space_usage`](crate::Options::space_usage)), so the limit
//! is one global budget and the counters aggregate set-wide. A shard
//! that finds the store over budget reclaims *locally* until the global
//! total is back under — each shard polices its own garbage, but they
//! answer to one quota.
//!
//! A caveat the stats gauges make visible: reclamation cannot drain past
//! the oldest registered read point
//! ([`DbStats::oldest_read_point`](crate::DbStats::oldest_read_point)) —
//! compaction preserves pinned versions and GC validates against them —
//! so a leaked view or snapshot eventually shows up here as activations
//! whose rounds end [`unresolved`](Throttle::unresolved).

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum reclamation rounds per throttled write before giving up and
/// letting the write proceed (a full halt would deadlock a workload whose
/// live data simply exceeds the quota).
pub const MAX_THROTTLE_ROUNDS: usize = 12;

/// Space-limit policy + counters.
pub struct Throttle {
    limit: Option<u64>,
    gc_factor: f64,
    /// Times the write path entered throttling.
    pub activations: AtomicU64,
    /// Aggressive GC rounds executed.
    pub gc_rounds: AtomicU64,
    /// Forced compactions executed to expose garbage.
    pub forced_compactions: AtomicU64,
    /// Rounds that ended with usage still above the limit.
    pub unresolved: AtomicU64,
}

impl Throttle {
    /// Create a policy; `limit = None` disables throttling.
    pub fn new(limit: Option<u64>, gc_factor: f64) -> Self {
        Throttle {
            limit,
            gc_factor: gc_factor.clamp(0.01, 1.0),
            activations: AtomicU64::new(0),
            gc_rounds: AtomicU64::new(0),
            forced_compactions: AtomicU64::new(0),
            unresolved: AtomicU64::new(0),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// True if `usage` exceeds the limit.
    pub fn over_limit(&self, usage: u64) -> bool {
        matches!(self.limit, Some(l) if usage > l)
    }

    /// The lowered GC threshold used while throttled.
    pub fn aggressive_threshold(&self, base: f64) -> f64 {
        (base * self.gc_factor).max(0.01)
    }

    /// Record one throttle activation.
    pub fn note_activation(&self) {
        self.activations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total activations so far.
    pub fn activation_count(&self) -> u64 {
        self.activations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_throttle_never_limits() {
        let t = Throttle::new(None, 0.25);
        assert!(!t.over_limit(u64::MAX));
        assert_eq!(t.limit(), None);
    }

    #[test]
    fn over_limit_is_strict() {
        let t = Throttle::new(Some(1000), 0.25);
        assert!(!t.over_limit(1000));
        assert!(t.over_limit(1001));
    }

    #[test]
    fn aggressive_threshold_scales_and_floors() {
        let t = Throttle::new(Some(1000), 0.25);
        assert!((t.aggressive_threshold(0.2) - 0.05).abs() < 1e-9);
        let t = Throttle::new(Some(1000), 0.0); // clamped
        assert!(t.aggressive_threshold(0.2) >= 0.01);
    }

    #[test]
    fn counters_accumulate() {
        let t = Throttle::new(Some(10), 0.5);
        t.note_activation();
        t.note_activation();
        assert_eq!(t.activation_count(), 2);
    }
}
