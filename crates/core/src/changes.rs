//! Change streams: ordered, gap-free subscriptions to the engine's
//! committed history, built on the LSM crate's change log (publication
//! ring + retained WAL segments).
//!
//! # Surface
//!
//! [`ChangeSubscriber`] is a separate capability trait next to the
//! [`Engine`](crate::Engine) triple (the same pattern as
//! [`Transactional`](crate::Transactional)): both handles implement it
//! with their own stream type, and generic code takes a
//! `ChangeSubscriber` bound when it tails changes. A stream is pulled,
//! not pushed — [`ChangeStream::poll_changes`] returns the next batch
//! of committed events and advances the cursor, so the caller (a wire
//! server, a follower workload, a test oracle) controls pacing and
//! backpressure.
//!
//! # Ordering and completeness contract
//!
//! * **Per shard, the stream is exactly the committed history**: every
//!   event of every acknowledged write appears exactly once, in
//!   sequence order, with no gaps — including events replayed from
//!   retained WAL segments after the in-memory ring has moved on.
//! * **Internal relocation writes are filtered.** KV-separation GC
//!   (Titan-style write-back) re-issues `ValueRef` entries through the
//!   write path; those carry no user-visible change and never surface
//!   through this API. Subscribers see logical operations only:
//!   [`ChangeOp::Put`] and [`ChangeOp::Delete`].
//! * **Across shards**, sequences are per-shard namespaces, so there
//!   is no single commit order to reproduce. The merged stream
//!   interleaves shards deterministically by `(seq, shard)` over the
//!   events pending at each poll and preserves each shard's order
//!   exactly. A multi-shard transactional batch is split across shards
//!   by 2PC; its events carry the coordinator's transaction id
//!   ([`ChangeRecord::txn_id`]) so a consumer can regroup the slices.
//!
//! # Resume tokens
//!
//! [`ChangeStream::resume_token`] captures the stream's exact position
//! as a portable byte string (`"CDC1"` magic, shard count, one next
//! sequence per shard). A new subscription via
//! [`SubscribeFrom::Token`] continues precisely where the old stream
//! stopped — across disconnects, process restarts, and crash recovery
//! — as long as the history is still retained (see
//! [`Options::cdc_retention`](crate::Options::cdc_retention); history a
//! registered subscriber needs is always retained, tokens only cover
//! *disconnected* gaps). Subscribing with a token whose position has
//! been reclaimed fails loudly rather than silently skipping history.
//!
//! ```
//! use scavenger::{ChangeOp, ChangeStream, ChangeSubscriber, Db, EngineMode, MemEnv, Options,
//!                 SubscribeFrom};
//!
//! let db = Db::open(Options::new(MemEnv::shared(), "cdc-demo", EngineMode::Scavenger)).unwrap();
//! let mut stream = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
//! db.put(b"k", b"v1".to_vec()).unwrap();
//! db.delete(b"k").unwrap();
//! let events = stream.poll_changes(16).unwrap();
//! assert_eq!(events.len(), 2);
//! assert!(matches!(events[0].op, ChangeOp::Put(_)));
//! assert!(matches!(events[1].op, ChangeOp::Delete));
//! // Capture the position, drop the stream, resume later.
//! let token = stream.resume_token();
//! drop(stream);
//! db.put(b"k2", b"v2".to_vec()).unwrap();
//! let mut resumed = db.subscribe_changes(SubscribeFrom::Token(token)).unwrap();
//! let next = resumed.poll_changes(16).unwrap();
//! assert_eq!(next.len(), 1);
//! assert_eq!(next[0].key, b"k2");
//! ```

use crate::db::Db;
use crate::shards::DbShards;
use bytes::Bytes;
use scavenger_lsm::{ChangeCursor, ChangeEvent};
use scavenger_util::coding::{get_fixed32, get_fixed64, put_fixed32, put_fixed64};
use scavenger_util::ikey::{SeqNo, ValueType};
use scavenger_util::{Error, Result};
use std::collections::VecDeque;

/// The logical operation a change event describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeOp {
    /// The key was inserted or overwritten with this value.
    Put(Bytes),
    /// The key was deleted.
    Delete,
}

/// One committed logical change, as delivered to a subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeRecord {
    /// Shard the write committed on (`0` on a single [`Db`]).
    pub shard: usize,
    /// The operation's sequence number in its shard's commit order.
    pub seq: SeqNo,
    /// User key.
    pub key: Vec<u8>,
    /// The operation.
    pub op: ChangeOp,
    /// Transaction id, when the write committed through the 2PC
    /// coordinator (multi-shard batches): every slice of one
    /// transaction carries the same id, so a consumer can regroup
    /// them. `None` for plain writes and for events reconstructed from
    /// WAL catch-up (the WAL does not encode ids).
    pub txn_id: Option<u64>,
}

/// Where a new subscription starts.
#[derive(Debug, Clone)]
pub enum SubscribeFrom {
    /// The oldest change still retained (ring or retained WAL
    /// segments).
    Oldest,
    /// The current tail: only changes committed after the subscribe
    /// call are delivered.
    Latest,
    /// The exact position captured by
    /// [`ChangeStream::resume_token`] on an earlier stream. Fails if
    /// that history has since been reclaimed (no silent skips) or if
    /// the token's shard count does not match the handle.
    Token(ResumeToken),
}

const TOKEN_MAGIC: &[u8; 4] = b"CDC1";

/// A portable position in a change stream: one next-sequence cursor per
/// shard. Encode/decode round-trips through an opaque byte string fit
/// for the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeToken {
    shards: Vec<SeqNo>,
}

impl ResumeToken {
    /// A token from explicit per-shard positions (each the next
    /// sequence to deliver on that shard).
    pub fn new(shards: Vec<SeqNo>) -> ResumeToken {
        ResumeToken { shards }
    }

    /// Per-shard next-sequence positions, indexed by shard.
    pub fn shard_positions(&self) -> &[SeqNo] {
        &self.shards
    }

    /// Serialize: `"CDC1" | fixed32 nshards | fixed64 next_seq per
    /// shard`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * self.shards.len());
        out.extend_from_slice(TOKEN_MAGIC);
        put_fixed32(&mut out, self.shards.len() as u32);
        for &s in &self.shards {
            put_fixed64(&mut out, s);
        }
        out
    }

    /// Parse a serialized token.
    pub fn decode(data: &[u8]) -> Result<ResumeToken> {
        if data.len() < 4 || &data[..4] != TOKEN_MAGIC {
            return Err(Error::invalid_argument("resume token has wrong magic"));
        }
        let mut src = &data[4..];
        let n = get_fixed32(&mut src)? as usize;
        if n == 0 || n > 256 {
            return Err(Error::invalid_argument(format!(
                "resume token shard count {n} out of range"
            )));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(get_fixed64(&mut src)?);
        }
        if !src.is_empty() {
            return Err(Error::invalid_argument("trailing bytes in resume token"));
        }
        Ok(ResumeToken { shards })
    }
}

/// A pull-based subscription to committed changes. Obtained from
/// [`ChangeSubscriber::subscribe_changes`]; dropping the stream
/// unregisters its cursors (releasing any WAL history they pinned).
pub trait ChangeStream: Send {
    /// Deliver up to `max` pending changes, advancing the stream. An
    /// empty result means the stream is caught up with the commit
    /// head, not that it ended — poll again after more writes.
    fn poll_changes(&mut self, max: usize) -> Result<Vec<ChangeRecord>>;

    /// The stream's exact current position, as a token a later
    /// [`SubscribeFrom::Token`] subscription continues from. Buffered
    /// but undelivered events are *not* considered delivered: resuming
    /// from the token re-delivers them.
    fn resume_token(&self) -> ResumeToken;

    /// How far the stream trails the commit head, in sequence numbers
    /// (max across shards; `0` when fully caught up).
    fn lag(&self) -> u64;
}

/// The subscription capability: engines that can serve ordered change
/// streams. A separate trait (not part of [`Engine`](crate::Engine)) so
/// the core triple stays `dyn`-compatible and backends without a WAL
/// simply don't implement it.
pub trait ChangeSubscriber {
    /// This engine's stream type.
    type Stream: ChangeStream;

    /// Open a subscription starting at `from`.
    ///
    /// While the subscription lives, the engine retains every WAL
    /// segment the cursor still needs — reclamation never deletes
    /// history out from under a registered subscriber, at the price of
    /// disk space accounted as pinned bytes toward the §III-D
    /// throttle.
    fn subscribe_changes(&self, from: SubscribeFrom) -> Result<Self::Stream>;
}

/// Events fetched per cursor poll while refilling a shard buffer.
const FEED_CHUNK: usize = 256;

/// One shard's cursor plus its undelivered-event buffer.
struct ShardFeed {
    shard: usize,
    cursor: ChangeCursor,
    buf: VecDeque<ChangeRecord>,
}

impl ShardFeed {
    fn new(shard: usize, cursor: ChangeCursor) -> ShardFeed {
        ShardFeed {
            shard,
            cursor,
            buf: VecDeque::new(),
        }
    }

    /// Translate one LSM-level event, filtering internal relocation
    /// writes.
    fn record(shard: usize, e: ChangeEvent) -> Option<ChangeRecord> {
        let op = match e.vtype {
            ValueType::Value => ChangeOp::Put(e.value),
            ValueType::Deletion => ChangeOp::Delete,
            // GC write-back relocations: no user-visible change.
            ValueType::ValueRef => return None,
        };
        Some(ChangeRecord {
            shard,
            seq: e.seq,
            key: e.key,
            op,
            txn_id: e.txn_id,
        })
    }

    /// Refill the buffer until it holds at least one record or the
    /// cursor is caught up (a chunk may consist entirely of filtered
    /// relocation events, so one poll is not necessarily enough).
    fn refill(&mut self) -> Result<()> {
        while self.buf.is_empty() {
            let events = self.cursor.poll(FEED_CHUNK)?;
            if events.is_empty() {
                return Ok(());
            }
            for e in events {
                if let Some(r) = Self::record(self.shard, e) {
                    self.buf.push_back(r);
                }
            }
        }
        Ok(())
    }

    /// The next sequence this feed would deliver: the head of the
    /// buffer if events are staged, the cursor position otherwise.
    fn next_seq(&self) -> SeqNo {
        self.buf
            .front()
            .map(|r| r.seq)
            .unwrap_or_else(|| self.cursor.next_seq())
    }

    /// Head-lag of this feed, counting buffered-but-undelivered
    /// events.
    fn lag(&self) -> u64 {
        self.cursor.lag() + self.buf.len() as u64
    }
}

impl std::fmt::Debug for ShardFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardFeed")
            .field("shard", &self.shard)
            .field("next_seq", &self.next_seq())
            .field("buffered", &self.buf.len())
            .finish()
    }
}

/// [`ChangeStream`] of a single [`Db`].
#[derive(Debug)]
pub struct DbChangeStream {
    feed: ShardFeed,
}

impl ChangeStream for DbChangeStream {
    fn poll_changes(&mut self, max: usize) -> Result<Vec<ChangeRecord>> {
        let mut out = Vec::new();
        while out.len() < max {
            self.feed.refill()?;
            match self.feed.buf.pop_front() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }

    fn resume_token(&self) -> ResumeToken {
        ResumeToken::new(vec![self.feed.next_seq()])
    }

    fn lag(&self) -> u64 {
        self.feed.lag()
    }
}

impl ChangeSubscriber for Db {
    type Stream = DbChangeStream;

    fn subscribe_changes(&self, from: SubscribeFrom) -> Result<DbChangeStream> {
        let log = self.lsm().change_log();
        let cursor = match from {
            SubscribeFrom::Oldest => log.subscribe_oldest()?,
            SubscribeFrom::Latest => log.subscribe_tail()?,
            SubscribeFrom::Token(t) => {
                let pos = t.shard_positions();
                if pos.len() != 1 {
                    return Err(Error::invalid_argument(format!(
                        "resume token is for a {}-shard store, this handle has 1",
                        pos.len()
                    )));
                }
                log.subscribe_from(pos[0])?
            }
        };
        Ok(DbChangeStream {
            feed: ShardFeed::new(0, cursor),
        })
    }
}

/// [`ChangeStream`] of a [`DbShards`]: one cursor per shard, merged
/// deterministically by `(seq, shard)` over the events pending at each
/// poll. Each shard's substream is exactly its committed history, in
/// order, gap-free.
#[derive(Debug)]
pub struct ShardsChangeStream {
    feeds: Vec<ShardFeed>,
}

impl ChangeStream for ShardsChangeStream {
    fn poll_changes(&mut self, max: usize) -> Result<Vec<ChangeRecord>> {
        let mut out = Vec::new();
        while out.len() < max {
            for feed in &mut self.feeds {
                if feed.buf.is_empty() {
                    feed.refill()?;
                }
            }
            let mut min: Option<(SeqNo, usize)> = None;
            for (i, feed) in self.feeds.iter().enumerate() {
                if let Some(r) = feed.buf.front() {
                    let key = (r.seq, i);
                    if min.is_none_or(|m| key < m) {
                        min = Some(key);
                    }
                }
            }
            match min {
                Some((_, i)) => {
                    out.push(self.feeds[i].buf.pop_front().expect("head just observed"))
                }
                None => break,
            }
        }
        Ok(out)
    }

    fn resume_token(&self) -> ResumeToken {
        ResumeToken::new(self.feeds.iter().map(|f| f.next_seq()).collect())
    }

    fn lag(&self) -> u64 {
        self.feeds.iter().map(|f| f.lag()).max().unwrap_or(0)
    }
}

impl ChangeSubscriber for DbShards {
    type Stream = ShardsChangeStream;

    fn subscribe_changes(&self, from: SubscribeFrom) -> Result<ShardsChangeStream> {
        let n = self.num_shards();
        let mut feeds = Vec::with_capacity(n);
        match from {
            SubscribeFrom::Oldest => {
                for i in 0..n {
                    feeds.push(ShardFeed::new(
                        i,
                        self.shard(i).lsm().change_log().subscribe_oldest()?,
                    ));
                }
            }
            SubscribeFrom::Latest => {
                for i in 0..n {
                    feeds.push(ShardFeed::new(
                        i,
                        self.shard(i).lsm().change_log().subscribe_tail()?,
                    ));
                }
            }
            SubscribeFrom::Token(t) => {
                let pos = t.shard_positions();
                if pos.len() != n {
                    return Err(Error::invalid_argument(format!(
                        "resume token is for a {}-shard store, this handle has {n}",
                        pos.len()
                    )));
                }
                for (i, &p) in pos.iter().enumerate() {
                    feeds.push(ShardFeed::new(
                        i,
                        self.shard(i).lsm().change_log().subscribe_from(p)?,
                    ));
                }
            }
        }
        Ok(ShardsChangeStream { feeds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{EngineMode, Options};
    use crate::shards::ShardedOptions;
    use crate::view::WriteOptions;
    use scavenger_env::MemEnv;
    use scavenger_lsm::WriteBatch;

    fn db(dir: &str) -> Db {
        let mut o = Options::new(MemEnv::shared(), dir, EngineMode::Scavenger);
        o.memtable_size = 8 * 1024;
        Db::open(o).unwrap()
    }

    #[test]
    fn token_roundtrip_and_rejects_garbage() {
        let t = ResumeToken::new(vec![1, 99, 12345]);
        let enc = t.encode();
        assert_eq!(&enc[..4], b"CDC1");
        assert_eq!(ResumeToken::decode(&enc).unwrap(), t);
        assert!(ResumeToken::decode(b"").is_err());
        assert!(ResumeToken::decode(b"XXXX\x01\x00\x00\x00").is_err());
        assert!(ResumeToken::decode(&enc[..enc.len() - 1]).is_err());
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(ResumeToken::decode(&trailing).is_err());
        // Zero shards is malformed.
        assert!(ResumeToken::decode(b"CDC1\x00\x00\x00\x00").is_err());
    }

    #[test]
    fn db_stream_delivers_ordered_history() {
        let db = db("chg-db");
        let mut s = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
        for i in 0..20u32 {
            db.put(format!("key{i:02}"), vec![i as u8; 600]).unwrap();
        }
        db.delete("key05").unwrap();
        let events = s.poll_changes(1024).unwrap();
        assert_eq!(events.len(), 21);
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "gap-free, ordered");
        }
        assert!(matches!(events[20].op, ChangeOp::Delete));
        assert_eq!(events[20].key, b"key05");
        assert_eq!(s.lag(), 0);
        // Caught up: an empty poll, not an error.
        assert!(s.poll_changes(16).unwrap().is_empty());
    }

    #[test]
    fn latest_skips_existing_history() {
        let db = db("chg-latest");
        db.put("before", vec![1u8; 100]).unwrap();
        let mut s = db.subscribe_changes(SubscribeFrom::Latest).unwrap();
        db.put("after", vec![2u8; 100]).unwrap();
        let events = s.poll_changes(16).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, b"after");
    }

    #[test]
    fn token_resumes_where_stream_stopped() {
        let db = db("chg-token");
        let mut s = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
        for i in 0..10u32 {
            db.put(format!("a{i}"), vec![0u8; 64]).unwrap();
        }
        let first = s.poll_changes(4).unwrap();
        assert_eq!(first.len(), 4);
        let token = s.resume_token();
        drop(s);
        let mut resumed = db
            .subscribe_changes(SubscribeFrom::Token(
                ResumeToken::decode(&token.encode()).unwrap(),
            ))
            .unwrap();
        let rest = resumed.poll_changes(64).unwrap();
        assert_eq!(rest.len(), 6);
        assert_eq!(rest[0].seq, first[3].seq + 1, "no gap, no duplicate");
    }

    #[test]
    fn wrong_shard_count_token_is_rejected() {
        let db = db("chg-wrongtoken");
        let err = db
            .subscribe_changes(SubscribeFrom::Token(ResumeToken::new(vec![1, 1])))
            .unwrap_err();
        assert!(err.to_string().contains("2-shard"), "{err}");
    }

    #[test]
    fn sharded_stream_merges_and_regroups_transactions() {
        let mut o = ShardedOptions::new(MemEnv::shared(), "chg-shards", EngineMode::Scavenger);
        o.num_shards = 4;
        o.base.memtable_size = 8 * 1024;
        let db = DbShards::open(o).unwrap();
        let mut s = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();

        // Single-key writes land on one shard each.
        for i in 0..30u32 {
            db.put(format!("key{i:02}"), vec![i as u8; 64]).unwrap();
        }
        // A multi-shard batch goes through the 2PC coordinator and must
        // carry one txn id across its slices.
        let mut batch = WriteBatch::new();
        for i in 0..16u32 {
            batch.put(format!("txn{i:02}"), Bytes::from(vec![9u8; 32]));
        }
        db.write_with(&WriteOptions::default(), batch).unwrap();

        let events = s.poll_changes(4096).unwrap();
        assert_eq!(events.len(), 46);
        // Per-shard order is exactly commit order, gap-free.
        for shard in 0..4 {
            let seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.shard == shard)
                .map(|e| e.seq)
                .collect();
            for w in seqs.windows(2) {
                assert!(w[1] > w[0], "shard {shard} out of order");
            }
        }
        // The transactional slice events all carry the same id.
        let txn_ids: Vec<Option<u64>> = events
            .iter()
            .filter(|e| e.key.starts_with(b"txn"))
            .map(|e| e.txn_id)
            .collect();
        assert_eq!(txn_ids.len(), 16);
        assert!(txn_ids[0].is_some(), "2PC slices must be tagged");
        assert!(txn_ids.iter().all(|id| *id == txn_ids[0]));
        // Plain writes carry no id.
        assert!(events
            .iter()
            .filter(|e| e.key.starts_with(b"key"))
            .all(|e| e.txn_id.is_none()));

        // Token resume on the sharded stream.
        let token = s.resume_token();
        assert_eq!(token.shard_positions().len(), 4);
        drop(s);
        db.put("late", vec![1u8; 32]).unwrap();
        let mut resumed = db.subscribe_changes(SubscribeFrom::Token(token)).unwrap();
        let next = resumed.poll_changes(64).unwrap();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].key, b"late");
    }

    #[test]
    fn streams_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DbChangeStream>();
        assert_send::<ShardsChangeStream>();
    }

    /// Generic code can tail either handle through the trait bound.
    #[test]
    fn trait_is_generic_over_both_handles() {
        fn tail<E: ChangeSubscriber>(db: &E) -> Vec<ChangeRecord> {
            let mut s = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
            s.poll_changes(1024).unwrap()
        }
        let single = db("chg-generic-single");
        single.put("k", vec![1u8; 64]).unwrap();
        assert_eq!(tail(&single).len(), 1);
        let sharded = DbShards::open(ShardedOptions::new(
            MemEnv::shared(),
            "chg-generic-sharded",
            EngineMode::Scavenger,
        ))
        .unwrap();
        sharded.put("k", vec![1u8; 64]).unwrap();
        assert_eq!(tail(&sharded).len(), 1);
    }
}
