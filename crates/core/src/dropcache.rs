//! DropCache: the hotness detector behind hot/cold value separation
//! (paper §III-B3).
//!
//! Compaction (and flush deduplication) drops a key's older versions
//! exactly when the key was overwritten or deleted — i.e. when the key is
//! *hot-write* data. The DropCache records those keys in an LRU, and the
//! flush/GC write paths consult it to route values into hot vs. cold value
//! SSTs. Over time hot files accumulate garbage faster, so the
//! ratio-triggered GC preferentially collects them — reclaiming more space
//! per byte of GC I/O while leaving cold data untouched.
//!
//! The cache stores only keys (~32 B/key per the paper) and serves no
//! foreground requests. For larger deployments the paper suggests a
//! CuckooFilter; [`CuckooDropFilter`] provides that variant.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Capacity at which [`DropCache::new`] starts sharding. Below this a
/// single shard preserves exact global LRU order (and the tiny caches used
/// in tests/experiments); above it, contention matters more than strict
/// cross-shard recency.
const SHARD_CAPACITY_MIN: usize = 4096;

/// Shard count for large caches (power of two for mask indexing).
const NUM_SHARDS: usize = 16;

/// LRU set of recently-dropped (hot-write) user keys.
///
/// Sharded: compaction worker threads insert while the flush and GC write
/// paths call [`contains`](DropCache::contains) for every record they
/// route, so a single global mutex here sits directly on the engine's
/// hottest background paths. Each shard is an independent LRU guarding
/// `capacity / shards` keys; a key's shard is fixed by its hash, so
/// `insert`/`contains` for the same key always agree.
pub struct DropCache {
    shards: Vec<Mutex<Shard>>,
    /// Power-of-two mask over the key hash.
    shard_mask: usize,
    per_shard_capacity: usize,
}

#[derive(Default)]
struct Shard {
    // Key -> generation stamp. The queue holds `(key, stamp)` pairs and
    // lazy expiration skips stale entries, avoiding a doubly-linked list.
    // The `Arc<[u8]>` key allocation is shared between map and queue, so
    // an insert allocates the key bytes exactly once.
    map: HashMap<Arc<[u8]>, u64>,
    queue: VecDeque<(Arc<[u8]>, u64)>,
    next_stamp: u64,
}

impl Shard {
    fn insert(&mut self, key: &[u8], capacity: usize) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        // Reuse the existing allocation when refreshing a resident key.
        let shared: Arc<[u8]> = match self.map.get_key_value(key) {
            Some((k, _)) => k.clone(),
            None => Arc::from(key),
        };
        self.map.insert(shared.clone(), stamp);
        self.queue.push_back((shared, stamp));
        // Evict while over capacity, skipping stale queue entries.
        while self.map.len() > capacity {
            match self.queue.pop_front() {
                Some((k, s)) => {
                    if self.map.get(&k) == Some(&s) {
                        self.map.remove(&k);
                    }
                }
                None => break,
            }
        }
        // Repeated re-inserts of hot keys leave stale `(key, old_stamp)`
        // entries behind; compact the queue (drop every stale entry in one
        // O(len) pass) before it outgrows 2× capacity.
        if self.queue.len() > capacity * 2 {
            let map = &self.map;
            self.queue.retain(|(k, s)| map.get(k) == Some(s));
        }
    }
}

impl DropCache {
    /// Create a DropCache remembering up to `capacity` keys. Large caches
    /// are sharded; small ones keep a single shard (exact LRU order).
    pub fn new(capacity: usize) -> Self {
        let shards = if capacity >= SHARD_CAPACITY_MIN {
            NUM_SHARDS
        } else {
            1
        };
        DropCache::with_shards(capacity, shards)
    }

    /// Create with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        DropCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_mask: shards - 1,
            per_shard_capacity: (capacity.max(1)).div_ceil(shards),
        }
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.shard_mask]
    }

    /// Record a dropped key (refreshes recency).
    pub fn insert(&self, key: &[u8]) {
        self.shard_for(key)
            .lock()
            .insert(key, self.per_shard_capacity);
    }

    /// Is `key` a recent hot-write key?
    pub fn contains(&self, key: &[u8]) -> bool {
        self.shard_for(key).lock().map.contains_key(key)
    }

    /// Number of remembered keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if no keys are remembered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Total lazy-expiration queue entries across shards (bounded at
    /// `2 × capacity + 1` per shard; exposed for tests/diagnostics).
    pub fn queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().queue.len()).sum()
    }

    /// Number of shards (exposed for tests/diagnostics).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// A space-efficient probabilistic alternative to [`DropCache`]: a small
/// cuckoo filter over key fingerprints (paper §III-B3 suggests this for
/// large datasets). False positives cause harmless extra "hot"
/// classifications; false negatives do not occur for resident items.
pub struct CuckooDropFilter {
    buckets: Mutex<Vec<[u16; 4]>>,
    num_buckets: usize,
}

impl CuckooDropFilter {
    /// Create a filter sized for roughly `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        let num_buckets = (capacity / 4 + 1).next_power_of_two();
        CuckooDropFilter {
            buckets: Mutex::new(vec![[0u16; 4]; num_buckets]),
            num_buckets,
        }
    }

    fn fingerprint_and_buckets(&self, key: &[u8]) -> (u16, usize, usize) {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let hv = h.finish();
        let fp = ((hv >> 48) as u16).max(1); // 0 means empty slot
        let b1 = (hv as usize) & (self.num_buckets - 1);
        let mut h2 = DefaultHasher::new();
        fp.hash(&mut h2);
        let b2 = (b1 ^ (h2.finish() as usize)) & (self.num_buckets - 1);
        (fp, b1, b2)
    }

    /// Insert a key's fingerprint (evicting a random victim on overflow,
    /// which only ages out old entries — acceptable for a hotness hint).
    pub fn insert(&self, key: &[u8]) {
        let (fp, b1, b2) = self.fingerprint_and_buckets(key);
        let mut buckets = self.buckets.lock();
        for b in [b1, b2] {
            for slot in buckets[b].iter_mut() {
                if *slot == 0 || *slot == fp {
                    *slot = fp;
                    return;
                }
            }
        }
        // Both buckets full: displace a pseudo-random victim from b1.
        let victim = (fp as usize) % 4;
        buckets[b1][victim] = fp;
    }

    /// May the filter contain this key?
    pub fn contains(&self, key: &[u8]) -> bool {
        let (fp, b1, b2) = self.fingerprint_and_buckets(key);
        let buckets = self.buckets.lock();
        buckets[b1].contains(&fp) || buckets[b2].contains(&fp)
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.num_buckets * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let c = DropCache::new(100);
        c.insert(b"hot-key");
        assert!(c.contains(b"hot-key"));
        assert!(!c.contains(b"cold-key"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = DropCache::new(3);
        for k in ["a", "b", "c", "d"] {
            c.insert(k.as_bytes());
        }
        assert_eq!(c.len(), 3);
        assert!(!c.contains(b"a"), "oldest evicted");
        assert!(c.contains(b"b") && c.contains(b"c") && c.contains(b"d"));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let c = DropCache::new(3);
        c.insert(b"a");
        c.insert(b"b");
        c.insert(b"c");
        c.insert(b"a"); // refresh a
        c.insert(b"d"); // evicts b, not a
        assert!(c.contains(b"a"));
        assert!(!c.contains(b"b"));
    }

    #[test]
    fn heavy_reinsertion_stays_bounded() {
        let c = DropCache::new(8);
        for i in 0..10_000u64 {
            c.insert(format!("k{}", i % 4).as_bytes());
        }
        assert!(c.len() <= 8);
        for i in 0..4u64 {
            assert!(c.contains(format!("k{i}").as_bytes()));
        }
        assert!(
            c.queue_len() <= 8 * 2 + 1,
            "queue compacted, got {}",
            c.queue_len()
        );
    }

    #[test]
    fn large_caches_shard_and_stay_bounded() {
        let c = DropCache::new(16 * 1024);
        assert!(c.num_shards() > 1, "large capacity must shard");
        // Hammer a hot working set much larger than any one shard.
        for round in 0..4u64 {
            for i in 0..8_192u64 {
                c.insert(format!("key-{i:05}-{}", round % 2).as_bytes());
            }
        }
        assert!(c.len() <= 16 * 1024 + c.num_shards());
        assert!(c.queue_len() <= 2 * (16 * 1024) + c.num_shards());
        // Recently inserted keys are still present.
        let hits = (0..8_192u64)
            .filter(|i| c.contains(format!("key-{i:05}-1").as_bytes()))
            .count();
        assert!(hits > 8_000, "recent keys resident: {hits}/8192");
    }

    #[test]
    fn explicit_shard_count_preserves_per_key_routing() {
        let c = DropCache::with_shards(64, 8);
        assert_eq!(c.num_shards(), 8);
        for i in 0..64u64 {
            c.insert(format!("k{i}").as_bytes());
        }
        // Every key routes to the same shard on lookup as on insert.
        let present = (0..64u64)
            .filter(|i| c.contains(format!("k{i}").as_bytes()))
            .count();
        assert!(present >= 48, "most keys resident: {present}");
    }

    #[test]
    fn cuckoo_no_false_negatives_when_resident() {
        let f = CuckooDropFilter::new(1000);
        for i in 0..500u64 {
            f.insert(format!("key-{i}").as_bytes());
        }
        let present = (0..500u64)
            .filter(|i| f.contains(format!("key-{i}").as_bytes()))
            .count();
        // A few insertions may have displaced fingerprints; nearly all stay.
        assert!(present >= 490, "present: {present}");
    }

    #[test]
    fn cuckoo_low_false_positive_rate() {
        let f = CuckooDropFilter::new(4096);
        for i in 0..2000u64 {
            f.insert(format!("key-{i}").as_bytes());
        }
        let fp = (10_000..20_000u64)
            .filter(|i| f.contains(format!("key-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.05, "fp rate {rate}");
    }

    #[test]
    fn cuckoo_memory_is_compact() {
        let f = CuckooDropFilter::new(64 * 1024);
        // 2 bytes per slot, 4 slots per bucket: far below 32 B/key.
        assert!(f.memory_bytes() <= 64 * 1024 * 4);
        assert!(f.memory_bytes() < 64 * 1024 * 32);
    }
}
