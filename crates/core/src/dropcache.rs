//! DropCache: the hotness detector behind hot/cold value separation
//! (paper §III-B3).
//!
//! Compaction (and flush deduplication) drops a key's older versions
//! exactly when the key was overwritten or deleted — i.e. when the key is
//! *hot-write* data. The DropCache records those keys in an LRU, and the
//! flush/GC write paths consult it to route values into hot vs. cold value
//! SSTs. Over time hot files accumulate garbage faster, so the
//! ratio-triggered GC preferentially collects them — reclaiming more space
//! per byte of GC I/O while leaving cold data untouched.
//!
//! The cache stores only keys (~32 B/key per the paper) and serves no
//! foreground requests. For larger deployments the paper suggests a
//! CuckooFilter; [`CuckooDropFilter`] provides that variant.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// LRU set of recently-dropped (hot-write) user keys.
pub struct DropCache {
    inner: Mutex<DropCacheInner>,
    capacity: usize,
}

struct DropCacheInner {
    // Key -> generation stamp; the queue holds (key, stamp) pairs and lazy
    // expiration skips stale entries, avoiding a doubly-linked list.
    map: HashMap<Vec<u8>, u64>,
    queue: VecDeque<(Vec<u8>, u64)>,
    next_stamp: u64,
}

impl DropCache {
    /// Create a DropCache remembering up to `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        DropCache {
            inner: Mutex::new(DropCacheInner {
                map: HashMap::new(),
                queue: VecDeque::new(),
                next_stamp: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Record a dropped key (refreshes recency).
    pub fn insert(&self, key: &[u8]) {
        let mut g = self.inner.lock();
        let stamp = g.next_stamp;
        g.next_stamp += 1;
        g.map.insert(key.to_vec(), stamp);
        g.queue.push_back((key.to_vec(), stamp));
        // Evict while over capacity, skipping stale queue entries.
        while g.map.len() > self.capacity {
            match g.queue.pop_front() {
                Some((k, s)) => {
                    if g.map.get(&k) == Some(&s) {
                        g.map.remove(&k);
                    }
                }
                None => break,
            }
        }
        // Bound queue growth from refreshed duplicates.
        while g.queue.len() > self.capacity * 4 {
            match g.queue.pop_front() {
                Some((k, s)) => {
                    if g.map.get(&k) == Some(&s) {
                        // Still live: re-enqueue at the back to preserve it.
                        g.queue.push_back((k, s));
                        break;
                    }
                }
                None => break,
            }
        }
    }

    /// Is `key` a recent hot-write key?
    pub fn contains(&self, key: &[u8]) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Number of remembered keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if no keys are remembered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }
}

/// A space-efficient probabilistic alternative to [`DropCache`]: a small
/// cuckoo filter over key fingerprints (paper §III-B3 suggests this for
/// large datasets). False positives cause harmless extra "hot"
/// classifications; false negatives do not occur for resident items.
pub struct CuckooDropFilter {
    buckets: Mutex<Vec<[u16; 4]>>,
    num_buckets: usize,
}

impl CuckooDropFilter {
    /// Create a filter sized for roughly `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        let num_buckets = (capacity / 4 + 1).next_power_of_two();
        CuckooDropFilter {
            buckets: Mutex::new(vec![[0u16; 4]; num_buckets]),
            num_buckets,
        }
    }

    fn fingerprint_and_buckets(&self, key: &[u8]) -> (u16, usize, usize) {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let hv = h.finish();
        let fp = ((hv >> 48) as u16).max(1); // 0 means empty slot
        let b1 = (hv as usize) & (self.num_buckets - 1);
        let mut h2 = DefaultHasher::new();
        fp.hash(&mut h2);
        let b2 = (b1 ^ (h2.finish() as usize)) & (self.num_buckets - 1);
        (fp, b1, b2)
    }

    /// Insert a key's fingerprint (evicting a random victim on overflow,
    /// which only ages out old entries — acceptable for a hotness hint).
    pub fn insert(&self, key: &[u8]) {
        let (fp, b1, b2) = self.fingerprint_and_buckets(key);
        let mut buckets = self.buckets.lock();
        for b in [b1, b2] {
            for slot in buckets[b].iter_mut() {
                if *slot == 0 || *slot == fp {
                    *slot = fp;
                    return;
                }
            }
        }
        // Both buckets full: displace a pseudo-random victim from b1.
        let victim = (fp as usize) % 4;
        buckets[b1][victim] = fp;
    }

    /// May the filter contain this key?
    pub fn contains(&self, key: &[u8]) -> bool {
        let (fp, b1, b2) = self.fingerprint_and_buckets(key);
        let buckets = self.buckets.lock();
        buckets[b1].contains(&fp) || buckets[b2].contains(&fp)
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.num_buckets * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let c = DropCache::new(100);
        c.insert(b"hot-key");
        assert!(c.contains(b"hot-key"));
        assert!(!c.contains(b"cold-key"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = DropCache::new(3);
        for k in ["a", "b", "c", "d"] {
            c.insert(k.as_bytes());
        }
        assert_eq!(c.len(), 3);
        assert!(!c.contains(b"a"), "oldest evicted");
        assert!(c.contains(b"b") && c.contains(b"c") && c.contains(b"d"));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let c = DropCache::new(3);
        c.insert(b"a");
        c.insert(b"b");
        c.insert(b"c");
        c.insert(b"a"); // refresh a
        c.insert(b"d"); // evicts b, not a
        assert!(c.contains(b"a"));
        assert!(!c.contains(b"b"));
    }

    #[test]
    fn heavy_reinsertion_stays_bounded() {
        let c = DropCache::new(8);
        for i in 0..10_000u64 {
            c.insert(format!("k{}", i % 4).as_bytes());
        }
        assert!(c.len() <= 8);
        for i in 0..4u64 {
            assert!(c.contains(format!("k{i}").as_bytes()));
        }
        let g = c.inner.lock();
        assert!(g.queue.len() <= 8 * 4 + 1, "queue bounded, got {}", g.queue.len());
    }

    #[test]
    fn cuckoo_no_false_negatives_when_resident() {
        let f = CuckooDropFilter::new(1000);
        for i in 0..500u64 {
            f.insert(format!("key-{i}").as_bytes());
        }
        let present = (0..500u64)
            .filter(|i| f.contains(format!("key-{i}").as_bytes()))
            .count();
        // A few insertions may have displaced fingerprints; nearly all stay.
        assert!(present >= 490, "present: {present}");
    }

    #[test]
    fn cuckoo_low_false_positive_rate() {
        let f = CuckooDropFilter::new(4096);
        for i in 0..2000u64 {
            f.insert(format!("key-{i}").as_bytes());
        }
        let fp = (10_000..20_000u64)
            .filter(|i| f.contains(format!("key-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.05, "fp rate {rate}");
    }

    #[test]
    fn cuckoo_memory_is_compact() {
        let f = CuckooDropFilter::new(64 * 1024);
        // 2 bytes per slot, 4 slots per bucket: far below 32 B/key.
        assert!(f.memory_bytes() <= 64 * 1024 * 4);
        assert!(f.memory_bytes() < 64 * 1024 * 32);
    }
}
