//! The value store: value-file registry, garbage accounting, inheritance,
//! and reference resolution.
//!
//! This is where the paper's space-amplification bookkeeping lives
//! (§II-D): every value file tracks its **exposed garbage** — bytes whose
//! index entries have already been merged away by compaction. The
//! ratio-triggered GC consumes this accounting; the experiment harness
//! reads it to reproduce Figures 5 and 18.

pub mod inherit;
pub mod vtable;

use crate::options::VFormat;
use bytes::Bytes;
use inherit::InheritForest;
use parking_lot::RwLock;
use scavenger_env::{EnvRef, IoClass};
use scavenger_lsm::{NewValueFile, ValueEditBundle};
use scavenger_table::btable::BlockCache;
use scavenger_table::props::TableType;
use scavenger_util::ikey::{SeqNo, ValueRef};
use scavenger_util::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vtable::{vfile_path, VReader};

/// Metadata for one value file.
#[derive(Debug)]
pub struct VsstMeta {
    /// File number.
    pub file: u64,
    /// On-disk size.
    pub size: u64,
    /// Number of records.
    pub entries: u64,
    /// Total value bytes stored.
    pub value_bytes: u64,
    /// Hot-classified file (paper §III-B3).
    pub hot: bool,
    /// On-disk format.
    pub format: VFormat,
    /// Exposed garbage, bytes.
    pub exposed_bytes: AtomicU64,
    /// Exposed garbage, entries.
    pub exposed_entries: AtomicU64,
}

impl VsstMeta {
    /// Exposed-garbage ratio in `[0, 1]` — the GC trigger metric.
    pub fn garbage_ratio(&self) -> f64 {
        if self.value_bytes == 0 {
            return if self.entries > 0 { 1.0 } else { 0.0 };
        }
        (self.exposed_bytes.load(Ordering::Relaxed) as f64 / self.value_bytes as f64).min(1.0)
    }

    /// True once every record has been exposed as garbage (BlobDB's
    /// deletion condition: the file "exhausted its data through
    /// compaction", §II-C).
    pub fn is_exhausted(&self) -> bool {
        self.entries > 0 && self.exposed_entries.load(Ordering::Relaxed) >= self.entries
    }

    /// Estimated live value bytes remaining.
    pub fn live_bytes(&self) -> u64 {
        self.value_bytes
            .saturating_sub(self.exposed_bytes.load(Ordering::Relaxed))
    }
}

fn format_tag(format: VFormat) -> u8 {
    match format {
        VFormat::BTable => TableType::BTable as u8,
        VFormat::RTable => TableType::RTable as u8,
        VFormat::BlobLog => TableType::BlobLog as u8,
    }
}

fn tag_format(tag: u8) -> Result<VFormat> {
    match tag {
        t if t == TableType::BTable as u8 => Ok(VFormat::BTable),
        t if t == TableType::RTable as u8 => Ok(VFormat::RTable),
        t if t == TableType::BlobLog as u8 => Ok(VFormat::BlobLog),
        other => Err(Error::corruption(format!(
            "bad value-file format tag {other}"
        ))),
    }
}

/// Build the manifest record for a new value file.
pub fn new_value_file_record(
    file: u64,
    info: vtable::VFileInfo,
    hot: bool,
    format: VFormat,
) -> NewValueFile {
    NewValueFile {
        file,
        size: info.size,
        entries: info.entries,
        value_bytes: info.value_bytes,
        hot,
        format: format_tag(format),
    }
}

/// The value store.
pub struct ValueStore {
    env: EnvRef,
    dir: String,
    cache: Arc<BlockCache>,
    cache_ns: u64,
    files: RwLock<HashMap<u64, Arc<VsstMeta>>>,
    forest: RwLock<InheritForest>,
    readers: RwLock<HashMap<u64, Arc<VReader>>>,
}

impl ValueStore {
    /// Create an empty value store rooted at `dir`.
    pub fn new(env: EnvRef, dir: impl Into<String>, cache: Arc<BlockCache>) -> Self {
        ValueStore {
            env,
            dir: dir.into(),
            cache,
            cache_ns: 0,
            files: RwLock::new(HashMap::new()),
            forest: RwLock::new(InheritForest::new()),
            readers: RwLock::new(HashMap::new()),
        }
    }

    /// Set the cache namespace mixed into block-cache keys (see
    /// [`scavenger_table::cache::cache_file_id`]). Required when `cache`
    /// is shared with other stores whose file numbers collide (sharding).
    pub fn with_cache_namespace(mut self, cache_ns: u64) -> Self {
        self.cache_ns = cache_ns;
        self
    }

    /// Apply a committed bundle to in-memory state. Returns the `(file,
    /// format)` pairs removed, whose disk files the caller should delete.
    pub fn apply_bundle(&self, bundle: &ValueEditBundle) -> Vec<(u64, VFormat)> {
        for nf in &bundle.new_files {
            if let Ok(format) = tag_format(nf.format) {
                self.files.write().insert(
                    nf.file,
                    Arc::new(VsstMeta {
                        file: nf.file,
                        size: nf.size,
                        entries: nf.entries,
                        value_bytes: nf.value_bytes,
                        hot: nf.hot,
                        format,
                        exposed_bytes: AtomicU64::new(0),
                        exposed_entries: AtomicU64::new(0),
                    }),
                );
            }
        }
        {
            let mut forest = self.forest.write();
            for (old, new) in &bundle.inherits {
                forest.add_edge(*old, *new);
            }
        }
        for (file, bytes, entries) in &bundle.garbage {
            self.add_garbage(*file, *bytes, *entries);
        }
        let mut removed = Vec::new();
        for file in &bundle.deleted_files {
            if let Some(meta) = self.files.write().remove(file) {
                self.readers.write().remove(file);
                removed.push((*file, meta.format));
            }
        }
        removed
    }

    /// Charge exposed garbage to `file`, resolving through the inheritance
    /// forest if the file was already collected. (Resolution at charge
    /// time may pick among several leaves; the first live one is charged —
    /// an approximation that only shifts *which* descendant is collected
    /// first, never the total.)
    pub fn add_garbage(&self, file: u64, bytes: u64, entries: u64) {
        let files = self.files.read();
        if let Some(meta) = files.get(&file) {
            meta.exposed_bytes.fetch_add(bytes, Ordering::Relaxed);
            meta.exposed_entries.fetch_add(entries, Ordering::Relaxed);
            return;
        }
        let leaves = self.forest.read().leaves(file);
        for leaf in leaves {
            if let Some(meta) = files.get(&leaf) {
                meta.exposed_bytes.fetch_add(bytes, Ordering::Relaxed);
                meta.exposed_entries.fetch_add(entries, Ordering::Relaxed);
                return;
            }
        }
        // The entire lineage is gone; nothing to charge.
    }

    /// Metadata of a live file.
    pub fn meta(&self, file: u64) -> Option<Arc<VsstMeta>> {
        self.files.read().get(&file).cloned()
    }

    /// All live files, in file-number order (deterministic).
    pub fn all_files(&self) -> Vec<Arc<VsstMeta>> {
        let mut v: Vec<Arc<VsstMeta>> = self.files.read().values().cloned().collect();
        v.sort_unstable_by_key(|m| m.file);
        v
    }

    /// Live file numbers, ascending (deterministic — callers iterate
    /// these for orphan cleanup and relocation targeting).
    pub fn live_file_numbers(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.files.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// GC candidates: live files with `garbage_ratio >= threshold`,
    /// hottest-garbage first (paper: "prioritizes files with higher
    /// garbage ratios"). Equal ratios break by file number so candidate
    /// selection — and therefore the whole GC job sequence — is
    /// deterministic rather than following `HashMap` iteration order.
    pub fn gc_candidates(&self, threshold: f64) -> Vec<Arc<VsstMeta>> {
        let mut v: Vec<Arc<VsstMeta>> = self
            .files
            .read()
            .values()
            .filter(|m| m.garbage_ratio() >= threshold)
            .cloned()
            .collect();
        v.sort_by(|a, b| {
            b.garbage_ratio()
                .partial_cmp(&a.garbage_ratio())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.file.cmp(&b.file))
        });
        v
    }

    /// Files whose every record is exposed garbage (BlobDB reclamation),
    /// in file-number order (deterministic).
    pub fn exhausted_files(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .files
            .read()
            .values()
            .filter(|m| m.is_exhausted())
            .map(|m| m.file)
            .collect();
        v.sort_unstable();
        v
    }

    /// Total bytes across live value files.
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|m| m.size).sum()
    }

    /// Total exposed garbage bytes (the numerator of the paper's
    /// Exposed/Valid ratio, Fig. 5b / 18b).
    pub fn total_exposed_bytes(&self) -> u64 {
        self.files
            .read()
            .values()
            .map(|m| m.exposed_bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Total value bytes across live files.
    pub fn total_value_bytes(&self) -> u64 {
        self.files.read().values().map(|m| m.value_bytes).sum()
    }

    /// Current holders of whatever survived from `file`.
    pub fn resolve_leaves(&self, file: u64) -> Vec<u64> {
        self.forest.read().leaves(file)
    }

    /// GC validity: does `candidate` descend from `file`?
    pub fn resolves_to(&self, file: u64, candidate: u64) -> bool {
        self.forest.read().resolves_to(file, candidate)
    }

    /// Cached foreground reader for `file`.
    pub fn reader(&self, file: u64) -> Result<Arc<VReader>> {
        if let Some(r) = self.readers.read().get(&file) {
            return Ok(r.clone());
        }
        let meta = self
            .meta(file)
            .ok_or_else(|| Error::not_found(format!("value file {file}")))?;
        let reader = Arc::new(VReader::open(
            &self.env,
            &self.dir,
            file,
            self.cache_ns,
            meta.format,
            Some(self.cache.clone()),
            IoClass::FgValueRead,
        )?);
        self.readers.write().insert(file, reader.clone());
        Ok(reader)
    }

    /// Open a *GC-class* reader (separate from the foreground reader so
    /// I/O is accounted as GC read).
    pub fn gc_reader(&self, file: u64) -> Result<VReader> {
        let meta = self
            .meta(file)
            .ok_or_else(|| Error::not_found(format!("value file {file}")))?;
        VReader::open(
            &self.env,
            &self.dir,
            file,
            self.cache_ns,
            meta.format,
            Some(self.cache.clone()),
            IoClass::GcRead,
        )
    }

    /// Resolve and read the value behind a reference.
    ///
    /// * Address-based formats (blob logs) read `(offset, size)` directly.
    /// * Keyed formats resolve the stored file through the inheritance
    ///   forest and probe each leaf (bloom-guarded) for the exact
    ///   `(user_key, seq)` version.
    pub fn read_ref(&self, user_key: &[u8], seq: SeqNo, vref: &ValueRef) -> Result<Bytes> {
        // A concurrent GC can retire a file between our resolution and the
        // read; on that narrow race, re-resolve once (the inheritance
        // forest already knows the file's heirs).
        match self.read_ref_once(user_key, seq, vref) {
            Err(Error::NotFound(_)) => self.read_ref_once(user_key, seq, vref),
            other => other,
        }
    }

    fn read_ref_once(&self, user_key: &[u8], seq: SeqNo, vref: &ValueRef) -> Result<Bytes> {
        // Fast path: the file is live (no GC touched it).
        if let Some(meta) = self.meta(vref.file) {
            if meta.format == VFormat::BlobLog {
                return self.reader(vref.file)?.read_at(vref.offset, vref.size);
            }
            if let Some(v) = self.reader(vref.file)?.get_exact(user_key, seq)? {
                return Ok(v);
            }
            // Keyed file is live but lacks the record — fall through to
            // resolution (the file may predate a merged-GC output).
        }
        for leaf in self.resolve_leaves(vref.file) {
            if self.meta(leaf).is_none() {
                continue;
            }
            let reader = self.reader(leaf)?;
            if !reader.may_contain(user_key) {
                continue;
            }
            if let Some(v) = reader.get_exact(user_key, seq)? {
                return Ok(v);
            }
        }
        Err(Error::corruption(format!(
            "dangling value reference: file {} (user key {} bytes, seq {seq})",
            vref.file,
            user_key.len()
        )))
    }

    /// Delete the disk file behind a removed value file.
    pub fn delete_file(&self, file: u64, format: VFormat) {
        let _ = self.env.remove_file(&vfile_path(&self.dir, file, format));
    }

    /// Remove on-disk value files not present in the registry (crash
    /// leftovers). Returns how many were removed.
    pub fn delete_orphans(&self) -> Result<usize> {
        use scavenger_lsm::filename::{parse_path, FileKind};
        let live: std::collections::HashSet<u64> = self.live_file_numbers().into_iter().collect();
        let mut removed = 0;
        for p in self.env.list_prefix(&format!("{}/", self.dir))? {
            if let Some((kind, n)) = parse_path(&self.dir, &p) {
                if matches!(kind, FileKind::ValueTable | FileKind::BlobLog) && !live.contains(&n) {
                    let _ = self.env.remove_file(&p);
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// Environment handle.
    pub fn env(&self) -> &EnvRef {
        &self.env
    }

    /// Directory prefix.
    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// Shared block cache.
    pub fn cache(&self) -> Arc<BlockCache> {
        self.cache.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::vtable::{VFileInfo, VWriter};
    use super::*;
    use scavenger_env::MemEnv;
    use scavenger_table::btable::TableOptions;
    use scavenger_table::KeyCmp;

    fn store() -> ValueStore {
        let env: EnvRef = MemEnv::shared();
        ValueStore::new(env, "db", Arc::new(BlockCache::with_capacity(1 << 20)))
    }

    fn nf(file: u64, entries: u64, value_bytes: u64) -> NewValueFile {
        new_value_file_record(
            file,
            VFileInfo {
                size: value_bytes + 100,
                entries,
                value_bytes,
            },
            false,
            VFormat::RTable,
        )
    }

    #[test]
    fn register_and_garbage_ratio() {
        let vs = store();
        vs.apply_bundle(&ValueEditBundle {
            new_files: vec![nf(1, 10, 1000)],
            ..Default::default()
        });
        let m = vs.meta(1).unwrap();
        assert_eq!(m.garbage_ratio(), 0.0);
        vs.add_garbage(1, 250, 2);
        assert!((m.garbage_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(m.live_bytes(), 750);
        assert!(!m.is_exhausted());
        vs.add_garbage(1, 750, 8);
        assert!(m.is_exhausted());
        assert_eq!(vs.exhausted_files(), vec![1]);
    }

    #[test]
    fn candidates_sorted_by_ratio() {
        let vs = store();
        vs.apply_bundle(&ValueEditBundle {
            new_files: vec![nf(1, 10, 1000), nf(2, 10, 1000), nf(3, 10, 1000)],
            ..Default::default()
        });
        vs.add_garbage(1, 300, 3);
        vs.add_garbage(2, 800, 8);
        vs.add_garbage(3, 100, 1);
        let c = vs.gc_candidates(0.2);
        let order: Vec<u64> = c.iter().map(|m| m.file).collect();
        assert_eq!(order, vec![2, 1], "ratio-desc, file 3 below threshold");
    }

    #[test]
    fn garbage_follows_inheritance_to_leaves() {
        let vs = store();
        vs.apply_bundle(&ValueEditBundle {
            new_files: vec![nf(1, 10, 1000)],
            ..Default::default()
        });
        // GC moved file 1 into file 2.
        vs.apply_bundle(&ValueEditBundle {
            new_files: vec![nf(2, 8, 800)],
            deleted_files: vec![1],
            inherits: vec![(1, 2)],
            ..Default::default()
        });
        assert!(vs.meta(1).is_none());
        // Late-arriving garbage for dead file 1 lands on its heir.
        vs.add_garbage(1, 400, 4);
        assert!((vs.meta(2).unwrap().garbage_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn totals_track_live_files_only() {
        let vs = store();
        vs.apply_bundle(&ValueEditBundle {
            new_files: vec![nf(1, 10, 1000), nf(2, 10, 2000)],
            ..Default::default()
        });
        vs.add_garbage(1, 100, 1);
        assert_eq!(vs.total_value_bytes(), 3000);
        assert_eq!(vs.total_exposed_bytes(), 100);
        vs.apply_bundle(&ValueEditBundle {
            deleted_files: vec![1],
            ..Default::default()
        });
        assert_eq!(vs.total_value_bytes(), 2000);
        assert_eq!(vs.total_exposed_bytes(), 0);
    }

    #[test]
    fn read_ref_resolves_through_gc_moves() {
        let env: EnvRef = MemEnv::shared();
        let vs = ValueStore::new(
            env.clone(),
            "db",
            Arc::new(BlockCache::with_capacity(1 << 20)),
        );
        let topts = TableOptions {
            cmp: KeyCmp::Internal,
            ..TableOptions::default()
        };

        // Original file 5 holds k@7.
        let mut w = VWriter::create(
            &env,
            "db",
            5,
            VFormat::RTable,
            topts.clone(),
            IoClass::Flush,
        )
        .unwrap();
        let rec = w.add(b"k", 7, b"the-value").unwrap();
        let info = w.finish().unwrap();
        vs.apply_bundle(&ValueEditBundle {
            new_files: vec![new_value_file_record(5, info, false, VFormat::RTable)],
            ..Default::default()
        });
        let vref = ValueRef {
            file: 5,
            size: rec.size,
            offset: rec.offset,
        };
        assert_eq!(&vs.read_ref(b"k", 7, &vref).unwrap()[..], b"the-value");

        // GC moves contents to file 9; the stale ref still resolves.
        let mut w =
            VWriter::create(&env, "db", 9, VFormat::RTable, topts, IoClass::GcWrite).unwrap();
        w.add(b"k", 7, b"the-value").unwrap();
        let info = w.finish().unwrap();
        let removed = vs.apply_bundle(&ValueEditBundle {
            new_files: vec![new_value_file_record(9, info, false, VFormat::RTable)],
            deleted_files: vec![5],
            inherits: vec![(5, 9)],
            ..Default::default()
        });
        assert_eq!(removed, vec![(5, VFormat::RTable)]);
        for (f, fmt) in removed {
            vs.delete_file(f, fmt);
        }
        assert_eq!(&vs.read_ref(b"k", 7, &vref).unwrap()[..], b"the-value");
        // A key that never existed: dangling.
        let bad = ValueRef {
            file: 5,
            size: 3,
            offset: 0,
        };
        assert!(vs.read_ref(b"zz", 1, &bad).is_err());
    }

    #[test]
    fn orphan_cleanup_removes_unregistered_files() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        let vs = ValueStore::new(
            eref.clone(),
            "db",
            Arc::new(BlockCache::with_capacity(1024)),
        );
        let topts = TableOptions {
            cmp: KeyCmp::Internal,
            ..TableOptions::default()
        };
        let mut w =
            VWriter::create(&eref, "db", 3, VFormat::RTable, topts, IoClass::Flush).unwrap();
        w.add(b"k", 1, b"v").unwrap();
        w.finish().unwrap();
        assert!(eref.file_exists("db/000003.vsst"));
        assert_eq!(vs.delete_orphans().unwrap(), 1);
        assert!(!eref.file_exists("db/000003.vsst"));
    }
}
