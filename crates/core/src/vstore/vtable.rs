//! Value-file writers and readers across the three formats.
//!
//! * **BTable** — TerarkDB's sorted value SST (sparse index).
//! * **RTable** — Scavenger's record-based table (dense partitioned index,
//!   enabling Lazy Read).
//! * **BlobLog** — BlobDB/Titan's append-ordered blob file; values are
//!   addressed by `(offset, size)` and carry a per-record CRC:
//!
//! ```text
//! record := varint32 klen | varint32 vlen | key | value | fixed32 crc
//! ```
//!
//! Keys inside value files are full internal keys `(user_key, seq, Value)`,
//! so multiple versions of a user key (kept alive by snapshots) never
//! collide, and GC validity checks can compare exact sequence numbers.

use crate::options::VFormat;
use bytes::Bytes;
use scavenger_env::{EnvRef, IoClass, RandomAccessFile, WritableFile};
use scavenger_lsm::filename::{blob_path, value_table_path};
use scavenger_table::btable::{BTableBuilder, BTableReader, BlockCache, TableOptions};
use scavenger_table::handle::BlockHandle;
use scavenger_table::rtable::{RTableBuilder, RTableReader};
use scavenger_table::KeyCmp;
use scavenger_util::coding::{get_varint32, put_varint32};
use scavenger_util::ikey::{extract_user_key, make_internal_key, SeqNo, ValueType};
use scavenger_util::{crc32c, Error, Result};
use std::sync::Arc;

/// Path of a value file for the given format.
pub fn vfile_path(dir: &str, file: u64, format: VFormat) -> String {
    match format {
        VFormat::BlobLog => blob_path(dir, file),
        _ => value_table_path(dir, file),
    }
}

/// Location of a record produced by a writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrittenRecord {
    /// For `BlobLog`: byte offset of the *value* within the file.
    /// For table formats: offset of the record (informational).
    pub offset: u64,
    /// Value size in bytes.
    pub size: u32,
}

/// Summary of a finished value file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VFileInfo {
    /// Final file size.
    pub size: u64,
    /// Number of records.
    pub entries: u64,
    /// Total value bytes stored.
    pub value_bytes: u64,
}

/// A value-file writer of any format.
pub enum VWriter {
    /// RecordBasedTable writer (Scavenger).
    R(RTableBuilder),
    /// BlockBasedTable writer (TerarkDB).
    B(BTableBuilder),
    /// Blob-log writer (BlobDB/Titan).
    Blob(BlobLogWriter),
}

impl VWriter {
    /// Create a writer for `file` in `dir`.
    pub fn create(
        env: &EnvRef,
        dir: &str,
        file: u64,
        format: VFormat,
        table_opts: TableOptions,
        class: IoClass,
    ) -> Result<VWriter> {
        let path = vfile_path(dir, file, format);
        let w = env.new_writable(&path, class)?;
        Ok(match format {
            VFormat::RTable => VWriter::R(RTableBuilder::new(w, table_opts)),
            VFormat::BTable => VWriter::B(BTableBuilder::new(w, table_opts)),
            VFormat::BlobLog => VWriter::Blob(BlobLogWriter::new(w)),
        })
    }

    /// Append a record keyed by `(user_key, seq)`. Keys must arrive in
    /// internal-key order for table formats.
    pub fn add(&mut self, user_key: &[u8], seq: SeqNo, value: &[u8]) -> Result<WrittenRecord> {
        let ikey = make_internal_key(user_key, seq, ValueType::Value);
        match self {
            VWriter::R(b) => {
                let h = b.add(&ikey, value)?;
                Ok(WrittenRecord {
                    offset: h.offset,
                    size: value.len() as u32,
                })
            }
            VWriter::B(b) => {
                let offset = b.estimated_size();
                b.add(&ikey, value)?;
                Ok(WrittenRecord {
                    offset,
                    size: value.len() as u32,
                })
            }
            VWriter::Blob(b) => b.add(&ikey, value),
        }
    }

    /// Append a batch of records keyed by `(user_key, seq)` with one
    /// staged file append per batch: blocks are built once per batch
    /// instead of once per [`add`](Self::add), while the on-disk bytes
    /// (and therefore record addresses) stay identical to repeated `add`
    /// calls. Keys must arrive in internal-key order for table formats.
    ///
    /// When `target` is set, the batch stops as soon as the staged file
    /// size — the exact value [`estimated_size`](Self::estimated_size)
    /// would report after that record — reaches it, reproducing the
    /// per-record rollover decision of the `add` loop it replaces.
    /// Returns the written records plus how many inputs were consumed
    /// (always ≥ 1 for a non-empty batch); the caller finishes the file
    /// and retries the remainder on a fresh writer.
    pub fn add_batch(
        &mut self,
        recs: &[(&[u8], SeqNo, &[u8])],
        target: Option<u64>,
    ) -> Result<(Vec<WrittenRecord>, usize)> {
        let ikeys: Vec<Vec<u8>> = recs
            .iter()
            .map(|&(ukey, seq, _)| make_internal_key(ukey, seq, ValueType::Value))
            .collect();
        let pairs: Vec<(&[u8], &[u8])> = ikeys
            .iter()
            .zip(recs)
            .map(|(ikey, &(_, _, value))| (ikey.as_slice(), value))
            .collect();
        match self {
            VWriter::R(b) => {
                let (handles, consumed) = b.add_batch(&pairs, target)?;
                let written = handles
                    .into_iter()
                    .zip(recs)
                    .map(|(h, &(_, _, value))| WrittenRecord {
                        offset: h.offset,
                        size: value.len() as u32,
                    })
                    .collect();
                Ok((written, consumed))
            }
            VWriter::B(b) => {
                let (offsets, consumed) = b.add_batch(&pairs, target)?;
                let written = offsets
                    .into_iter()
                    .zip(recs)
                    .map(|(offset, &(_, _, value))| WrittenRecord {
                        offset,
                        size: value.len() as u32,
                    })
                    .collect();
                Ok((written, consumed))
            }
            VWriter::Blob(b) => b.add_batch(&pairs, target),
        }
    }

    /// Bytes written so far.
    pub fn estimated_size(&self) -> u64 {
        match self {
            VWriter::R(b) => b.estimated_size(),
            VWriter::B(b) => b.estimated_size(),
            VWriter::Blob(b) => b.len(),
        }
    }

    /// Records written so far.
    pub fn num_entries(&self) -> u64 {
        match self {
            VWriter::R(b) => b.num_entries(),
            VWriter::B(b) => b.num_entries(),
            VWriter::Blob(b) => b.entries,
        }
    }

    /// Finish the file.
    pub fn finish(self) -> Result<VFileInfo> {
        match self {
            VWriter::R(b) => {
                let built = b.finish()?;
                Ok(VFileInfo {
                    size: built.file_size,
                    entries: built.props.num_entries,
                    value_bytes: built.props.raw_value_bytes,
                })
            }
            VWriter::B(b) => {
                let built = b.finish()?;
                Ok(VFileInfo {
                    size: built.file_size,
                    entries: built.props.num_entries,
                    value_bytes: built.props.raw_value_bytes,
                })
            }
            VWriter::Blob(b) => b.finish(),
        }
    }
}

/// Append-ordered blob-log writer.
pub struct BlobLogWriter {
    file: Box<dyn WritableFile>,
    /// Records written.
    pub entries: u64,
    /// Value bytes written.
    pub value_bytes: u64,
}

impl BlobLogWriter {
    /// Wrap a fresh writable file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        BlobLogWriter {
            file,
            entries: 0,
            value_bytes: 0,
        }
    }

    /// Append a record; returns the value's address.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> Result<WrittenRecord> {
        let mut header = Vec::with_capacity(10 + ikey.len());
        put_varint32(&mut header, ikey.len() as u32);
        put_varint32(&mut header, value.len() as u32);
        header.extend_from_slice(ikey);
        let value_offset = self.file.len() + header.len() as u64;
        self.file.append(&header)?;
        self.file.append(value)?;
        let crc = crc32c::extend(crc32c::value(ikey), value);
        self.file.append(&crc.to_le_bytes())?;
        self.entries += 1;
        self.value_bytes += value.len() as u64;
        Ok(WrittenRecord {
            offset: value_offset,
            size: value.len() as u32,
        })
    }

    /// Append a batch of `(internal_key, value)` records with one staged
    /// file append, stopping early once the staged log size reaches
    /// `target` (see [`VWriter::add_batch`]). Byte layout and value
    /// addresses are identical to repeated [`add`](Self::add) calls.
    pub fn add_batch(
        &mut self,
        recs: &[(&[u8], &[u8])],
        target: Option<u64>,
    ) -> Result<(Vec<WrittenRecord>, usize)> {
        let base = self.file.len();
        let mut buf: Vec<u8> = Vec::new();
        let mut written = Vec::with_capacity(recs.len());
        let mut consumed = 0usize;
        for &(ikey, value) in recs {
            let mut header = Vec::with_capacity(10 + ikey.len());
            put_varint32(&mut header, ikey.len() as u32);
            put_varint32(&mut header, value.len() as u32);
            header.extend_from_slice(ikey);
            let value_offset = base + buf.len() as u64 + header.len() as u64;
            buf.extend_from_slice(&header);
            buf.extend_from_slice(value);
            let crc = crc32c::extend(crc32c::value(ikey), value);
            buf.extend_from_slice(&crc.to_le_bytes());
            self.entries += 1;
            self.value_bytes += value.len() as u64;
            written.push(WrittenRecord {
                offset: value_offset,
                size: value.len() as u32,
            });
            consumed += 1;
            if let Some(t) = target {
                if base + buf.len() as u64 >= t {
                    break;
                }
            }
        }
        if !buf.is_empty() {
            self.file.append(&buf)?;
        }
        Ok((written, consumed))
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.file.len() == 0
    }

    /// Finish the log.
    pub fn finish(mut self) -> Result<VFileInfo> {
        self.file.sync()?;
        Ok(VFileInfo {
            size: self.file.len(),
            entries: self.entries,
            value_bytes: self.value_bytes,
        })
    }
}

/// One record parsed from a blob log during a GC scan.
#[derive(Debug, Clone)]
pub struct BlobRecord {
    /// Full internal key.
    pub ikey: Vec<u8>,
    /// Value bytes.
    pub value: Bytes,
    /// Address of the value within the file.
    pub value_offset: u64,
}

/// A value-file reader of any format.
pub enum VReader {
    /// RecordBasedTable reader.
    R(RTableReader),
    /// BlockBasedTable reader.
    B(BTableReader),
    /// Blob-log reader.
    Blob(BlobLogReader),
}

impl VReader {
    /// Open `file` in `dir` for the given format; block fetches go through
    /// `cache` (table formats only), keyed under the store's `cache_ns`
    /// namespace (`0` for a private cache).
    pub fn open(
        env: &EnvRef,
        dir: &str,
        file: u64,
        cache_ns: u64,
        format: VFormat,
        cache: Option<Arc<BlockCache>>,
        class: IoClass,
    ) -> Result<VReader> {
        let path = vfile_path(dir, file, format);
        let f = env.open_random_access(&path, class)?;
        let cache_id = scavenger_table::cache::cache_file_id(cache_ns, file);
        Ok(match format {
            VFormat::RTable => {
                VReader::R(RTableReader::open(f, cache_id, cache, KeyCmp::Internal)?)
            }
            VFormat::BTable => {
                VReader::B(BTableReader::open(f, cache_id, cache, KeyCmp::Internal)?)
            }
            VFormat::BlobLog => VReader::Blob(BlobLogReader::new(f)),
        })
    }

    /// Bloom check on a user key (always true for blob logs).
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        match self {
            VReader::R(r) => r.may_contain(user_key),
            VReader::B(r) => r.may_contain(user_key),
            VReader::Blob(_) => true,
        }
    }

    /// Exact keyed lookup of version `(user_key, seq)` (table formats).
    pub fn get_exact(&self, user_key: &[u8], seq: SeqNo) -> Result<Option<Bytes>> {
        let target = make_internal_key(user_key, seq, ValueType::Value);
        let got = match self {
            VReader::R(r) => r.get(&target)?,
            VReader::B(r) => r.get(&target)?,
            VReader::Blob(_) => return Err(Error::invalid_argument("keyed lookup on a blob log")),
        };
        match got {
            Some((k, v)) if k == target => Ok(Some(v)),
            _ => Ok(None),
        }
    }

    /// Address-based value read (blob logs).
    pub fn read_at(&self, offset: u64, size: u32) -> Result<Bytes> {
        match self {
            VReader::Blob(r) => r.file.read_at(offset, size as usize),
            _ => Err(Error::invalid_argument("address read on a keyed table")),
        }
    }

    /// GC full scan: every record with its value (charges the whole file).
    pub fn scan_all(&self) -> Result<Vec<BlobRecord>> {
        match self {
            VReader::Blob(r) => r.scan_all(),
            VReader::B(r) => {
                let mut out = Vec::new();
                let mut it = r.iter();
                it.seek_to_first();
                while it.valid() {
                    out.push(BlobRecord {
                        ikey: it.key().to_vec(),
                        value: it.value(),
                        value_offset: 0,
                    });
                    it.next();
                }
                it.status()?;
                Ok(out)
            }
            VReader::R(r) => {
                let mut out = Vec::new();
                let mut it = r.iter(false);
                it.seek_to_first();
                while it.valid() {
                    out.push(BlobRecord {
                        ikey: it.key().to_vec(),
                        value: it.value(),
                        value_offset: 0,
                    });
                    it.next();
                }
                it.status()?;
                Ok(out)
            }
        }
    }

    /// Lazy Read (paper §III-B1): all keys + record handles, index-only
    /// I/O. RTables only.
    pub fn read_lazy_index(&self) -> Result<Vec<(Vec<u8>, BlockHandle)>> {
        match self {
            VReader::R(r) => r.read_index(),
            _ => Err(Error::invalid_argument("lazy read requires an RTable")),
        }
    }

    /// Fetch one record by handle (RTable).
    pub fn read_record(&self, handle: BlockHandle) -> Result<(Vec<u8>, Bytes)> {
        match self {
            VReader::R(r) => r.read_record(handle),
            _ => Err(Error::invalid_argument("record read requires an RTable")),
        }
    }

    /// Underlying file length.
    pub fn file_len(&self) -> u64 {
        match self {
            VReader::Blob(r) => r.file.len(),
            VReader::R(_) | VReader::B(_) => 0,
        }
    }
}

/// Reader over a blob log.
pub struct BlobLogReader {
    file: Arc<dyn RandomAccessFile>,
}

impl BlobLogReader {
    /// Wrap an open file.
    pub fn new(file: Arc<dyn RandomAccessFile>) -> Self {
        BlobLogReader { file }
    }

    /// Sequentially parse the whole log (the GC "Read" step for
    /// BlobDB/Titan — this is the expensive full-file read the paper's
    /// Lazy Read eliminates). Reads are issued in 4 KiB chunks, modelling
    /// the paper's readahead-disabled GC configuration (§IV-A).
    pub fn scan_all(&self) -> Result<Vec<BlobRecord>> {
        const CHUNK: usize = 4096;
        let len = self.file.len() as usize;
        let mut raw = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let n = CHUNK.min(len - off);
            raw.extend_from_slice(&self.file.read_at(off as u64, n)?);
            off += n;
        }
        let data = bytes::Bytes::from(raw);
        let mut out = Vec::new();
        let mut cur = &data[..];
        let mut consumed = 0usize;
        while !cur.is_empty() {
            let before = cur.len();
            let klen = get_varint32(&mut cur)? as usize;
            let vlen = get_varint32(&mut cur)? as usize;
            let header = before - cur.len();
            if cur.len() < klen + vlen + 4 {
                return Err(Error::corruption("truncated blob record"));
            }
            let ikey = cur[..klen].to_vec();
            let value_off = consumed + header + klen;
            let value = data.slice(value_off..value_off + vlen);
            let stored = u32::from_le_bytes(cur[klen + vlen..klen + vlen + 4].try_into().unwrap());
            let actual = crc32c::extend(crc32c::value(&ikey), &value);
            if stored != actual {
                return Err(Error::corruption("blob record checksum mismatch"));
            }
            out.push(BlobRecord {
                ikey,
                value,
                value_offset: value_off as u64,
            });
            cur = &cur[klen + vlen + 4..];
            consumed += header + klen + vlen + 4;
        }
        Ok(out)
    }
}

/// Extract `(user_key, seq)` from a value-file record key.
pub fn parse_record_key(ikey: &[u8]) -> Result<(&[u8], SeqNo)> {
    let p = scavenger_util::ikey::parse_internal_key(ikey)?;
    Ok((p.user_key, p.seq))
}

/// The user-key portion of a record key.
pub fn record_user_key(ikey: &[u8]) -> &[u8] {
    extract_user_key(ikey)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;

    fn table_opts() -> TableOptions {
        TableOptions {
            cmp: KeyCmp::Internal,
            ..TableOptions::default()
        }
    }

    fn roundtrip(format: VFormat) {
        let env: EnvRef = MemEnv::shared();
        let mut w = VWriter::create(&env, "db", 9, format, table_opts(), IoClass::Flush).unwrap();
        let mut recs = Vec::new();
        for i in 0..100u64 {
            let key = format!("key{i:04}");
            let value = vec![(i % 251) as u8; 200 + (i as usize % 64)];
            let r = w.add(key.as_bytes(), 1000 + i, &value).unwrap();
            recs.push((key, 1000 + i, value, r));
        }
        let info = w.finish().unwrap();
        assert_eq!(info.entries, 100);
        assert!(info.value_bytes >= 100 * 200);

        let r = VReader::open(&env, "db", 9, 0, format, None, IoClass::FgValueRead).unwrap();
        match format {
            VFormat::BlobLog => {
                for (_, _, value, rec) in &recs {
                    let got = r.read_at(rec.offset, rec.size).unwrap();
                    assert_eq!(&got[..], value.as_slice());
                }
            }
            _ => {
                for (key, seq, value, _) in &recs {
                    let got = r.get_exact(key.as_bytes(), *seq).unwrap().unwrap();
                    assert_eq!(&got[..], value.as_slice());
                }
                // Wrong seq -> miss.
                assert!(r.get_exact(recs[0].0.as_bytes(), 1).unwrap().is_none());
            }
        }
        // GC scan sees everything in order.
        let scanned = r.scan_all().unwrap();
        assert_eq!(scanned.len(), 100);
        for (rec, (key, seq, value, _)) in scanned.iter().zip(recs.iter()) {
            let (uk, s) = parse_record_key(&rec.ikey).unwrap();
            assert_eq!(uk, key.as_bytes());
            assert_eq!(s, *seq);
            assert_eq!(&rec.value[..], value.as_slice());
        }
    }

    #[test]
    fn btable_value_file_roundtrip() {
        roundtrip(VFormat::BTable);
    }

    #[test]
    fn rtable_value_file_roundtrip() {
        roundtrip(VFormat::RTable);
    }

    #[test]
    fn bloblog_value_file_roundtrip() {
        roundtrip(VFormat::BlobLog);
    }

    #[test]
    fn bloblog_scan_offsets_are_addressable() {
        let env: EnvRef = MemEnv::shared();
        let mut w = VWriter::create(
            &env,
            "db",
            3,
            VFormat::BlobLog,
            table_opts(),
            IoClass::Flush,
        )
        .unwrap();
        w.add(b"a", 1, b"valueA").unwrap();
        w.add(b"b", 2, b"valueB").unwrap();
        w.finish().unwrap();
        let r = VReader::open(&env, "db", 3, 0, VFormat::BlobLog, None, IoClass::GcRead).unwrap();
        let recs = r.scan_all().unwrap();
        for rec in recs {
            let direct = r.read_at(rec.value_offset, rec.value.len() as u32).unwrap();
            assert_eq!(direct, rec.value);
        }
    }

    #[test]
    fn bloblog_corruption_detected_on_scan() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        let mut w = VWriter::create(
            &eref,
            "db",
            4,
            VFormat::BlobLog,
            table_opts(),
            IoClass::Flush,
        )
        .unwrap();
        w.add(b"k", 5, &vec![9u8; 500]).unwrap();
        w.finish().unwrap();
        env.corrupt_byte("db/000004.blob", 50).unwrap();
        let r = VReader::open(&eref, "db", 4, 0, VFormat::BlobLog, None, IoClass::GcRead).unwrap();
        assert!(r.scan_all().is_err());
    }

    #[test]
    fn lazy_index_only_for_rtable() {
        let env: EnvRef = MemEnv::shared();
        for (file, format) in [(1u64, VFormat::BTable), (2, VFormat::RTable)] {
            let mut w =
                VWriter::create(&env, "db", file, format, table_opts(), IoClass::Flush).unwrap();
            w.add(b"k", 1, &vec![1u8; 4096]).unwrap();
            w.finish().unwrap();
        }
        let b = VReader::open(&env, "db", 1, 0, VFormat::BTable, None, IoClass::GcRead).unwrap();
        assert!(b.read_lazy_index().is_err());
        let r = VReader::open(&env, "db", 2, 0, VFormat::RTable, None, IoClass::GcRead).unwrap();
        let idx = r.read_lazy_index().unwrap();
        assert_eq!(idx.len(), 1);
        let (k, v) = r.read_record(idx[0].1).unwrap();
        let (uk, seq) = parse_record_key(&k).unwrap();
        assert_eq!((uk, seq), (b"k".as_slice(), 1));
        assert_eq!(v.len(), 4096);
    }

    /// `add_batch` must produce byte-identical files (and identical
    /// record addresses) to per-record `add` in every format — GC modes
    /// mixing the two paths rely on this for bit-identical outcomes.
    #[test]
    fn add_batch_matches_per_add_bytes() {
        for format in [VFormat::RTable, VFormat::BTable, VFormat::BlobLog] {
            let env: EnvRef = MemEnv::shared();
            let recs: Vec<(Vec<u8>, SeqNo, Vec<u8>)> = (0..200u64)
                .map(|i| {
                    (
                        format!("key{i:05}").into_bytes(),
                        500 + i,
                        vec![(i % 251) as u8; 100 + (i as usize % 900)],
                    )
                })
                .collect();
            let mut one = VWriter::create(&env, "db", 1, format, table_opts(), IoClass::Flush)
                .expect("create per-add writer");
            let mut single = Vec::new();
            for (k, s, v) in &recs {
                single.push(one.add(k, *s, v).unwrap());
            }
            let info_one = one.finish().unwrap();

            let mut two = VWriter::create(&env, "db", 2, format, table_opts(), IoClass::Flush)
                .expect("create batched writer");
            let mut batched = Vec::new();
            // Uneven batch sizes so partition/data-block flushes land
            // mid-batch as well as on batch boundaries.
            let mut rest: &[(Vec<u8>, SeqNo, Vec<u8>)] = &recs;
            for chunk in [7usize, 64, 1, 128] {
                let take = chunk.min(rest.len());
                let refs: Vec<(&[u8], SeqNo, &[u8])> = rest[..take]
                    .iter()
                    .map(|(k, s, v)| (k.as_slice(), *s, v.as_slice()))
                    .collect();
                let (w, consumed) = two.add_batch(&refs, None).unwrap();
                assert_eq!(consumed, take, "no target -> whole batch consumed");
                batched.extend(w);
                rest = &rest[take..];
            }
            let refs: Vec<(&[u8], SeqNo, &[u8])> = rest
                .iter()
                .map(|(k, s, v)| (k.as_slice(), *s, v.as_slice()))
                .collect();
            let (w, _) = two.add_batch(&refs, None).unwrap();
            batched.extend(w);
            let info_two = two.finish().unwrap();

            assert_eq!(single, batched, "{format:?}: record addresses diverge");
            assert_eq!(info_one.size, info_two.size, "{format:?}");
            assert_eq!(info_one.entries, info_two.entries, "{format:?}");
            let p1 = vfile_path("db", 1, format);
            let p2 = vfile_path("db", 2, format);
            let f1 = env.open_random_access(&p1, IoClass::GcRead).unwrap();
            let f2 = env.open_random_access(&p2, IoClass::GcRead).unwrap();
            assert_eq!(f1.len(), f2.len(), "{format:?}: file sizes diverge");
            let b1 = f1.read_at(0, f1.len() as usize).unwrap();
            let b2 = f2.read_at(0, f2.len() as usize).unwrap();
            assert_eq!(b1, b2, "{format:?}: file bytes diverge");
        }
    }

    /// With a `target`, `add_batch` consumes records up to and including
    /// the one that crosses it — the same rollover boundary a per-record
    /// `add` + `estimated_size` loop would pick.
    #[test]
    fn add_batch_honors_size_target() {
        for format in [VFormat::RTable, VFormat::BTable, VFormat::BlobLog] {
            let env: EnvRef = MemEnv::shared();
            let recs: Vec<(Vec<u8>, SeqNo, Vec<u8>)> = (0..50u64)
                .map(|i| (format!("k{i:04}").into_bytes(), i + 1, vec![7u8; 512]))
                .collect();
            let refs: Vec<(&[u8], SeqNo, &[u8])> = recs
                .iter()
                .map(|(k, s, v)| (k.as_slice(), *s, v.as_slice()))
                .collect();
            let target = 4 * 1024u64;
            let mut w = VWriter::create(&env, "db", 9, format, table_opts(), IoClass::Flush)
                .expect("create writer");
            let (written, consumed) = w.add_batch(&refs, Some(target)).unwrap();
            assert_eq!(written.len(), consumed);
            assert!(consumed >= 1, "{format:?}: must make progress");
            assert!(
                consumed < recs.len(),
                "{format:?}: target must stop the batch early"
            );
            assert!(
                w.estimated_size() >= target,
                "{format:?}: stopped only once the target was reached"
            );
            // Replaying the same records through per-record adds must pick
            // the identical rollover record.
            let mut per = VWriter::create(&env, "db", 10, format, table_opts(), IoClass::Flush)
                .expect("create per-add writer");
            let mut per_consumed = 0usize;
            for (k, s, v) in &recs {
                per.add(k, *s, v).unwrap();
                per_consumed += 1;
                if per.estimated_size() >= target {
                    break;
                }
            }
            assert_eq!(
                consumed, per_consumed,
                "{format:?}: rollover point diverges"
            );
        }
    }

    #[test]
    fn vsst_and_blob_use_distinct_paths() {
        assert_eq!(vfile_path("db", 7, VFormat::RTable), "db/000007.vsst");
        assert_eq!(vfile_path("db", 7, VFormat::BTable), "db/000007.vsst");
        assert_eq!(vfile_path("db", 7, VFormat::BlobLog), "db/000007.blob");
    }
}
