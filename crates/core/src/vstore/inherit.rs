//! Inheritance forest for no-writeback GC (paper §II-B).
//!
//! TerarkDB (and Scavenger) never rewrite index entries during GC.
//! Instead, when GC moves the valid records of file `F` into new files
//! `{G, H}` (hot/cold split can produce more than one output), the engine
//! records edges `F → G`, `F → H`. A reference stored in the index that
//! still names `F` is resolved at read time by walking to the *leaves* of
//! `F`'s subtree — the files that currently hold whatever survived from
//! `F`. Each GC consumes whole files, so interior nodes never gain new
//! children after deletion; the forest only grows at its leaves.

use std::collections::HashMap;

/// The `old file → new files` DAG.
#[derive(Debug, Default)]
pub struct InheritForest {
    children: HashMap<u64, Vec<u64>>,
}

impl InheritForest {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `new` inherits (part of) `old`'s contents.
    pub fn add_edge(&mut self, old: u64, new: u64) {
        let c = self.children.entry(old).or_default();
        if !c.contains(&new) {
            c.push(new);
        }
    }

    /// True if `file` has no descendants (its contents were never GC-moved).
    pub fn is_leaf(&self, file: u64) -> bool {
        !self.children.contains_key(&file)
    }

    /// The current holders of whatever survived from `file`: all leaf
    /// descendants (or `file` itself if it was never collected).
    pub fn leaves(&self, file: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack = vec![file];
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            match self.children.get(&f) {
                Some(kids) => stack.extend(kids.iter().copied()),
                None => out.push(f),
            }
        }
        out.sort_unstable();
        out
    }

    /// True if `candidate` is among the leaves of `file` — the GC validity
    /// test: a record read from `candidate` whose index entry names `file`
    /// is still live only if `candidate` descends from `file`.
    pub fn resolves_to(&self, file: u64, candidate: u64) -> bool {
        if file == candidate && self.is_leaf(file) {
            return true;
        }
        let mut stack = vec![file];
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            match self.children.get(&f) {
                Some(kids) => stack.extend(kids.iter().copied()),
                None => {
                    if f == candidate {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Number of recorded edges (for stats).
    pub fn edge_count(&self) -> usize {
        self.children.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_file_resolves_to_itself() {
        let f = InheritForest::new();
        assert_eq!(f.leaves(7), vec![7]);
        assert!(f.resolves_to(7, 7));
        assert!(!f.resolves_to(7, 8));
    }

    #[test]
    fn single_chain_resolution() {
        let mut f = InheritForest::new();
        f.add_edge(1, 2);
        f.add_edge(2, 3);
        assert_eq!(f.leaves(1), vec![3]);
        assert!(f.resolves_to(1, 3));
        assert!(!f.resolves_to(1, 2), "interior nodes are not holders");
        assert!(f.resolves_to(2, 3));
    }

    #[test]
    fn hot_cold_split_produces_two_leaves() {
        let mut f = InheritForest::new();
        f.add_edge(1, 10); // hot output
        f.add_edge(1, 11); // cold output
        assert_eq!(f.leaves(1), vec![10, 11]);
        assert!(f.resolves_to(1, 10));
        assert!(f.resolves_to(1, 11));
    }

    #[test]
    fn merged_gc_creates_shared_children() {
        // GC of {4, 5} into 20: both old files resolve to 20.
        let mut f = InheritForest::new();
        f.add_edge(4, 20);
        f.add_edge(5, 20);
        assert_eq!(f.leaves(4), vec![20]);
        assert_eq!(f.leaves(5), vec![20]);
        // Validity: a record in 20 may descend from either.
        assert!(f.resolves_to(4, 20));
        assert!(f.resolves_to(5, 20));
        assert!(!f.resolves_to(4, 5));
    }

    #[test]
    fn deep_mixed_forest() {
        let mut f = InheritForest::new();
        // 1 -> {2,3}; 2 -> 4; 3 -> {4,5} (4 received from both 2 and 3).
        f.add_edge(1, 2);
        f.add_edge(1, 3);
        f.add_edge(2, 4);
        f.add_edge(3, 4);
        f.add_edge(3, 5);
        assert_eq!(f.leaves(1), vec![4, 5]);
        assert!(f.resolves_to(1, 4));
        assert!(f.resolves_to(1, 5));
        assert_eq!(f.edge_count(), 5);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut f = InheritForest::new();
        f.add_edge(1, 2);
        f.add_edge(1, 2);
        assert_eq!(f.edge_count(), 1);
    }
}
