//! Engine configuration: modes, feature toggles, and tuning knobs.

use crate::throttle::Throttle;
use scavenger_env::EnvRef;
use scavenger_lsm::KTableFormat;
use scavenger_table::btable::BlockCache;
use std::sync::Arc;

/// A shared source of the space usage the §III-D throttle compares
/// against [`Options::space_limit`]. [`DbShards`](crate::DbShards)
/// installs one that sums every shard's footprint, so the limit is
/// enforced globally.
pub type SpaceUsageFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// The five engine designs the paper compares (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineMode {
    /// Vanilla leveled LSM-tree, values inline (RocksDB baseline).
    Rocks,
    /// KV separation with compaction-triggered relocation; blob files are
    /// reclaimed only once fully exhausted (BlobDB baseline, §II-C).
    BlobDb,
    /// KV separation with standalone GC that rewrites valid values and
    /// writes the new address back through the write path (Titan baseline).
    Titan,
    /// KV separation with no-writeback GC via file-number inheritance
    /// (TerarkDB baseline, §II-B).
    Terark,
    /// TerarkDB plus every contribution of the paper (§III).
    Scavenger,
}

impl EngineMode {
    /// All modes, in the paper's presentation order.
    pub const ALL: [EngineMode; 5] = [
        EngineMode::Rocks,
        EngineMode::BlobDb,
        EngineMode::Titan,
        EngineMode::Terark,
        EngineMode::Scavenger,
    ];

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            EngineMode::Rocks => "RocksDB",
            EngineMode::BlobDb => "BlobDB",
            EngineMode::Titan => "Titan",
            EngineMode::Terark => "TerarkDB",
            EngineMode::Scavenger => "Scavenger",
        }
    }
}

/// On-disk format of value files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VFormat {
    /// Sorted value SST with a sparse index (TerarkDB's vSST).
    BTable,
    /// RecordBasedTable with a dense partitioned index (paper §III-B1).
    RTable,
    /// Append-ordered blob log, address-based (BlobDB/Titan).
    BlobLog,
}

/// Garbage-collection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcScheme {
    /// No standalone GC; values relocate during index compaction and a
    /// file dies only when fully exhausted (BlobDB).
    CompactionTriggered,
    /// Standalone GC; valid values are rewritten and the new address is
    /// written back through the LSM write path (Titan).
    Writeback,
    /// Standalone GC with no index write-back: the new file inherits the
    /// old file's identity (TerarkDB / Scavenger).
    NoWriteback,
}

/// Individual design features; ablation experiments (paper Fig. 16/17)
/// toggle these directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Separate values ≥ `sep_threshold` into the value store at flush.
    pub separate: bool,
    /// Value-file format.
    pub vformat: VFormat,
    /// GC scheme (ignored when `separate` is false).
    pub gc: GcScheme,
    /// **R**: Lazy Read — GC reads the RTable's dense index first and
    /// fetches only valid values (§III-B1). Requires `VFormat::RTable`.
    pub lazy_read: bool,
    /// **L**: Index-record separation — key SSTs are DTables, so
    /// GC-Lookups touch only high-priority-cached KF blocks (§III-B2).
    pub dtable_index: bool,
    /// **W**: Hotness-aware writing — DropCache-guided hot/cold vSST
    /// routing at flush and GC (§III-B3).
    pub hotness: bool,
    /// **C**: Space-aware compaction by compensated size (§III-C).
    pub compensated: bool,
    /// Readahead (coalesced record fetches) during GC value reads — the
    /// paper's S-RH variant. Disabled by default for fairness (§IV-A).
    pub gc_readahead: bool,
}

impl Features {
    /// The feature set of a baseline mode.
    pub fn for_mode(mode: EngineMode) -> Features {
        match mode {
            EngineMode::Rocks => Features {
                separate: false,
                vformat: VFormat::BTable,
                gc: GcScheme::NoWriteback,
                lazy_read: false,
                dtable_index: false,
                hotness: false,
                compensated: false,
                gc_readahead: false,
            },
            EngineMode::BlobDb => Features {
                separate: true,
                vformat: VFormat::BlobLog,
                gc: GcScheme::CompactionTriggered,
                lazy_read: false,
                dtable_index: false,
                hotness: false,
                compensated: false,
                gc_readahead: false,
            },
            EngineMode::Titan => Features {
                separate: true,
                vformat: VFormat::BlobLog,
                gc: GcScheme::Writeback,
                lazy_read: false,
                dtable_index: false,
                hotness: false,
                compensated: false,
                gc_readahead: false,
            },
            EngineMode::Terark => Features {
                separate: true,
                vformat: VFormat::BTable,
                gc: GcScheme::NoWriteback,
                lazy_read: false,
                dtable_index: false,
                hotness: false,
                compensated: false,
                gc_readahead: false,
            },
            EngineMode::Scavenger => Features {
                separate: true,
                vformat: VFormat::RTable,
                gc: GcScheme::NoWriteback,
                lazy_read: true,
                dtable_index: true,
                hotness: true,
                compensated: true,
                gc_readahead: false,
            },
        }
    }

    /// TerarkDB + compensated compaction only — the paper's **TDB-C**
    /// ablation (Fig. 16a).
    pub fn tdb_compensated() -> Features {
        Features {
            compensated: true,
            ..Features::for_mode(EngineMode::Terark)
        }
    }
}

/// How the GC validates candidate records against the index LSM-tree
/// (the *GC-Lookup* phase, paper Fig. 8 step ② / Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcValidateMode {
    /// Pick per batch: merge-validate for large batches, the parallel
    /// worker pool for smaller ones (when `gc_threads > 1`), point
    /// lookups otherwise.
    Auto,
    /// One serial point lookup per record per read point — the baseline
    /// the paper profiles as the dominant GC cost.
    Point,
    /// Sort the batch by key and resolve it with one co-sequential sweep
    /// of a pinned LSM iterator per read point, amortizing version
    /// pinning, table-handle, and block-cache accesses.
    Merge,
    /// Partition the sorted batch into contiguous key ranges across a
    /// pool of `gc_threads` scoped worker threads, each sweeping its
    /// range over a shared pinned view of the tree.
    Parallel,
}

/// Whether a GC job overlaps its Validate / Fetch / Write stages
/// (Fig. 8 steps ② / ③ / ④) across threads.
///
/// All settings produce **bit-identical GC outputs** (same value-file
/// bytes, file numbers, and `GcOutcome`) — the choice only moves
/// wall-clock time, so [`Auto`](GcPipeline::Auto) can pick per machine
/// without changing results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPipeline {
    /// Decide at [`Db::open`](crate::db::Db::open) from the hardware
    /// (the default). Decision rule: the pipeline pays a fixed thread +
    /// channel overhead that only real parallelism recoups, so `Auto`
    /// resolves to [`On`](GcPipeline::On) when
    /// [`std::thread::available_parallelism`] reports **two or more**
    /// cores, and to [`Off`](GcPipeline::Off) on a single core (where
    /// the stages would just time-slice one CPU and the overhead is pure
    /// loss — see `BENCH_gc_pipeline.json`, recorded on a 1-core
    /// container at 1.03×).
    Auto,
    /// Run the stages sequentially on the GC thread — the equivalence
    /// baseline.
    Off,
    /// Three-stage bounded-channel pipeline over batches of
    /// [`gc_pipeline_batch`](Options::gc_pipeline_batch) records: batch
    /// *k+1* validates while batch *k* fetches and batch *k−1* writes.
    On,
}

impl GcPipeline {
    /// Resolve [`Auto`](GcPipeline::Auto) against the machine: `On` with
    /// ≥ 2 available cores, `Off` otherwise. Explicit settings pass
    /// through unchanged. Never returns `Auto`.
    pub fn resolved(self) -> GcPipeline {
        match self {
            GcPipeline::Auto => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                if cores >= 2 {
                    GcPipeline::On
                } else {
                    GcPipeline::Off
                }
            }
            other => other,
        }
    }
}

/// Batch size at or above which [`GcValidateMode::Auto`] switches from the
/// worker pool to merge-validate.
pub const AUTO_MERGE_VALIDATE_MIN: usize = 256;

/// Batch size at or above which [`GcValidateMode::Auto`] engages the
/// parallel worker pool instead of serial point lookups.
pub const AUTO_PARALLEL_VALIDATE_MIN: usize = 32;

/// Options for opening a [`Db`](crate::db::Db).
#[derive(Clone)]
pub struct Options {
    /// Storage environment.
    pub env: EnvRef,
    /// Directory prefix for all files.
    pub dir: String,
    /// Base engine design.
    pub mode: EngineMode,
    /// Feature toggles (defaults to `Features::for_mode(mode)`).
    pub features: Features,
    /// KV-separation threshold in bytes (paper: 512 B).
    pub sep_threshold: usize,
    /// Target value-SST size (paper: 256 MB; scaled default 1 MiB).
    pub vsst_target_size: u64,
    /// Garbage-ratio threshold that triggers GC (paper: 0.2).
    pub gc_threshold: f64,
    /// Max candidate files merged per GC job.
    pub gc_batch_files: usize,
    /// Run GC automatically on the write path when candidates exist.
    pub auto_gc: bool,
    /// Auto-GC bandwidth budget as a multiple of foreground write bytes
    /// (GC shares the device with foreground traffic; the paper's
    /// baselines fall behind garbage generation exactly because their GC
    /// needs many I/O bytes per reclaimed byte). Manual `run_gc` and
    /// throttle-driven GC are not paced.
    pub gc_bandwidth_factor: f64,
    /// How GC-Lookup validates candidate records (see [`GcValidateMode`]).
    pub gc_validate_mode: GcValidateMode,
    /// Worker threads for [`GcValidateMode::Parallel`] validation (and the
    /// `Auto` mode's small-batch path), for fanning the GC Fetch phase's
    /// per-file coalesced reads out across source files, for Titan's
    /// full-file Read scans, and for [`DbShards`](crate::DbShards)'
    /// cross-shard maintenance fan-out. `1` disables the pool and makes
    /// maintenance fully sequential (deterministic).
    ///
    /// ```
    /// use scavenger::{Db, EngineMode, MemEnv, Options};
    ///
    /// let mut opts = Options::new(MemEnv::shared(), "gc-threads-demo", EngineMode::Scavenger);
    /// opts.gc_threads = 1; // serial GC I/O + validation, e.g. for reproducible accounting
    /// let db = Db::open(opts).unwrap();
    /// db.put(b"k", vec![0u8; 2048]).unwrap();
    /// db.flush().unwrap();
    /// ```
    pub gc_threads: usize,
    /// Whether GC jobs overlap their Validate / Fetch / Write stages
    /// (see [`GcPipeline`]); resolved against the machine at
    /// [`Db::open`](crate::db::Db::open). All pipeline settings produce
    /// bit-identical GC outputs; `On` trades threads for wall-clock.
    /// Default [`GcPipeline::Auto`]: `On` when two or more cores are
    /// available, `Off` on a single core (the decision rule is spelled
    /// out on [`GcPipeline::Auto`]).
    ///
    /// ```
    /// use scavenger::{EngineMode, GcPipeline, MemEnv, Options};
    ///
    /// let opts = Options::new(MemEnv::shared(), "pipeline-demo", EngineMode::Scavenger);
    /// assert_eq!(opts.gc_pipeline, GcPipeline::Auto);
    /// // Auto never reaches the GC executor: Db::open resolves it to a
    /// // concrete setting based on available parallelism.
    /// assert_ne!(opts.gc_pipeline.resolved(), GcPipeline::Auto);
    /// ```
    pub gc_pipeline: GcPipeline,
    /// Records per pipeline batch when [`gc_pipeline`](Options::gc_pipeline)
    /// is `On`. Smaller batches overlap sooner but amortize less.
    pub gc_pipeline_batch: usize,
    /// DropCache capacity in keys (paper: ~32 B/key; §III-B3).
    pub dropcache_keys: usize,
    /// Space limit in bytes; `None` disables space-aware throttling
    /// (paper §III-D). When set, a write that finds the store over the
    /// limit triggers aggressive reclamation — GC at a lowered threshold
    /// plus forced compactions — before it is admitted.
    ///
    /// ```
    /// use scavenger::{Db, EngineMode, MemEnv, Options};
    ///
    /// let mut opts = Options::new(MemEnv::shared(), "quota-demo", EngineMode::Scavenger);
    /// opts.space_limit = Some(64 * 1024 * 1024); // 64 MiB global footprint cap
    /// let db = Db::open(opts).unwrap();
    /// db.put(b"k", vec![1u8; 4096]).unwrap();
    /// assert_eq!(db.stats().throttle_stalls, 0); // far under the quota
    /// ```
    pub space_limit: Option<u64>,
    /// When throttling, GC threshold is multiplied by this factor
    /// (aggressive reclamation, §III-D).
    pub throttle_gc_factor: f64,
    /// Memtable size.
    pub memtable_size: usize,
    /// L0 file-count compaction trigger.
    pub l0_trigger: usize,
    /// Base level target bytes (compensated units in Scavenger mode).
    pub base_level_bytes: u64,
    /// Inter-level multiplier (paper: 10).
    pub level_multiplier: u64,
    /// Key-SST target size.
    pub ksst_target_size: u64,
    /// Block size.
    pub block_size: usize,
    /// Bloom bits per key (paper: 10).
    pub bloom_bits_per_key: usize,
    /// Block cache capacity (paper: 1% of dataset).
    pub block_cache_bytes: usize,
    /// Write WAL records.
    pub wal: bool,
    /// Run background work inline (deterministic) or on threads.
    pub inline_background: bool,
    /// How many times a *transient* background failure (flush,
    /// compaction, GC) is retried — with bounded exponential backoff —
    /// before the engine degrades to read-only mode. Permanent failures
    /// (corruption, invariant violations) degrade immediately. A
    /// degraded engine serves reads, scans, and pinned views; writes
    /// fail fast with `Error::ReadOnlyMode` until
    /// [`Db::resume`](crate::Db::resume) clears the state.
    pub bg_retry_limit: usize,
    /// Base delay of the exponential backoff between background retries
    /// (`bg_retry_base * 2^attempt`).
    pub bg_retry_base: std::time::Duration,
    /// Share this block cache instead of creating one per engine.
    /// [`DbShards`](crate::DbShards) hands every shard the same
    /// (16-way-sharded) cache so one memory budget covers the whole
    /// sharded store; standalone engines leave it `None`.
    pub block_cache: Option<Arc<BlockCache>>,
    /// Share this throttle (limit + counters) instead of creating one per
    /// engine, so activations and reclamation accounting aggregate across
    /// a shard set. Leave `None` for a standalone engine.
    pub shared_throttle: Option<Arc<Throttle>>,
    /// Space-usage source the throttle compares against
    /// [`space_limit`](Options::space_limit). `None` measures this
    /// engine's own directory; [`DbShards`](crate::DbShards) installs a
    /// closure summing all shard directories so the limit is one global
    /// budget.
    pub space_usage: Option<SpaceUsageFn>,
    /// Change-data-capture WAL retention budget, in bytes. Closed WAL
    /// segments are kept on disk for change-stream catch-up instead of
    /// being deleted, up to this many bytes of *speculative* history.
    /// History a registered subscriber still needs is always retained
    /// regardless of this budget (and accounted as pinned bytes toward
    /// the §III-D throttle). `0` (the default) disables speculative
    /// retention; change streams still work, but a disconnected
    /// subscriber can only resume as far back as live subscribers and
    /// the in-memory ring preserve.
    pub cdc_retention: u64,
    /// Byte budget of the in-memory change-event ring serving tailing
    /// subscribers; cursors that fall below the ring's floor catch up
    /// from retained WAL segments.
    pub cdc_ring_bytes: u64,
}

/// Generates the shared per-engine knob setters for the two typed
/// builders ([`OptionsBuilder`] and
/// [`ShardedOptionsBuilder`](crate::ShardedOptionsBuilder)): both carry
/// the exact same setter set, applied at different field paths, so the
/// growing knob list is declared once instead of accreting positional
/// constructors or diverging hand-mirrored builders.
macro_rules! knob_setters {
    ([$($path:tt).+]) => {
        /// Feature toggles (ablations override the mode's defaults).
        #[must_use]
        pub fn features(mut self, v: crate::options::Features) -> Self {
            self.$($path).+.features = v;
            self
        }

        /// KV-separation threshold in bytes (paper: 512 B).
        #[must_use]
        pub fn sep_threshold(mut self, v: usize) -> Self {
            self.$($path).+.sep_threshold = v;
            self
        }

        /// Target value-SST size.
        #[must_use]
        pub fn vsst_target_size(mut self, v: u64) -> Self {
            self.$($path).+.vsst_target_size = v;
            self
        }

        /// Garbage-ratio threshold that triggers GC (paper: 0.2).
        #[must_use]
        pub fn gc_threshold(mut self, v: f64) -> Self {
            self.$($path).+.gc_threshold = v;
            self
        }

        /// Max candidate files merged per GC job.
        #[must_use]
        pub fn gc_batch_files(mut self, v: usize) -> Self {
            self.$($path).+.gc_batch_files = v;
            self
        }

        /// Run GC automatically on the write path when candidates exist.
        #[must_use]
        pub fn auto_gc(mut self, v: bool) -> Self {
            self.$($path).+.auto_gc = v;
            self
        }

        /// Auto-GC bandwidth budget as a multiple of foreground write
        /// bytes.
        #[must_use]
        pub fn gc_bandwidth_factor(mut self, v: f64) -> Self {
            self.$($path).+.gc_bandwidth_factor = v;
            self
        }

        /// How GC-Lookup validates candidate records.
        #[must_use]
        pub fn gc_validate_mode(mut self, v: crate::options::GcValidateMode) -> Self {
            self.$($path).+.gc_validate_mode = v;
            self
        }

        /// Worker threads for parallel GC validation/IO and cross-shard
        /// maintenance fan-out.
        #[must_use]
        pub fn gc_threads(mut self, v: usize) -> Self {
            self.$($path).+.gc_threads = v;
            self
        }

        /// Whether GC jobs overlap their Validate / Fetch / Write stages.
        #[must_use]
        pub fn gc_pipeline(mut self, v: crate::options::GcPipeline) -> Self {
            self.$($path).+.gc_pipeline = v;
            self
        }

        /// Records per pipeline batch when the GC pipeline is on.
        #[must_use]
        pub fn gc_pipeline_batch(mut self, v: usize) -> Self {
            self.$($path).+.gc_pipeline_batch = v;
            self
        }

        /// DropCache capacity in keys (§III-B3).
        #[must_use]
        pub fn dropcache_keys(mut self, v: usize) -> Self {
            self.$($path).+.dropcache_keys = v;
            self
        }

        /// Space limit in bytes; `None` disables §III-D throttling. For a
        /// sharded store this is the **global** budget.
        #[must_use]
        pub fn space_limit(mut self, v: Option<u64>) -> Self {
            self.$($path).+.space_limit = v;
            self
        }

        /// GC-threshold multiplier while throttling (§III-D).
        #[must_use]
        pub fn throttle_gc_factor(mut self, v: f64) -> Self {
            self.$($path).+.throttle_gc_factor = v;
            self
        }

        /// Memtable size in bytes.
        #[must_use]
        pub fn memtable_size(mut self, v: usize) -> Self {
            self.$($path).+.memtable_size = v;
            self
        }

        /// L0 file-count compaction trigger.
        #[must_use]
        pub fn l0_trigger(mut self, v: usize) -> Self {
            self.$($path).+.l0_trigger = v;
            self
        }

        /// Base level target bytes.
        #[must_use]
        pub fn base_level_bytes(mut self, v: u64) -> Self {
            self.$($path).+.base_level_bytes = v;
            self
        }

        /// Inter-level size multiplier (paper: 10).
        #[must_use]
        pub fn level_multiplier(mut self, v: u64) -> Self {
            self.$($path).+.level_multiplier = v;
            self
        }

        /// Key-SST target size.
        #[must_use]
        pub fn ksst_target_size(mut self, v: u64) -> Self {
            self.$($path).+.ksst_target_size = v;
            self
        }

        /// Block size in bytes.
        #[must_use]
        pub fn block_size(mut self, v: usize) -> Self {
            self.$($path).+.block_size = v;
            self
        }

        /// Bloom bits per key (paper: 10).
        #[must_use]
        pub fn bloom_bits_per_key(mut self, v: usize) -> Self {
            self.$($path).+.bloom_bits_per_key = v;
            self
        }

        /// Block cache capacity in bytes.
        #[must_use]
        pub fn block_cache_bytes(mut self, v: usize) -> Self {
            self.$($path).+.block_cache_bytes = v;
            self
        }

        /// Write WAL records.
        #[must_use]
        pub fn wal(mut self, v: bool) -> Self {
            self.$($path).+.wal = v;
            self
        }

        /// Run background work inline (deterministic) or on threads.
        #[must_use]
        pub fn inline_background(mut self, v: bool) -> Self {
            self.$($path).+.inline_background = v;
            self
        }

        /// Transient background-failure retries before the engine
        /// degrades to read-only mode.
        #[must_use]
        pub fn bg_retry_limit(mut self, v: usize) -> Self {
            self.$($path).+.bg_retry_limit = v;
            self
        }

        /// Base delay of the exponential backoff between background
        /// retries.
        #[must_use]
        pub fn bg_retry_base(mut self, v: std::time::Duration) -> Self {
            self.$($path).+.bg_retry_base = v;
            self
        }

        /// Change-data-capture WAL retention budget in bytes (`0`
        /// disables speculative retention; subscriber-pinned history is
        /// always kept).
        #[must_use]
        pub fn cdc_retention(mut self, v: u64) -> Self {
            self.$($path).+.cdc_retention = v;
            self
        }

        /// Byte budget of the in-memory change-event ring.
        #[must_use]
        pub fn cdc_ring_bytes(mut self, v: u64) -> Self {
            self.$($path).+.cdc_ring_bytes = v;
            self
        }

        /// Share this block cache instead of creating one per engine.
        /// (On a sharded store this becomes the one cache every shard
        /// uses.)
        #[must_use]
        pub fn block_cache(
            mut self,
            v: Option<std::sync::Arc<scavenger_table::btable::BlockCache>>,
        ) -> Self {
            self.$($path).+.block_cache = v;
            self
        }
    };
}
pub(crate) use knob_setters;

/// Typed builder for [`Options`], created by [`Options::builder`].
///
/// Every tuning knob gets a named setter (shared, macro-generated, with
/// the sharded builder), so configuration reads as a fluent chain and
/// new knobs never extend a positional constructor. Finish with
/// [`build`](OptionsBuilder::build) — or [`open`](OptionsBuilder::open)
/// to go straight to a [`Db`](crate::Db).
///
/// ```
/// use scavenger::{EngineMode, GcPipeline, MemEnv, Options};
///
/// let db = Options::builder(MemEnv::shared(), "builder-demo", EngineMode::Scavenger)
///     .memtable_size(64 * 1024)
///     .gc_pipeline(GcPipeline::Off)
///     .space_limit(Some(64 * 1024 * 1024))
///     .open()
///     .unwrap();
/// db.put(b"k", vec![0u8; 2048]).unwrap();
/// assert_eq!(db.get(b"k").unwrap().unwrap().len(), 2048);
/// ```
#[derive(Clone)]
pub struct OptionsBuilder {
    opts: Options,
}

impl OptionsBuilder {
    knob_setters!([opts]);

    // The two cross-engine sharing hooks live only on the single-engine
    // builder: [`DbShards`](crate::DbShards) installs its own shared
    // throttle and set-wide usage source on every shard at open, so a
    // sharded builder offering these setters would silently discard the
    // caller's value.

    /// Share this throttle (limit + counters) across engines.
    #[must_use]
    pub fn shared_throttle(mut self, v: Option<Arc<Throttle>>) -> Self {
        self.opts.shared_throttle = v;
        self
    }

    /// Space-usage source the throttle compares against the limit.
    #[must_use]
    pub fn space_usage(mut self, v: Option<SpaceUsageFn>) -> Self {
        self.opts.space_usage = v;
        self
    }

    /// Finish the chain: the configured [`Options`].
    pub fn build(self) -> Options {
        self.opts
    }

    /// Build and open a [`Db`](crate::Db) in one step.
    pub fn open(self) -> scavenger_util::Result<crate::db::Db> {
        crate::db::Db::open(self.build())
    }
}

impl Options {
    /// Scaled defaults (DESIGN.md §6) for the given mode.
    pub fn new(env: EnvRef, dir: impl Into<String>, mode: EngineMode) -> Options {
        Options {
            env,
            dir: dir.into(),
            mode,
            features: Features::for_mode(mode),
            sep_threshold: 512,
            vsst_target_size: 1024 * 1024,
            gc_threshold: 0.2,
            gc_batch_files: 4,
            auto_gc: true,
            gc_bandwidth_factor: 1.0,
            gc_validate_mode: GcValidateMode::Auto,
            gc_threads: 4,
            gc_pipeline: GcPipeline::Auto,
            gc_pipeline_batch: 1024,
            dropcache_keys: 64 * 1024,
            space_limit: None,
            throttle_gc_factor: 0.25,
            memtable_size: 256 * 1024,
            l0_trigger: 4,
            base_level_bytes: 4 * 1024 * 1024,
            level_multiplier: 10,
            ksst_target_size: 256 * 1024,
            block_size: 4096,
            bloom_bits_per_key: 10,
            block_cache_bytes: 1024 * 1024,
            wal: true,
            inline_background: true,
            bg_retry_limit: 3,
            bg_retry_base: std::time::Duration::from_millis(10),
            block_cache: None,
            shared_throttle: None,
            space_usage: None,
            cdc_retention: 0,
            cdc_ring_bytes: 1024 * 1024,
        }
    }

    /// Typed builder over [`Options::new`]: the same scaled defaults,
    /// with every knob settable by name (see [`OptionsBuilder`]).
    pub fn builder(env: EnvRef, dir: impl Into<String>, mode: EngineMode) -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::new(env, dir, mode),
        }
    }

    /// Derive the index-LSM options (the value hook is attached by
    /// [`Db::open`](crate::db::Db::open)).
    pub(crate) fn lsm_options(&self) -> scavenger_lsm::LsmOptions {
        let mut o = scavenger_lsm::LsmOptions::new(self.env.clone(), self.dir.clone());
        o.memtable_size = self.memtable_size;
        o.l0_trigger = self.l0_trigger;
        o.base_level_bytes = self.base_level_bytes;
        o.level_multiplier = self.level_multiplier;
        o.target_file_size = self.ksst_target_size;
        o.block_size = self.block_size;
        o.bloom_bits_per_key = self.bloom_bits_per_key;
        o.block_cache_bytes = self.block_cache_bytes;
        o.wal = self.wal;
        o.compensated = self.features.compensated;
        o.ktable_format = if self.features.dtable_index {
            KTableFormat::DTable
        } else {
            KTableFormat::BTable
        };
        o.background = if self.inline_background {
            scavenger_lsm::BackgroundMode::Inline
        } else {
            scavenger_lsm::BackgroundMode::Threaded
        };
        o.bg_retry_limit = self.bg_retry_limit;
        o.bg_retry_base = self.bg_retry_base;
        o.cdc_retention = self.cdc_retention;
        o.cdc_ring_bytes = self.cdc_ring_bytes;
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;

    #[test]
    fn mode_feature_matrix_matches_paper() {
        let r = Features::for_mode(EngineMode::Rocks);
        assert!(!r.separate);

        let b = Features::for_mode(EngineMode::BlobDb);
        assert!(b.separate);
        assert_eq!(b.vformat, VFormat::BlobLog);
        assert_eq!(b.gc, GcScheme::CompactionTriggered);

        let t = Features::for_mode(EngineMode::Titan);
        assert_eq!(t.gc, GcScheme::Writeback);

        let k = Features::for_mode(EngineMode::Terark);
        assert_eq!(k.vformat, VFormat::BTable);
        assert_eq!(k.gc, GcScheme::NoWriteback);
        assert!(!k.compensated);

        let s = Features::for_mode(EngineMode::Scavenger);
        assert_eq!(s.vformat, VFormat::RTable);
        assert!(s.lazy_read && s.dtable_index && s.hotness && s.compensated);
        assert!(!s.gc_readahead, "readahead off by default for fairness");
    }

    #[test]
    fn tdb_c_is_terark_plus_compensation_only() {
        let f = Features::tdb_compensated();
        assert!(f.compensated);
        assert!(!f.lazy_read && !f.dtable_index && !f.hotness);
        assert_eq!(f.vformat, VFormat::BTable);
    }

    #[test]
    fn paper_constants_are_defaults() {
        let o = Options::new(MemEnv::shared(), "db", EngineMode::Scavenger);
        assert_eq!(o.sep_threshold, 512);
        assert!((o.gc_threshold - 0.2).abs() < 1e-9);
        assert_eq!(o.level_multiplier, 10);
        assert_eq!(o.bloom_bits_per_key, 10);
        assert!(o.space_limit.is_none());
        assert_eq!(o.gc_validate_mode, GcValidateMode::Auto);
        assert!(o.gc_threads >= 1);
        assert_eq!(
            o.gc_pipeline,
            GcPipeline::Auto,
            "pipeline overlap is machine-keyed by default"
        );
        assert!(o.gc_pipeline_batch >= 1);
    }

    #[test]
    fn gc_pipeline_auto_resolves_to_concrete_setting() {
        // The concrete answer depends on the machine, but Auto must never
        // leak through to the GC executor, and explicit settings must
        // pass through unchanged.
        let r = GcPipeline::Auto.resolved();
        assert!(matches!(r, GcPipeline::On | GcPipeline::Off));
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(r == GcPipeline::On, cores >= 2, "decision rule: ≥2 cores");
        assert_eq!(GcPipeline::Off.resolved(), GcPipeline::Off);
        assert_eq!(GcPipeline::On.resolved(), GcPipeline::On);
    }

    #[test]
    fn lsm_options_inherit_format_and_scoring() {
        let o = Options::new(MemEnv::shared(), "db", EngineMode::Scavenger);
        let l = o.lsm_options();
        assert!(l.compensated);
        assert_eq!(l.ktable_format, KTableFormat::DTable);
        let o = Options::new(MemEnv::shared(), "db", EngineMode::Terark);
        let l = o.lsm_options();
        assert!(!l.compensated);
        assert_eq!(l.ktable_format, KTableFormat::BTable);
    }
}
