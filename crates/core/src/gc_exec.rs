//! The pipelined GC executor: stage orchestration for a GC job.
//!
//! A GC job is the paper's four-step pipeline (Fig. 8):
//!
//! | Fig. 8 | stage | infrastructure here |
//! |---|---|---|
//! | step ① **Read**      | load value-file keys (Lazy Read) or whole records | [`parallel_map_ordered`] fans per-file scans across the `gc_threads` pool |
//! | step ② **GC-Lookup** | validate every pending record against the index   | the *validate* stage of [`run_overlapped`] |
//! | step ③ **Fetch**     | read the surviving values                         | the *fetch* stage; per-file coalesced reads fan out via [`parallel_map_ordered`] |
//! | step ④ **Write**     | rewrite survivors, hot/cold routed                | the *write* stage; [`RouteWriters`] batches records per route via `VWriter::add_batch` |
//!
//! Two orthogonal levers are provided:
//!
//! * **Intra-stage parallelism** — [`parallel_map_ordered`] runs
//!   per-file I/O jobs across scoped worker threads and returns results
//!   in job order, so callers merge them deterministically regardless of
//!   thread scheduling. Used by the Fetch phase (step ③, one job per
//!   source value file) and by Titan's full-file Read phase (step ①).
//! * **Inter-stage overlap** — [`run_overlapped`] threads batches
//!   through the ② → ③ → ④ stages over bounded channels, so batch *k+1*
//!   validates while batch *k* fetches and batch *k−1* writes. Enabled by
//!   [`GcPipeline::On`](crate::options::GcPipeline::On); `Off` runs the
//!   exact same stage closures sequentially on the caller's thread, which
//!   is why the two modes produce **bit-identical** outputs (asserted by
//!   `tests/integration_gc_pipeline.rs`).
//!
//! Determinism rules the whole design: batches are contiguous ranges of
//! the *globally sorted* pending set, channels deliver them in order, a
//! single write stage consumes them in order, and [`RouteWriters`] makes
//! the same per-record rollover decisions as a serial `add` loop — so
//! every mode writes byte-identical value files, allocates the same file
//! numbers, and reports the same [`GcOutcome`](crate::gc::GcOutcome).
//!
//! [`RouteWriters`] also owns the output-file invariant: a writer (and
//! its file number) is allocated only when a record is about to be
//! staged, and a finished writer that somehow holds zero records is
//! deleted rather than surfaced — no GC path can emit an empty
//! `NewValueFile`.

use crate::options::VFormat;
use crate::stats::GcStats;
use crate::vstore::new_value_file_record;
use crate::vstore::vtable::{vfile_path, VWriter, WrittenRecord};
use scavenger_env::{EnvRef, IoClass};
use scavenger_lsm::{FileNumAlloc, NewValueFile};
use scavenger_table::btable::TableOptions;
use scavenger_util::ikey::SeqNo;
use scavenger_util::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};

/// Bounded depth of each inter-stage queue. Depth 1 would serialize
/// producer and consumer on every handoff; depth 2 absorbs one batch of
/// jitter per stage while keeping at most `3 stages + 2·2 queued` batches
/// of values in flight.
pub(crate) const PIPELINE_DEPTH: usize = 2;

/// Mark a stage execution as started; counts an overlap if any other
/// stage is currently mid-batch.
fn stage_enter(active: &AtomicU64, stats: &GcStats) {
    if active.fetch_add(1, Ordering::SeqCst) > 0 {
        stats.pipeline_overlaps.fetch_add(1, Ordering::Relaxed);
    }
}

fn stage_exit(active: &AtomicU64) {
    active.fetch_sub(1, Ordering::SeqCst);
}

/// Hand `item` downstream, counting a backpressure event when the queue
/// is full. Returns `false` when the stage should stop producing (the
/// item was an error, or the consumer is gone).
fn feed<T>(tx: &SyncSender<Result<T>>, item: Result<T>, stats: &GcStats) -> bool {
    let keep_going = item.is_ok();
    match tx.try_send(item) {
        Ok(()) => keep_going,
        Err(TrySendError::Full(item)) => {
            stats.pipeline_backpressure.fetch_add(1, Ordering::Relaxed);
            tx.send(item).is_ok() && keep_going
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// Run `inputs` through three stages — validate (②), fetch (③), write
/// (④) — overlapped on bounded channels: while batch *k* writes, batch
/// *k+1* fetches and batch *k+2* validates.
///
/// Ordering: each stage runs on one thread and channels are FIFO, so the
/// write stage consumes batches in input order — overlap changes
/// wall-clock, never output. The first stage error wins; downstream
/// stages forward it and skip their work, upstream stages stop producing.
pub(crate) fn run_overlapped<A, B, C, FV, FF, FW>(
    inputs: Vec<A>,
    validate: FV,
    fetch: FF,
    mut write: FW,
    stats: &GcStats,
) -> Result<()>
where
    A: Send,
    B: Send,
    C: Send,
    FV: Fn(A) -> Result<B> + Send,
    FF: Fn(B) -> Result<C> + Send,
    FW: FnMut(C) -> Result<()> + Send,
{
    stats.pipeline_jobs.fetch_add(1, Ordering::Relaxed);
    stats
        .pipeline_batches
        .fetch_add(inputs.len() as u64, Ordering::Relaxed);
    let active = AtomicU64::new(0);
    let mut first_err: Option<Error> = None;
    std::thread::scope(|scope| {
        let active = &active;
        let (tx_vf, rx_vf) = sync_channel::<Result<B>>(PIPELINE_DEPTH);
        let (tx_fw, rx_fw) = sync_channel::<Result<C>>(PIPELINE_DEPTH);
        scope.spawn(move || {
            for input in inputs {
                stage_enter(active, stats);
                let out = validate(input);
                stage_exit(active);
                if !feed(&tx_vf, out, stats) {
                    break;
                }
            }
        });
        scope.spawn(move || {
            for item in rx_vf {
                let out = match item {
                    Ok(batch) => {
                        stage_enter(active, stats);
                        let r = fetch(batch);
                        stage_exit(active);
                        r
                    }
                    Err(e) => Err(e),
                };
                if !feed(&tx_fw, out, stats) {
                    break;
                }
            }
        });
        // The write stage runs on the scope's own thread: it is the only
        // stateful stage (`FnMut`). On the first error — its own or one
        // forwarded from upstream — it breaks out, dropping the receiver;
        // upstream stages then stop at their next handoff (`feed` treats
        // a disconnected queue as "stop producing"), so no further
        // validation or fetch work runs on a failing job and nobody can
        // block on a full queue.
        for item in rx_fw {
            match item {
                Ok(batch) => {
                    stage_enter(active, stats);
                    let r = write(batch);
                    stage_exit(active);
                    if let Err(e) = r {
                        first_err = Some(e);
                        break;
                    }
                }
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Run one fallible job per input across up to `threads` scoped workers,
/// returning results **in input order** (worker scheduling never leaks
/// into the output). Falls back to an inline loop when parallelism
/// cannot help; each parallel worker dispatched is counted into
/// `dispatched` (e.g. [`GcStats::fetch_parallel_jobs`] for file I/O,
/// [`GcStats::validate_parallel_jobs`] for GC-Lookup workers).
pub(crate) fn parallel_map_ordered<T, R, F>(
    jobs: &[T],
    threads: usize,
    dispatched: &AtomicU64,
    f: F,
) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R> + Send + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 || jobs.len() <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let chunk = jobs.len().div_ceil(threads);
    let worker_results: Vec<Result<Vec<R>>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|range| scope.spawn(move || range.iter().map(f).collect::<Result<Vec<R>>>()))
            .collect();
        dispatched.fetch_add(handles.len() as u64, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(Error::internal("GC worker panicked")))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(jobs.len());
    for res in worker_results {
        out.extend(res?);
    }
    Ok(out)
}

/// Hot/cold-routed value-file writers for the GC Write phase (Fig. 8
/// step ④): route 0 is cold, route 1 hot. Records are appended in batches
/// through [`VWriter::add_batch`], rolling to a fresh file at exactly the
/// per-record boundaries a serial `add` loop would pick (so batched and
/// record-at-a-time execution emit byte-identical files).
///
/// Writers are created lazily — a file number is allocated only once a
/// record is about to be staged — and [`finish`](Self::finish) never
/// emits an empty [`NewValueFile`]: a zero-record writer's file is
/// deleted instead of surfaced.
pub(crate) struct RouteWriters<'a> {
    env: &'a EnvRef,
    dir: &'a str,
    format: VFormat,
    table_opts: TableOptions,
    alloc: &'a dyn FileNumAlloc,
    target: u64,
    stats: &'a GcStats,
    writers: [Option<(u64, VWriter)>; 2],
    outputs: Vec<NewValueFile>,
}

impl<'a> RouteWriters<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        env: &'a EnvRef,
        dir: &'a str,
        format: VFormat,
        table_opts: TableOptions,
        alloc: &'a dyn FileNumAlloc,
        target: u64,
        stats: &'a GcStats,
    ) -> Self {
        RouteWriters {
            env,
            dir,
            format,
            table_opts,
            alloc,
            target: target.max(1),
            stats,
            writers: [None, None],
            outputs: Vec::new(),
        }
    }

    /// Append `recs` to the given route in order, returning each record's
    /// `(file, address)`. Rolls to a new file whenever the staged size
    /// crosses the target — mid-batch when necessary.
    pub(crate) fn write_batch(
        &mut self,
        route: usize,
        recs: &[(&[u8], SeqNo, &[u8])],
    ) -> Result<Vec<(u64, WrittenRecord)>> {
        if recs.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.write_batches.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(recs.len());
        let mut rest = recs;
        while !rest.is_empty() {
            let slot = &mut self.writers[route];
            if slot.is_none() {
                let file = self.alloc.next_file_number();
                let w = VWriter::create(
                    self.env,
                    self.dir,
                    file,
                    self.format,
                    self.table_opts.clone(),
                    IoClass::GcWrite,
                )?;
                *slot = Some((file, w));
            }
            let (file, w) = slot.as_mut().expect("writer just ensured");
            let file = *file;
            let (written, consumed) = w.add_batch(rest, Some(self.target))?;
            debug_assert!(consumed > 0, "add_batch must make progress");
            out.extend(written.into_iter().map(|r| (file, r)));
            rest = &rest[consumed..];
            if w.estimated_size() >= self.target {
                self.rotate(route)?;
            }
        }
        Ok(out)
    }

    /// Close the route's current writer, surfacing it as a
    /// [`NewValueFile`] — or deleting the file if it holds no records (a
    /// `NewValueFile` with zero entries must never reach the manifest).
    fn rotate(&mut self, route: usize) -> Result<()> {
        let Some((file, w)) = self.writers[route].take() else {
            return Ok(());
        };
        if w.num_entries() == 0 {
            let _ = self
                .env
                .remove_file(&vfile_path(self.dir, file, self.format));
            return Ok(());
        }
        let info = w.finish()?;
        self.outputs
            .push(new_value_file_record(file, info, route == 1, self.format));
        Ok(())
    }

    /// Finish both routes and return every output file, in write order.
    pub(crate) fn finish(mut self) -> Result<Vec<NewValueFile>> {
        for route in 0..self.writers.len() {
            self.rotate(route)?;
        }
        Ok(self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;
    use scavenger_table::KeyCmp;

    struct CountingAlloc(AtomicU64);

    impl FileNumAlloc for CountingAlloc {
        fn next_file_number(&self) -> u64 {
            self.0.fetch_add(1, Ordering::SeqCst) + 1
        }
    }

    fn table_opts() -> TableOptions {
        TableOptions {
            cmp: KeyCmp::Internal,
            ..TableOptions::default()
        }
    }

    #[test]
    fn overlapped_preserves_input_order() {
        let stats = GcStats::default();
        let inputs: Vec<u64> = (0..50).collect();
        let mut seen = Vec::new();
        run_overlapped(
            inputs,
            |x| Ok(x * 2),
            |x| Ok(x + 1),
            |x| {
                seen.push(x);
                Ok(())
            },
            &stats,
        )
        .unwrap();
        let expected: Vec<u64> = (0..50).map(|x| x * 2 + 1).collect();
        assert_eq!(seen, expected);
        assert_eq!(stats.pipeline_jobs.load(Ordering::Relaxed), 1);
        assert_eq!(stats.pipeline_batches.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn overlapped_propagates_first_error_and_stops_writes() {
        let stats = GcStats::default();
        let inputs: Vec<u64> = (0..20).collect();
        let mut written = Vec::new();
        let err = run_overlapped(
            inputs,
            |x| {
                if x == 5 {
                    Err(Error::internal("validate boom"))
                } else {
                    Ok(x)
                }
            },
            Ok,
            |x| {
                written.push(x);
                Ok(())
            },
            &stats,
        )
        .unwrap_err();
        assert!(err.to_string().contains("validate boom"), "{err}");
        // Batches 0..5 may have flowed through before the error; nothing
        // at or after the failing batch is written.
        assert!(written.iter().all(|&x| x < 5), "{written:?}");
    }

    #[test]
    fn overlapped_write_error_does_not_deadlock() {
        let stats = GcStats::default();
        let inputs: Vec<u64> = (0..30).collect();
        let err = run_overlapped(
            inputs,
            Ok,
            Ok,
            |x| {
                if x == 2 {
                    Err(Error::internal("write boom"))
                } else {
                    Ok(())
                }
            },
            &stats,
        )
        .unwrap_err();
        assert!(err.to_string().contains("write boom"), "{err}");
    }

    #[test]
    fn parallel_map_matches_serial_order() {
        let stats = GcStats::default();
        let jobs: Vec<u64> = (0..37).collect();
        let serial =
            parallel_map_ordered(&jobs, 1, &stats.fetch_parallel_jobs, |&x| Ok(x * 3)).unwrap();
        let parallel =
            parallel_map_ordered(&jobs, 4, &stats.fetch_parallel_jobs, |&x| Ok(x * 3)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(stats.fetch_parallel_jobs.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn parallel_map_surfaces_errors() {
        let stats = GcStats::default();
        let jobs: Vec<u64> = (0..16).collect();
        let err = parallel_map_ordered(&jobs, 4, &stats.fetch_parallel_jobs, |&x| {
            if x == 11 {
                Err(Error::internal("fetch boom"))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("fetch boom"), "{err}");
    }

    #[test]
    fn route_writers_allocate_nothing_without_records() {
        let env: EnvRef = MemEnv::shared();
        let alloc = CountingAlloc(AtomicU64::new(0));
        let stats = GcStats::default();
        let rw = RouteWriters::new(
            &env,
            "db",
            VFormat::RTable,
            table_opts(),
            &alloc,
            1 << 20,
            &stats,
        );
        let outputs = rw.finish().unwrap();
        assert!(outputs.is_empty());
        assert_eq!(
            alloc.0.load(Ordering::SeqCst),
            0,
            "no file number may be allocated before a record exists"
        );
        assert!(env.list_prefix("db/").unwrap().is_empty());
    }

    #[test]
    fn route_writers_roll_over_and_never_emit_empty_files() {
        let env: EnvRef = MemEnv::shared();
        let alloc = CountingAlloc(AtomicU64::new(0));
        let stats = GcStats::default();
        let mut rw = RouteWriters::new(
            &env,
            "db",
            VFormat::RTable,
            table_opts(),
            &alloc,
            4 * 1024,
            &stats,
        );
        let recs: Vec<(Vec<u8>, SeqNo, Vec<u8>)> = (0..40u64)
            .map(|i| (format!("k{i:04}").into_bytes(), i + 1, vec![3u8; 512]))
            .collect();
        let refs: Vec<(&[u8], SeqNo, &[u8])> = recs
            .iter()
            .map(|(k, s, v)| (k.as_slice(), *s, v.as_slice()))
            .collect();
        let written = rw.write_batch(0, &refs).unwrap();
        assert_eq!(written.len(), recs.len());
        let outputs = rw.finish().unwrap();
        assert!(outputs.len() > 1, "rollover must split the batch");
        assert!(
            outputs.iter().all(|f| f.entries > 0),
            "no empty NewValueFile"
        );
        assert_eq!(
            outputs.iter().map(|f| f.entries).sum::<u64>(),
            recs.len() as u64
        );
        // Every allocated file number surfaced as an output: the rollover
        // path never allocates a number it then abandons.
        assert_eq!(alloc.0.load(Ordering::SeqCst) as usize, outputs.len());
        // Addresses returned per record point into the file that actually
        // holds the record.
        for (file, _) in &written {
            assert!(outputs.iter().any(|f| f.file == *file));
        }
    }

    #[test]
    fn route_writers_keep_routes_independent() {
        let env: EnvRef = MemEnv::shared();
        let alloc = CountingAlloc(AtomicU64::new(0));
        let stats = GcStats::default();
        let mut rw = RouteWriters::new(
            &env,
            "db",
            VFormat::RTable,
            table_opts(),
            &alloc,
            1 << 20,
            &stats,
        );
        rw.write_batch(0, &[(b"cold", 1, &[1u8; 64][..])]).unwrap();
        rw.write_batch(1, &[(b"hot", 2, &[2u8; 64][..])]).unwrap();
        let outputs = rw.finish().unwrap();
        assert_eq!(outputs.len(), 2);
        assert!(!outputs[0].hot && outputs[1].hot);
        assert!(outputs.iter().all(|f| f.entries == 1));
    }
}
