//! Garbage collection strategies.
//!
//! Three schemes, mirroring the systems the paper studies (§II):
//!
//! * [`GcScheme::NoWriteback`] — TerarkDB/Scavenger. Valid records are
//!   moved to new value files and the old→new **inheritance** edge is
//!   recorded; index entries are never rewritten. Scavenger additionally
//!   enables **Lazy Read** (only the RTable's dense index is read before
//!   validation, and only *valid* values are fetched — paper Fig. 8) and
//!   **hot/cold routing** of rewritten values.
//! * [`GcScheme::Writeback`] — Titan. The whole blob file is scanned,
//!   valid values are rewritten, and the new addresses are written back
//!   through the LSM write path (the *Write-Index* step of Fig. 3),
//!   guarded against concurrent user writes.
//! * [`GcScheme::CompactionTriggered`] — BlobDB. No standalone GC: value
//!   relocation happens inside compaction (see [`crate::hook`]), and a
//!   blob file is deleted only once every record in it has been exposed
//!   as garbage ([`exhausted`](crate::vstore::VsstMeta::is_exhausted)).
//!
//! Every phase is wall-clock timed into [`GcStats`], reproducing the
//! paper's Figure 3 latency breakdown, and all I/O is charged to
//! `IoClass::GcRead` / `IoClass::GcWrite` for Figure 12(c).

use crate::dropcache::DropCache;
use crate::options::{Features, GcScheme, VFormat};
use crate::stats::GcStats;
use crate::vstore::vtable::{parse_record_key, VReader, VWriter};
use crate::vstore::{new_value_file_record, ValueStore};
use bytes::Bytes;
use scavenger_env::{EnvRef, IoClass};
use scavenger_lsm::{GuardedWrite, Lsm, LsmReadResult, ValueEditBundle};
use scavenger_table::btable::TableOptions;
use scavenger_table::handle::BlockHandle;
use scavenger_table::KeyCmp;
use scavenger_util::ikey::{cmp_internal, SeqNo, ValueRef, ValueType};
use scavenger_util::Result;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Result of one GC job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Value files collected (deleted).
    pub files_collected: usize,
    /// Valid records rewritten.
    pub records_rewritten: u64,
    /// Bytes freed: deleted file sizes minus new file sizes.
    pub bytes_reclaimed: u64,
}

/// Drives GC jobs for one engine.
pub struct GcRunner {
    env: EnvRef,
    dir: String,
    features: Features,
    vsst_target: u64,
    gc_batch_files: usize,
    table_opts: TableOptions,
    vstore: Arc<ValueStore>,
    dropcache: Arc<DropCache>,
    stats: Arc<GcStats>,
}

/// A record awaiting validation.
struct Pending {
    ikey: Vec<u8>,
    source: u64,
    loc: Loc,
}

enum Loc {
    /// Value already in memory (full-file scan, TerarkDB-style Read).
    Inline(Bytes),
    /// Only the record handle is known (Lazy Read); the value is fetched
    /// after validation.
    Handle(BlockHandle),
}

impl GcRunner {
    /// Create a runner.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        env: EnvRef,
        dir: impl Into<String>,
        features: Features,
        vsst_target: u64,
        gc_batch_files: usize,
        table_opts: TableOptions,
        vstore: Arc<ValueStore>,
        dropcache: Arc<DropCache>,
        stats: Arc<GcStats>,
    ) -> Self {
        GcRunner {
            env,
            dir: dir.into(),
            features,
            vsst_target,
            gc_batch_files,
            table_opts: TableOptions { cmp: KeyCmp::Internal, ..table_opts },
            vstore,
            dropcache,
            stats,
        }
    }

    /// Run one GC job if any file crosses `threshold`. Returns `None` when
    /// there is nothing to collect (or the scheme has no standalone GC).
    pub fn run_once(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        match self.features.gc {
            GcScheme::CompactionTriggered => Ok(None),
            GcScheme::NoWriteback => self.gc_no_writeback(lsm, threshold),
            GcScheme::Writeback => self.gc_writeback(lsm, threshold),
        }
    }

    /// Read points for validity: the latest sequence plus all snapshots.
    fn read_points(&self, lsm: &Lsm) -> Vec<SeqNo> {
        let mut pts = lsm.snapshot_sequences();
        pts.push(lsm.last_sequence());
        pts.dedup();
        pts
    }

    /// Is the record `(ukey, seq)` in `source` still referenced from any
    /// read point? `check_ref` receives the live reference.
    ///
    /// `require_seq_match` is true for keyed (no-writeback) schemes, where
    /// record identity is `(user_key, seq)`. Address-based write-back GC
    /// (Titan) must NOT match sequences: its write-back re-inserts index
    /// entries under fresh sequence numbers while the relocated blob
    /// record keeps the original one — there, `(file, offset)` is the
    /// record's identity.
    fn is_valid(
        &self,
        lsm: &Lsm,
        read_points: &[SeqNo],
        ukey: &[u8],
        seq: SeqNo,
        require_seq_match: bool,
        check_ref: impl Fn(&ValueRef) -> bool,
    ) -> Result<bool> {
        for &pt in read_points {
            if let LsmReadResult::Found { seq: s, vtype: ValueType::ValueRef, value } =
                lsm.get_at(ukey, pt)?
            {
                if !require_seq_match || s == seq {
                    if let Ok(r) = ValueRef::decode(&value) {
                        if check_ref(&r) {
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    // ---------------- TerarkDB / Scavenger ----------------

    fn gc_no_writeback(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        let candidates: Vec<_> = self
            .vstore
            .gc_candidates(threshold)
            .into_iter()
            .take(self.gc_batch_files.max(1))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let candidate_files: Vec<u64> = candidates.iter().map(|m| m.file).collect();
        let deleted_bytes: u64 = candidates.iter().map(|m| m.size).sum();

        // ---- Read (paper Fig. 8 step ① / §II-C "Read") ----
        let t_read = Instant::now();
        let mut readers: HashMap<u64, VReader> = HashMap::new();
        let mut pending: Vec<Pending> = Vec::new();
        for meta in &candidates {
            let reader = self.vstore.gc_reader(meta.file)?;
            if self.features.lazy_read && meta.format == VFormat::RTable {
                for (ikey, handle) in reader.read_lazy_index()? {
                    pending.push(Pending {
                        ikey,
                        source: meta.file,
                        loc: Loc::Handle(handle),
                    });
                }
            } else {
                for rec in reader.scan_all()? {
                    pending.push(Pending {
                        ikey: rec.ikey,
                        source: meta.file,
                        loc: Loc::Inline(rec.value),
                    });
                }
            }
            readers.insert(meta.file, reader);
        }
        self.stats
            .read_ns
            .fetch_add(t_read.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_scanned
            .fetch_add(pending.len() as u64, Ordering::Relaxed);

        // ---- GC-Lookup (Fig. 8 step ② / Fig. 10) ----
        let t_lookup = Instant::now();
        let read_points = self.read_points(lsm);
        let mut valid: Vec<Pending> = Vec::new();
        for rec in pending {
            let (ukey, seq) = {
                let (u, s) = parse_record_key(&rec.ikey)?;
                (u.to_vec(), s)
            };
            let source = rec.source;
            if self.is_valid(lsm, &read_points, &ukey, seq, true, |r| {
                self.vstore.resolves_to(r.file, source)
            })? {
                valid.push(rec);
            }
        }
        self.stats
            .lookup_ns
            .fetch_add(t_lookup.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_valid
            .fetch_add(valid.len() as u64, Ordering::Relaxed);

        // ---- Fetch valid values (the lazy part of Lazy Read, step ③) ----
        let t_fetch = Instant::now();
        valid.sort_by(|a, b| cmp_internal(&a.ikey, &b.ikey));
        let mut materialized: Vec<(Vec<u8>, Bytes)> = Vec::with_capacity(valid.len());
        {
            // Group handle-fetches per source file for coalescing.
            let mut by_file: HashMap<u64, Vec<(usize, BlockHandle)>> = HashMap::new();
            for (i, rec) in valid.iter().enumerate() {
                match &rec.loc {
                    Loc::Inline(v) => materialized.push((rec.ikey.clone(), v.clone())),
                    Loc::Handle(h) => {
                        by_file.entry(rec.source).or_default().push((i, *h));
                        materialized.push((rec.ikey.clone(), Bytes::new()));
                    }
                }
            }
            for (file, mut handles) in by_file {
                handles.sort_by_key(|(_, h)| h.offset);
                let reader = &readers[&file];
                match reader {
                    VReader::R(r) => {
                        let hs: Vec<BlockHandle> = handles.iter().map(|(_, h)| *h).collect();
                        let recs = r.read_records(&hs, self.features.gc_readahead)?;
                        for ((idx, _), (_, value)) in handles.iter().zip(recs) {
                            materialized[*idx].1 = value;
                        }
                    }
                    _ => {
                        for (idx, h) in handles {
                            let (_, value) = reader.read_record(h)?;
                            materialized[idx].1 = value;
                        }
                    }
                }
            }
        }
        self.stats
            .read_ns
            .fetch_add(t_fetch.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Write (Fig. 8 step ④), hot/cold routed ----
        let t_write = Instant::now();
        let mut writers: [Option<(u64, VWriter)>; 2] = [None, None];
        let mut outputs: Vec<scavenger_lsm::NewValueFile> = Vec::new();
        let alloc = lsm.file_alloc();
        for (ikey, value) in &materialized {
            let (ukey, seq) = parse_record_key(ikey)?;
            let route = usize::from(self.features.hotness && self.dropcache.contains(ukey));
            if writers[route].is_none() {
                let file = alloc.next_file_number();
                writers[route] = Some((
                    file,
                    VWriter::create(
                        &self.env,
                        &self.dir,
                        file,
                        self.features.vformat,
                        self.table_opts.clone(),
                        IoClass::GcWrite,
                    )?,
                ));
            }
            let (_, w) = writers[route].as_mut().unwrap();
            w.add(ukey, seq, value)?;
            if w.estimated_size() >= self.vsst_target {
                let (file, w) = writers[route].take().unwrap();
                let info = w.finish()?;
                outputs.push(new_value_file_record(
                    file,
                    info,
                    route == 1,
                    self.features.vformat,
                ));
            }
        }
        for (route, slot) in writers.into_iter().enumerate() {
            if let Some((file, w)) = slot {
                if w.num_entries() == 0 {
                    let _ = self.env.remove_file(&crate::vstore::vtable::vfile_path(
                        &self.dir,
                        file,
                        self.features.vformat,
                    ));
                    continue;
                }
                let info = w.finish()?;
                outputs.push(new_value_file_record(
                    file,
                    info,
                    route == 1,
                    self.features.vformat,
                ));
            }
        }
        self.stats
            .write_ns
            .fetch_add(t_write.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Commit: inheritance instead of index rewrites (§II-B) ----
        let mut bundle = ValueEditBundle {
            new_files: outputs,
            deleted_files: candidate_files.clone(),
            inherits: Vec::new(),
            garbage: Vec::new(),
        };
        for old in &candidate_files {
            for nf in &bundle.new_files {
                bundle.inherits.push((*old, nf.file));
            }
        }
        let new_bytes: u64 = bundle.new_files.iter().map(|f| f.size).sum();
        lsm.apply_value_edit(bundle.clone())?;
        let removed = self.vstore.apply_bundle(&bundle);
        for (file, format) in removed {
            self.vstore.delete_file(file, format);
        }

        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .files_collected
            .fetch_add(candidate_files.len() as u64, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(deleted_bytes.saturating_sub(new_bytes), Ordering::Relaxed);
        Ok(Some(GcOutcome {
            files_collected: candidate_files.len(),
            records_rewritten: materialized.len() as u64,
            bytes_reclaimed: deleted_bytes.saturating_sub(new_bytes),
        }))
    }

    // ---------------- Titan ----------------

    fn gc_writeback(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        // Titan gates blob deletion on the oldest snapshot; we take the
        // conservative equivalent and defer GC while snapshots exist.
        if !lsm.snapshot_sequences().is_empty() {
            return Ok(None);
        }
        let candidates: Vec<_> = self
            .vstore
            .gc_candidates(threshold)
            .into_iter()
            .take(self.gc_batch_files.max(1))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let candidate_files: Vec<u64> = candidates.iter().map(|m| m.file).collect();
        let deleted_bytes: u64 = candidates.iter().map(|m| m.size).sum();

        // ---- Read: full sequential scan of each blob file ----
        let t_read = Instant::now();
        let mut records: Vec<(u64, crate::vstore::vtable::BlobRecord)> = Vec::new();
        for meta in &candidates {
            let reader = self.vstore.gc_reader(meta.file)?;
            for rec in reader.scan_all()? {
                records.push((meta.file, rec));
            }
        }
        self.stats
            .read_ns
            .fetch_add(t_read.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_scanned
            .fetch_add(records.len() as u64, Ordering::Relaxed);

        // ---- GC-Lookup: point-query the index for each key ----
        let t_lookup = Instant::now();
        let read_points = self.read_points(lsm);
        let mut valid: Vec<(u64, crate::vstore::vtable::BlobRecord)> = Vec::new();
        for (source, rec) in records {
            let (ukey, seq) = {
                let (u, s) = parse_record_key(&rec.ikey)?;
                (u.to_vec(), s)
            };
            let offset = rec.value_offset;
            if self.is_valid(lsm, &read_points, &ukey, seq, false, |r| {
                r.file == source && r.offset == offset
            })? {
                valid.push((source, rec));
            }
        }
        self.stats
            .lookup_ns
            .fetch_add(t_lookup.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_valid
            .fetch_add(valid.len() as u64, Ordering::Relaxed);

        // ---- Write: rewrite valid values into a fresh blob file ----
        let t_write = Instant::now();
        let alloc = lsm.file_alloc();
        let mut new_files = Vec::new();
        let mut guarded: Vec<GuardedWrite> = Vec::new();
        if !valid.is_empty() {
            let mut file = alloc.next_file_number();
            let mut w = VWriter::create(
                &self.env,
                &self.dir,
                file,
                VFormat::BlobLog,
                self.table_opts.clone(),
                IoClass::GcWrite,
            )?;
            for (source, rec) in &valid {
                let (ukey, seq) = parse_record_key(&rec.ikey)?;
                let written = w.add(ukey, seq, &rec.value)?;
                guarded.push(GuardedWrite {
                    key: ukey.to_vec(),
                    expected: ValueRef {
                        file: *source,
                        size: rec.value.len() as u32,
                        offset: rec.value_offset,
                    },
                    replacement: ValueRef {
                        file,
                        size: written.size,
                        offset: written.offset,
                    },
                });
                if w.estimated_size() >= self.vsst_target {
                    let info = w.finish()?;
                    new_files.push(new_value_file_record(file, info, false, VFormat::BlobLog));
                    file = alloc.next_file_number();
                    w = VWriter::create(
                        &self.env,
                        &self.dir,
                        file,
                        VFormat::BlobLog,
                        self.table_opts.clone(),
                        IoClass::GcWrite,
                    )?;
                }
            }
            if w.num_entries() > 0 {
                let info = w.finish()?;
                new_files.push(new_value_file_record(file, info, false, VFormat::BlobLog));
            } else {
                let _ = self.env.remove_file(&crate::vstore::vtable::vfile_path(
                    &self.dir,
                    file,
                    VFormat::BlobLog,
                ));
            }
        }
        self.stats
            .write_ns
            .fetch_add(t_write.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Write-Index: push the new addresses through the write path
        // (Titan's extra step, ~38% of GC time in the paper's Fig. 3) ----
        let t_wi = Instant::now();
        let rewritten = guarded.len() as u64;
        if !guarded.is_empty() {
            lsm.write_guarded(&guarded)?;
        }
        self.stats
            .write_index_ns
            .fetch_add(t_wi.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Commit ----
        let bundle = ValueEditBundle {
            new_files,
            deleted_files: candidate_files.clone(),
            inherits: Vec::new(),
            garbage: Vec::new(),
        };
        let new_bytes: u64 = bundle.new_files.iter().map(|f| f.size).sum();
        lsm.apply_value_edit(bundle.clone())?;
        let removed = self.vstore.apply_bundle(&bundle);
        for (file, format) in removed {
            self.vstore.delete_file(file, format);
        }

        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .files_collected
            .fetch_add(candidate_files.len() as u64, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(deleted_bytes.saturating_sub(new_bytes), Ordering::Relaxed);
        Ok(Some(GcOutcome {
            files_collected: candidate_files.len(),
            records_rewritten: rewritten,
            bytes_reclaimed: deleted_bytes.saturating_sub(new_bytes),
        }))
    }
}
