//! Garbage collection strategies.
//!
//! Three schemes, mirroring the systems the paper studies (§II):
//!
//! * [`GcScheme::NoWriteback`] — TerarkDB/Scavenger. Valid records are
//!   moved to new value files and the old→new **inheritance** edge is
//!   recorded; index entries are never rewritten. Scavenger additionally
//!   enables **Lazy Read** (only the RTable's dense index is read before
//!   validation, and only *valid* values are fetched — paper Fig. 8) and
//!   **hot/cold routing** of rewritten values.
//! * [`GcScheme::Writeback`] — Titan. The whole blob file is scanned,
//!   valid values are rewritten, and the new addresses are written back
//!   through the LSM write path (the *Write-Index* step of Fig. 3),
//!   guarded against concurrent user writes.
//! * [`GcScheme::CompactionTriggered`] — BlobDB. No standalone GC: value
//!   relocation happens inside compaction (see [`crate::hook`]), and a
//!   blob file is deleted only once every record in it has been exposed
//!   as garbage ([`exhausted`](crate::vstore::VsstMeta::is_exhausted)).
//!
//! Every phase is wall-clock timed into [`GcStats`], reproducing the
//! paper's Figure 3 latency breakdown, and all I/O is charged to
//! `IoClass::GcRead` / `IoClass::GcWrite` for Figure 12(c).
//!
//! # The validation pipeline (GC-Lookup, Fig. 8 step ② / Fig. 10)
//!
//! A GC job moves through four phases, named after the paper's Fig. 8:
//!
//! | phase | Fig. 8 | what happens here |
//! |---|---|---|
//! | **Read**   | step ① | value-file keys (Lazy Read) or whole records are loaded into the pending batch; Titan's full-file scans fan out across the `gc_threads` pool |
//! | **GC-Lookup** | step ② | every pending record is validated against the index LSM-tree at each read point |
//! | **Fetch** | step ③ | surviving values are fetched (lazy); per-file coalesced reads fan out across the `gc_threads` pool, merged in deterministic file order |
//! | **Write** | step ④ | survivors are rewritten hot/cold-routed, batched through `VWriter::add_batch` (blocks built per batch, not per record) |
//! | **Write-Index** | Titan only | new addresses are pushed back through the write path |
//!
//! With [`GcPipeline::On`], steps ②–④ additionally *overlap*: the
//! pending set is split into contiguous sorted batches and threaded
//! through a bounded-channel executor (`gc_exec`), so batch *k+1*
//! validates while batch *k* fetches and batch *k−1* writes. `Off` runs
//! the identical stage closures sequentially; both settings produce
//! bit-identical value files, file numbers, and [`GcOutcome`]s
//! (asserted by `tests/integration_gc_pipeline.rs`), and per-stage
//! queue/overlap counters land in [`GcStats`].
//!
//! The paper's Fig. 10 profiles GC-Lookup — historically one serial
//! `get_at` point query per record per read point — as the dominant GC
//! cost. This module therefore runs the phase through a batched
//! validation engine with three interchangeable modes
//! ([`GcValidateMode`]):
//!
//! * **Point** — the baseline: serial point lookups, exactly the paper's
//!   profiled behaviour.
//! * **Merge** (*merge-validate*) — the batch is sorted by user key (the
//!   fetch phase wants that order anyway) and resolved with **one
//!   co-sequential sweep of a pinned LSM iterator per read point**
//!   ([`scavenger_lsm::BatchSweep`]), turning `O(N · cost(get))` into a
//!   single merged forward pass that amortizes version pinning,
//!   table-handle lookups, and block-cache accesses.
//! * **Parallel** — the sorted batch is partitioned into contiguous key
//!   ranges across a pool of `gc_threads` scoped worker threads, each
//!   resolving its range with private sweeps over one shared pinned view
//!   (concurrent lookups without per-key version-mutex or table-cache
//!   contention).
//!
//! `Auto` picks per batch. All three modes are observationally
//! equivalent (asserted by `tests/integration_gc_validation.rs`) and
//! feed per-mode counters into [`GcStats`].

use crate::dropcache::DropCache;
use crate::gc_exec::{self, RouteWriters};
use crate::options::{
    Features, GcPipeline, GcScheme, GcValidateMode, VFormat, AUTO_MERGE_VALIDATE_MIN,
    AUTO_PARALLEL_VALIDATE_MIN,
};
use crate::stats::GcStats;
use crate::vstore::vtable::{parse_record_key, VReader};
use crate::vstore::ValueStore;
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::EnvRef;
use scavenger_lsm::{BatchReader, GuardedWrite, Lsm, LsmReadResult, ValueEditBundle};
use scavenger_table::btable::TableOptions;
use scavenger_table::handle::BlockHandle;
use scavenger_table::KeyCmp;
use scavenger_util::ikey::{cmp_internal, SeqNo, ValueRef, ValueType};
use scavenger_util::{Error, Result};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Outcome of a dry-run [`GcRunner::validate_file`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcValidationReport {
    /// Records examined.
    pub records: u64,
    /// Records still referenced from some read point.
    pub valid: u64,
    /// The concrete validation mode that ran.
    pub mode: GcValidateMode,
}

/// Result of one GC job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Value files collected (deleted).
    pub files_collected: usize,
    /// Valid records rewritten.
    pub records_rewritten: u64,
    /// Bytes freed: deleted file sizes minus new file sizes.
    pub bytes_reclaimed: u64,
}

/// Tuning knobs for the GC runner.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Target size of rewritten value files.
    pub vsst_target: u64,
    /// Max candidate files merged per GC job.
    pub batch_files: usize,
    /// How GC-Lookup validates candidate records.
    pub validate_mode: GcValidateMode,
    /// Worker threads for parallel validation and parallel file I/O
    /// (Fetch fan-out, Titan Read scans).
    pub threads: usize,
    /// Whether the Validate / Fetch / Write stages overlap (see
    /// [`GcPipeline`]).
    pub pipeline: GcPipeline,
    /// Records per pipeline batch when the pipeline is on.
    pub pipeline_batch: usize,
}

/// Drives GC jobs for one engine.
pub struct GcRunner {
    env: EnvRef,
    dir: String,
    features: Features,
    cfg: GcConfig,
    table_opts: TableOptions,
    vstore: Arc<ValueStore>,
    dropcache: Arc<DropCache>,
    stats: Arc<GcStats>,
    /// Write-back (Titan) GC cannot preserve superseded versions through
    /// inheritance, so collected blob files are deleted *deferred*: only
    /// once no registered read point predates the job's write-back
    /// barrier (see [`GcRunner::reap_deferred`]).
    deferred: Mutex<Vec<DeferredDeletion>>,
}

/// Blob files awaiting deletion until every read point that could still
/// address them has drained.
struct DeferredDeletion {
    /// Sequence of the GC job's write-back commit: readers at or above it
    /// observe the relocated references.
    barrier: SeqNo,
    files: Vec<u64>,
}

/// A record awaiting validation.
struct Pending {
    ikey: Vec<u8>,
    source: u64,
    loc: Loc,
}

enum Loc {
    /// Value already in memory (full-file scan, TerarkDB-style Read).
    Inline(Bytes),
    /// Only the record handle is known (Lazy Read); the value is fetched
    /// after validation.
    Handle(BlockHandle),
}

/// One record's identity inside a validation batch.
struct ValItem {
    ukey: Vec<u8>,
    seq: SeqNo,
}

/// Everything the GC-Lookup stage needs, pinned once per job and handed
/// to whichever thread runs the stage (the caller in sequential mode,
/// the validate stage worker in pipelined mode).
///
/// The [`BatchReader`] doubles as the job's read-point pin: it registers
/// its sequence *before* [`Lsm::read_points`] scans the registry (see
/// [`GcRunner::read_points`]), and materializes the memtable snapshots
/// exactly once per job instead of once per validation call.
struct ValidateCtx<'a> {
    lsm: &'a Lsm,
    reader: &'a BatchReader,
    read_points: &'a [SeqNo],
}

impl GcRunner {
    /// Create a runner.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        env: EnvRef,
        dir: impl Into<String>,
        features: Features,
        cfg: GcConfig,
        table_opts: TableOptions,
        vstore: Arc<ValueStore>,
        dropcache: Arc<DropCache>,
        stats: Arc<GcStats>,
    ) -> Self {
        GcRunner {
            env,
            dir: dir.into(),
            features,
            cfg,
            table_opts: TableOptions {
                cmp: KeyCmp::Internal,
                ..table_opts
            },
            vstore,
            dropcache,
            stats,
            deferred: Mutex::new(Vec::new()),
        }
    }

    /// Run one GC job if any file crosses `threshold`. Returns `None` when
    /// there is nothing to collect (or the scheme has no standalone GC).
    pub fn run_once(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        self.reap_deferred(lsm)?;
        match self.features.gc {
            GcScheme::CompactionTriggered => Ok(None),
            GcScheme::NoWriteback => self.gc_no_writeback(lsm, threshold),
            GcScheme::Writeback => self.gc_writeback(lsm, threshold),
        }
    }

    /// Read points for validity, pinned for the duration of the job.
    ///
    /// The returned reader's view registers the latest sequence *before*
    /// the registry is scanned, so the point set is race-free: any reader
    /// registered after the scan necessarily observes a sequence at or
    /// above the view's — whose visible versions this GC preserves. The
    /// caller must keep the reader alive until the job commits.
    fn read_points(&self, lsm: &Lsm) -> (BatchReader, Vec<SeqNo>) {
        let reader = lsm.batch_reader();
        // All registered read points: user snapshots plus in-flight view
        // pins (including our own, so the latest sequence is covered).
        let pts = lsm.read_points();
        (reader, pts)
    }

    /// Resolve `Auto` to a concrete mode for a batch of `n` records.
    fn resolve_mode(&self, n: usize) -> GcValidateMode {
        match self.cfg.validate_mode {
            GcValidateMode::Auto => {
                if n >= AUTO_MERGE_VALIDATE_MIN {
                    GcValidateMode::Merge
                } else if self.cfg.threads > 1 && n >= AUTO_PARALLEL_VALIDATE_MIN {
                    GcValidateMode::Parallel
                } else {
                    GcValidateMode::Point
                }
            }
            m => m,
        }
    }

    /// Does `result` (the visible version of item `i` at one read point)
    /// keep the item alive?
    ///
    /// `require_seq_match` is true for keyed (no-writeback) schemes, where
    /// record identity is `(user_key, seq)`. Address-based write-back GC
    /// (Titan) must NOT match sequences: its write-back re-inserts index
    /// entries under fresh sequence numbers while the relocated blob
    /// record keeps the original one — there, `(file, offset)` is the
    /// record's identity.
    fn verdict(
        result: &LsmReadResult,
        item: &ValItem,
        i: usize,
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> bool {
        if let LsmReadResult::Found {
            seq: s,
            vtype: ValueType::ValueRef,
            value,
        } = result
        {
            if !require_seq_match || *s == item.seq {
                if let Ok(r) = ValueRef::decode(value) {
                    return check_ref(i, &r);
                }
            }
        }
        false
    }

    /// The GC-Lookup phase: decide for every pending record whether any
    /// read point still references it. Dispatches to the configured
    /// validation mode (see the module docs); all modes return identical
    /// verdicts.
    ///
    /// Returns one bool per item, in input order.
    fn validate_items(
        &self,
        cx: &ValidateCtx<'_>,
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
        mode: GcValidateMode,
    ) -> Result<Vec<bool>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.validate_batches.fetch_add(1, Ordering::Relaxed);
        match mode {
            GcValidateMode::Auto => unreachable!("resolve_mode() produces concrete modes"),
            GcValidateMode::Point => self.validate_point(cx, items, require_seq_match, check_ref),
            GcValidateMode::Merge => self.validate_merge(cx, items, require_seq_match, check_ref),
            GcValidateMode::Parallel => {
                self.validate_parallel(cx, items, require_seq_match, check_ref)
            }
        }
    }

    /// Baseline: one serial point lookup per record per read point.
    fn validate_point(
        &self,
        cx: &ValidateCtx<'_>,
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> Result<Vec<bool>> {
        let mut valid = vec![false; items.len()];
        let mut lookups = 0u64;
        for (i, item) in items.iter().enumerate() {
            for &pt in cx.read_points {
                lookups += 1;
                let r = cx.lsm.get_at(&item.ukey, pt)?;
                if Self::verdict(&r, item, i, require_seq_match, check_ref) {
                    valid[i] = true;
                    break;
                }
            }
        }
        self.stats
            .validate_point_lookups
            .fetch_add(lookups, Ordering::Relaxed);
        Ok(valid)
    }

    /// Merge-validate: sort the batch by user key and resolve it with one
    /// co-sequential sweep of the job's pinned [`BatchReader`] per read
    /// point.
    fn validate_merge(
        &self,
        cx: &ValidateCtx<'_>,
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> Result<Vec<bool>> {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[a].ukey.cmp(&items[b].ukey));
        let mut valid = vec![false; items.len()];
        for &pt in cx.read_points {
            let mut sweep = cx.reader.sweep(pt)?;
            for &i in &order {
                if valid[i] {
                    continue;
                }
                let item = &items[i];
                let r = sweep.next_visible(&item.ukey)?;
                if Self::verdict(&r, item, i, require_seq_match, check_ref) {
                    valid[i] = true;
                }
            }
            let s = sweep.stats();
            self.stats.validate_sweeps.fetch_add(1, Ordering::Relaxed);
            self.stats
                .validate_sweep_steps
                .fetch_add(s.steps, Ordering::Relaxed);
            self.stats
                .validate_sweep_seeks
                .fetch_add(s.seeks, Ordering::Relaxed);
        }
        Ok(valid)
    }

    /// Worker-pool validation: sort the batch, partition it into
    /// contiguous key ranges across `gc_threads` scoped threads, and have
    /// each worker resolve its range with per-worker co-sequential sweeps
    /// over one shared pinned view (one sweep per read point per worker).
    ///
    /// Each lookup is a seek-or-step on a private iterator, so workers
    /// never contend on the version mutex or table-cache lock the way
    /// concurrent `get_at` calls do. Per-worker counters are merged into
    /// [`GcStats`] after the join.
    fn validate_parallel(
        &self,
        cx: &ValidateCtx<'_>,
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> Result<Vec<bool>> {
        let threads = self.cfg.threads.clamp(1, items.len());
        if threads == 1 {
            return self.validate_merge(cx, items, require_seq_match, check_ref);
        }
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[a].ukey.cmp(&items[b].ukey));
        let read_points = cx.read_points;
        let chunk = order.len().div_ceil(threads);
        let ranges: Vec<&[usize]> = order.chunks(chunk).collect();
        let worker_results = gc_exec::parallel_map_ordered(
            &ranges,
            threads,
            &self.stats.validate_parallel_jobs,
            |range: &&[usize]| {
                let mut local: Vec<(usize, bool)> = range.iter().map(|&i| (i, false)).collect();
                let mut stats = scavenger_lsm::SweepStats::default();
                for &pt in read_points {
                    let mut sweep = cx.reader.sweep(pt)?;
                    for slot in local.iter_mut() {
                        if slot.1 {
                            continue;
                        }
                        let item = &items[slot.0];
                        let r = sweep.next_visible(&item.ukey)?;
                        if Self::verdict(&r, item, slot.0, require_seq_match, check_ref) {
                            slot.1 = true;
                        }
                    }
                    let s = sweep.stats();
                    stats.steps += s.steps;
                    stats.seeks += s.seeks;
                }
                Ok((local, stats))
            },
        )?;
        let mut valid = vec![false; items.len()];
        for (local, s) in worker_results {
            for (i, ok) in local {
                valid[i] = ok;
            }
            self.stats
                .validate_sweeps
                .fetch_add(read_points.len() as u64, Ordering::Relaxed);
            self.stats
                .validate_sweep_steps
                .fetch_add(s.steps, Ordering::Relaxed);
            self.stats
                .validate_sweep_seeks
                .fetch_add(s.seeks, Ordering::Relaxed);
        }
        Ok(valid)
    }

    /// Dry-run the GC-Lookup phase over every record of value file `file`
    /// without moving any data: how many records are still live? Used by
    /// diagnostics and the `gc_validate` microbenchmark to exercise one
    /// validation mode in isolation.
    pub fn validate_file(
        &self,
        lsm: &Lsm,
        file: u64,
        mode: Option<GcValidateMode>,
    ) -> Result<GcValidationReport> {
        let meta = self
            .vstore
            .meta(file)
            .ok_or_else(|| Error::not_found(format!("value file {file}")))?;
        let reader = self.vstore.gc_reader(file)?;
        let mut items: Vec<ValItem> = Vec::new();
        let mut offsets: Vec<u64> = Vec::new();
        // Write-back identity is `(file, offset)`, so its records must be
        // materialized via `scan_all` (the lazy index carries no offsets).
        let need_addresses = self.features.gc == GcScheme::Writeback;
        if !need_addresses && self.features.lazy_read && meta.format == VFormat::RTable {
            for (ikey, _) in reader.read_lazy_index()? {
                let (u, s) = parse_record_key(&ikey)?;
                items.push(ValItem {
                    ukey: u.to_vec(),
                    seq: s,
                });
            }
        } else {
            for rec in reader.scan_all()? {
                let (u, s) = parse_record_key(&rec.ikey)?;
                items.push(ValItem {
                    ukey: u.to_vec(),
                    seq: s,
                });
                offsets.push(rec.value_offset);
            }
        }
        let (reader, read_points) = self.read_points(lsm);
        let cx = ValidateCtx {
            lsm,
            reader: &reader,
            read_points: &read_points,
        };
        let mode = mode.unwrap_or_else(|| self.resolve_mode(items.len()));
        // Record identity must mirror the scheme's own GC (see
        // `verdict()`): keyed for no-writeback, `(file, offset)` for
        // write-back, where rewritten index entries carry fresh seqs.
        let keyed = |_i: usize, r: &ValueRef| self.vstore.resolves_to(r.file, file);
        let addressed = |i: usize, r: &ValueRef| r.file == file && r.offset == offsets[i];
        let verdicts = match self.features.gc {
            GcScheme::Writeback => self.validate_items(&cx, &items, false, &addressed, mode)?,
            _ => self.validate_items(&cx, &items, true, &keyed, mode)?,
        };
        Ok(GcValidationReport {
            records: items.len() as u64,
            valid: verdicts.iter().filter(|&&v| v).count() as u64,
            mode,
        })
    }

    // ---------------- TerarkDB / Scavenger ----------------

    fn gc_no_writeback(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        let candidates: Vec<_> = self
            .vstore
            .gc_candidates(threshold)
            .into_iter()
            .take(self.cfg.batch_files.max(1))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let candidate_files: Vec<u64> = candidates.iter().map(|m| m.file).collect();
        let deleted_bytes: u64 = candidates.iter().map(|m| m.size).sum();

        // ---- Read (paper Fig. 8 step ① / §II-C "Read") ----
        let t_read = Instant::now();
        let mut readers: HashMap<u64, VReader> = HashMap::new();
        let mut pending: Vec<Pending> = Vec::new();
        for meta in &candidates {
            let reader = self.vstore.gc_reader(meta.file)?;
            if self.features.lazy_read && meta.format == VFormat::RTable {
                for (ikey, handle) in reader.read_lazy_index()? {
                    pending.push(Pending {
                        ikey,
                        source: meta.file,
                        loc: Loc::Handle(handle),
                    });
                }
            } else {
                for rec in reader.scan_all()? {
                    pending.push(Pending {
                        ikey: rec.ikey,
                        source: meta.file,
                        loc: Loc::Inline(rec.value),
                    });
                }
            }
            readers.insert(meta.file, reader);
        }
        // Sort the whole pending set by internal key up front: validation
        // verdicts are order-independent, the Fetch phase wants this
        // order anyway, and the pipeline's batches must be contiguous
        // sorted ranges so that batched and sequential execution write
        // records — and roll value files — at identical boundaries.
        pending.sort_by(|a, b| cmp_internal(&a.ikey, &b.ikey));
        self.stats
            .read_ns
            .fetch_add(t_read.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_scanned
            .fetch_add(pending.len() as u64, Ordering::Relaxed);

        // ---- GC-Lookup / Fetch / Write (Fig. 8 steps ②–④) ----
        // The reader pin stays alive until the job commits: every version
        // it protects is either rewritten or reachable through
        // inheritance. The same three stage closures run either
        // sequentially (pipeline Off) or overlapped over bounded channels
        // (On); both orders are bit-identical (see `crate::gc_exec`).
        let (reader, read_points) = self.read_points(lsm);
        let cx = ValidateCtx {
            lsm,
            reader: &reader,
            read_points: &read_points,
        };
        let alloc = lsm.file_alloc();
        let mut route_writers = RouteWriters::new(
            &self.env,
            &self.dir,
            self.features.vformat,
            self.table_opts.clone(),
            alloc.as_ref(),
            self.cfg.vsst_target,
            &self.stats,
        );
        let mut rewritten: u64 = 0;

        if !pending.is_empty() {
            let validate_stage = |batch: Vec<Pending>| -> Result<Vec<Pending>> {
                let t = Instant::now();
                let out = self.validate_pending(&cx, batch);
                self.stats
                    .lookup_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                out
            };
            let fetch_stage = |valid: Vec<Pending>| -> Result<Vec<(Vec<u8>, Bytes)>> {
                let t = Instant::now();
                let out = self.fetch_values(&readers, valid);
                self.stats
                    .read_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                out
            };
            let route_writers_ref = &mut route_writers;
            let rewritten_ref = &mut rewritten;
            let write_stage = move |materialized: Vec<(Vec<u8>, Bytes)>| -> Result<()> {
                let t = Instant::now();
                *rewritten_ref += materialized.len() as u64;
                let out = self.write_routed(route_writers_ref, &materialized);
                self.stats
                    .write_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                out
            };

            if self.cfg.pipeline == GcPipeline::On {
                let batch = self.cfg.pipeline_batch.max(1);
                let mut chunks: Vec<Vec<Pending>> =
                    Vec::with_capacity(pending.len().div_ceil(batch));
                let mut it = pending.into_iter();
                loop {
                    let chunk: Vec<Pending> = it.by_ref().take(batch).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    chunks.push(chunk);
                }
                gc_exec::run_overlapped(
                    chunks,
                    validate_stage,
                    fetch_stage,
                    write_stage,
                    &self.stats,
                )?;
            } else {
                let mut write_stage = write_stage;
                let valid = validate_stage(pending)?;
                let materialized = fetch_stage(valid)?;
                write_stage(materialized)?;
            }
        }
        let outputs = route_writers.finish()?;

        // ---- Commit: inheritance instead of index rewrites (§II-B) ----
        let mut bundle = ValueEditBundle {
            new_files: outputs,
            deleted_files: candidate_files.clone(),
            inherits: Vec::new(),
            garbage: Vec::new(),
        };
        for old in &candidate_files {
            for nf in &bundle.new_files {
                bundle.inherits.push((*old, nf.file));
            }
        }
        let new_bytes: u64 = bundle.new_files.iter().map(|f| f.size).sum();
        lsm.apply_value_edit(bundle.clone())?;
        let removed = self.vstore.apply_bundle(&bundle);
        for (file, format) in removed {
            self.vstore.delete_file(file, format);
        }

        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .files_collected
            .fetch_add(candidate_files.len() as u64, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(deleted_bytes.saturating_sub(new_bytes), Ordering::Relaxed);
        Ok(Some(GcOutcome {
            files_collected: candidate_files.len(),
            records_rewritten: rewritten,
            bytes_reclaimed: deleted_bytes.saturating_sub(new_bytes),
        }))
    }

    /// GC-Lookup (step ②) over one batch of pending records (keyed
    /// identity): returns the subset still referenced from some read
    /// point, preserving input order.
    fn validate_pending(&self, cx: &ValidateCtx<'_>, batch: Vec<Pending>) -> Result<Vec<Pending>> {
        if batch.is_empty() {
            return Ok(batch);
        }
        let mut items = Vec::with_capacity(batch.len());
        for rec in &batch {
            let (u, s) = parse_record_key(&rec.ikey)?;
            items.push(ValItem {
                ukey: u.to_vec(),
                seq: s,
            });
        }
        let sources: Vec<u64> = batch.iter().map(|r| r.source).collect();
        // Keyed identity: alive if some read point's visible reference
        // resolves (through inheritance) to the record's source file.
        let check = |i: usize, r: &ValueRef| self.vstore.resolves_to(r.file, sources[i]);
        let verdicts =
            self.validate_items(cx, &items, true, &check, self.resolve_mode(items.len()))?;
        let valid: Vec<Pending> = batch
            .into_iter()
            .zip(&verdicts)
            .filter_map(|(rec, &ok)| ok.then_some(rec))
            .collect();
        self.stats
            .records_valid
            .fetch_add(valid.len() as u64, Ordering::Relaxed);
        Ok(valid)
    }

    /// The Fetch phase (the lazy part of Lazy Read, step ③) for one batch
    /// of surviving records: inline values pass through; handle-locations
    /// are grouped per source file (BTreeMap order keeps the I/O trace
    /// deterministic), coalesced, and fanned out across the `gc_threads`
    /// pool — one job per file, results merged back in file order.
    fn fetch_values(
        &self,
        readers: &HashMap<u64, VReader>,
        valid: Vec<Pending>,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let mut materialized: Vec<(Vec<u8>, Bytes)> = Vec::with_capacity(valid.len());
        let mut by_file: BTreeMap<u64, Vec<(usize, BlockHandle)>> = BTreeMap::new();
        for (i, rec) in valid.iter().enumerate() {
            match &rec.loc {
                Loc::Inline(v) => materialized.push((rec.ikey.clone(), v.clone())),
                Loc::Handle(h) => {
                    by_file.entry(rec.source).or_default().push((i, *h));
                    materialized.push((rec.ikey.clone(), Bytes::new()));
                }
            }
        }
        let mut jobs: Vec<(u64, Vec<(usize, BlockHandle)>)> = by_file.into_iter().collect();
        for (_, handles) in jobs.iter_mut() {
            handles.sort_by_key(|(_, h)| h.offset);
        }
        let fills = gc_exec::parallel_map_ordered(
            &jobs,
            self.cfg.threads,
            &self.stats.fetch_parallel_jobs,
            |(file, handles)| {
                let reader = &readers[file];
                match reader {
                    VReader::R(r) => {
                        let hs: Vec<BlockHandle> = handles.iter().map(|(_, h)| *h).collect();
                        let recs = r.read_records(&hs, self.features.gc_readahead)?;
                        Ok(handles
                            .iter()
                            .zip(recs)
                            .map(|((idx, _), (_, value))| (*idx, value))
                            .collect::<Vec<_>>())
                    }
                    _ => handles
                        .iter()
                        .map(|(idx, h)| reader.read_record(*h).map(|(_, v)| (*idx, v)))
                        .collect(),
                }
            },
        )?;
        for file_fills in fills {
            for (idx, value) in file_fills {
                materialized[idx].1 = value;
            }
        }
        Ok(materialized)
    }

    /// The Write phase (step ④) for one batch: hot/cold-route each record
    /// and append per-route runs through the batched route writers.
    fn write_routed(
        &self,
        writers: &mut RouteWriters<'_>,
        materialized: &[(Vec<u8>, Bytes)],
    ) -> Result<()> {
        let mut run: Vec<(&[u8], SeqNo, &[u8])> = Vec::new();
        let mut run_route = 0usize;
        for (ikey, value) in materialized {
            let (ukey, seq) = parse_record_key(ikey)?;
            let route = usize::from(self.features.hotness && self.dropcache.contains(ukey));
            if route != run_route && !run.is_empty() {
                writers.write_batch(run_route, &run)?;
                run.clear();
            }
            run_route = route;
            run.push((ukey, seq, value));
        }
        if !run.is_empty() {
            writers.write_batch(run_route, &run)?;
        }
        Ok(())
    }

    // ---------------- Titan ----------------

    /// Delete deferred write-back candidates whose barrier has cleared:
    /// no registered read point predates the job's write-back commit, so
    /// no in-flight reader can still hold a pre-relocation reference.
    ///
    /// Entries that cannot be reaped — barrier not cleared, or the
    /// manifest write failed — go back on the queue; an error never
    /// drops the remaining entries (they would leak their disk files and
    /// escape `gc_writeback`'s re-pick exclusion).
    fn reap_deferred(&self, lsm: &Lsm) -> Result<()> {
        let mut pending = {
            let mut deferred = self.deferred.lock();
            if deferred.is_empty() {
                return Ok(());
            }
            std::mem::take(&mut *deferred)
        };
        let oldest = lsm.oldest_read_point();
        let mut kept = Vec::new();
        let mut result = Ok(());
        for d in pending.drain(..) {
            if result.is_err() || oldest.is_some_and(|o| o < d.barrier) {
                kept.push(d);
                continue;
            }
            let bundle = ValueEditBundle {
                deleted_files: d.files,
                ..Default::default()
            };
            match lsm.apply_value_edit(bundle.clone()) {
                Ok(()) => {
                    let removed = self.vstore.apply_bundle(&bundle);
                    for (file, format) in removed {
                        self.vstore.delete_file(file, format);
                    }
                }
                Err(e) => {
                    result = Err(e);
                    kept.push(DeferredDeletion {
                        barrier: d.barrier,
                        files: bundle.deleted_files,
                    });
                }
            }
        }
        if !kept.is_empty() {
            self.deferred.lock().extend(kept);
        }
        result
    }

    fn gc_writeback(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        // Titan gates blob deletion on the oldest snapshot; we take the
        // conservative equivalent and defer GC while snapshots exist.
        if !lsm.snapshot_sequences().is_empty() {
            return Ok(None);
        }
        // Files already collected but awaiting barrier-gated deletion
        // must not be re-picked: their records are dead in the index, so
        // a second pass would churn without reclaiming anything.
        let in_flight: Vec<u64> = {
            let deferred = self.deferred.lock();
            deferred
                .iter()
                .flat_map(|d| d.files.iter().copied())
                .collect()
        };
        let candidates: Vec<_> = self
            .vstore
            .gc_candidates(threshold)
            .into_iter()
            .filter(|m| !in_flight.contains(&m.file))
            .take(self.cfg.batch_files.max(1))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let candidate_files: Vec<u64> = candidates.iter().map(|m| m.file).collect();
        let deleted_bytes: u64 = candidates.iter().map(|m| m.size).sum();

        // ---- Read: full scan of each blob file (step ①), fanned out
        // across the `gc_threads` pool — one job per candidate file,
        // results concatenated in candidate order so the record stream
        // (and everything downstream) is deterministic ----
        let t_read = Instant::now();
        let scans = gc_exec::parallel_map_ordered(
            &candidate_files,
            self.cfg.threads,
            &self.stats.fetch_parallel_jobs,
            |&file| {
                let reader = self.vstore.gc_reader(file)?;
                Ok(reader
                    .scan_all()?
                    .into_iter()
                    .map(|rec| (file, rec))
                    .collect::<Vec<_>>())
            },
        )?;
        let mut records: Vec<(u64, crate::vstore::vtable::BlobRecord)> = Vec::new();
        for scan in scans {
            records.extend(scan);
        }
        self.stats
            .read_ns
            .fetch_add(t_read.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_scanned
            .fetch_add(records.len() as u64, Ordering::Relaxed);

        // ---- GC-Lookup: validate the batch against the index ----
        let t_lookup = Instant::now();
        let (reader, read_points) = self.read_points(lsm);
        let cx = ValidateCtx {
            lsm,
            reader: &reader,
            read_points: &read_points,
        };
        let mut items = Vec::with_capacity(records.len());
        for (_, rec) in &records {
            let (u, s) = parse_record_key(&rec.ikey)?;
            items.push(ValItem {
                ukey: u.to_vec(),
                seq: s,
            });
        }
        let addrs: Vec<(u64, u64)> = records
            .iter()
            .map(|(source, rec)| (*source, rec.value_offset))
            .collect();
        // Address identity (Titan): alive if some read point's visible
        // reference still points at this exact `(file, offset)`.
        let check = |i: usize, r: &ValueRef| r.file == addrs[i].0 && r.offset == addrs[i].1;
        let verdicts =
            self.validate_items(&cx, &items, false, &check, self.resolve_mode(items.len()))?;
        let valid: Vec<(u64, crate::vstore::vtable::BlobRecord)> = records
            .into_iter()
            .zip(&verdicts)
            .filter_map(|(rec, &ok)| ok.then_some(rec))
            .collect();
        self.stats
            .lookup_ns
            .fetch_add(t_lookup.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_valid
            .fetch_add(valid.len() as u64, Ordering::Relaxed);

        // ---- Write: rewrite valid values into fresh blob files (step
        // ④), batched through the route writers. Writers (and their file
        // numbers) are allocated lazily, so an all-dead candidate set
        // allocates nothing and a rollover landing exactly on the last
        // record never leaves an empty trailing file behind ----
        let t_write = Instant::now();
        let alloc = lsm.file_alloc();
        let mut guarded: Vec<GuardedWrite> = Vec::new();
        let mut new_files = Vec::new();
        if !valid.is_empty() {
            let mut writers = RouteWriters::new(
                &self.env,
                &self.dir,
                VFormat::BlobLog,
                self.table_opts.clone(),
                alloc.as_ref(),
                self.cfg.vsst_target,
                &self.stats,
            );
            let mut recs: Vec<(&[u8], SeqNo, &[u8])> = Vec::with_capacity(valid.len());
            for (_, rec) in &valid {
                let (ukey, seq) = parse_record_key(&rec.ikey)?;
                recs.push((ukey, seq, &rec.value));
            }
            let written = writers.write_batch(0, &recs)?;
            debug_assert_eq!(written.len(), valid.len());
            for (((source, rec), (file, w)), &(ukey, _, _)) in valid.iter().zip(&written).zip(&recs)
            {
                guarded.push(GuardedWrite {
                    key: ukey.to_vec(),
                    expected: ValueRef {
                        file: *source,
                        size: rec.value.len() as u32,
                        offset: rec.value_offset,
                    },
                    replacement: ValueRef {
                        file: *file,
                        size: w.size,
                        offset: w.offset,
                    },
                });
            }
            new_files = writers.finish()?;
        }
        self.stats
            .write_ns
            .fetch_add(t_write.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Commit the new files *before* writing back any address
        // that points into them. The manifest edit is fsynced, so by the
        // time a written-back reference can become durable (through the
        // WAL) its target file is already registered. The reverse order
        // has a crash window that recovers WAL records pointing at a
        // file the manifest never heard of — open-time orphan cleanup
        // unlinks the file and every recovered reference dangles. This
        // way a crash between commit and write-back merely leaves an
        // unreferenced file for a later GC pass to reclaim. (Same
        // ordering also closes a live race under threaded background
        // work: a reader must never observe a written-back address
        // before the value store can resolve it.)
        let bundle = ValueEditBundle {
            new_files,
            deleted_files: Vec::new(),
            inherits: Vec::new(),
            garbage: Vec::new(),
        };
        let new_bytes: u64 = bundle.new_files.iter().map(|f| f.size).sum();
        if !bundle.new_files.is_empty() {
            lsm.apply_value_edit(bundle.clone())?;
            self.vstore.apply_bundle(&bundle);
        }

        // ---- Write-Index: push the new addresses through the write path
        // (Titan's extra step, ~38% of GC time in the paper's Fig. 3) ----
        let t_wi = Instant::now();
        let rewritten = guarded.len() as u64;
        if !guarded.is_empty() {
            // Write-back is durability-critical (old value files are
            // queued for deletion below), so the default synced options.
            lsm.write_guarded(&scavenger_lsm::WriteOptions::default(), &guarded)?;
        }
        self.stats
            .write_index_ns
            .fetch_add(t_wi.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Queue deletion ----
        // The collected files are only *queued* for deletion behind a
        // barrier at the write-back commit sequence. Write-back has no
        // inheritance edges, so an in-flight reader pinned below the
        // barrier still resolves through the old file — deleting it now
        // would dangle that read.
        self.deferred.lock().push(DeferredDeletion {
            barrier: lsm.last_sequence(),
            files: candidate_files.clone(),
        });
        // Release the job's own read-point pin, then try to reap: in the
        // quiet case (no other readers in flight) the files are deleted
        // immediately, matching the previous delete-at-commit behaviour.
        drop(reader);
        self.reap_deferred(lsm)?;

        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .files_collected
            .fetch_add(candidate_files.len() as u64, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(deleted_bytes.saturating_sub(new_bytes), Ordering::Relaxed);
        Ok(Some(GcOutcome {
            files_collected: candidate_files.len(),
            records_rewritten: rewritten,
            bytes_reclaimed: deleted_bytes.saturating_sub(new_bytes),
        }))
    }
}
