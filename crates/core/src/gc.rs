//! Garbage collection strategies.
//!
//! Three schemes, mirroring the systems the paper studies (§II):
//!
//! * [`GcScheme::NoWriteback`] — TerarkDB/Scavenger. Valid records are
//!   moved to new value files and the old→new **inheritance** edge is
//!   recorded; index entries are never rewritten. Scavenger additionally
//!   enables **Lazy Read** (only the RTable's dense index is read before
//!   validation, and only *valid* values are fetched — paper Fig. 8) and
//!   **hot/cold routing** of rewritten values.
//! * [`GcScheme::Writeback`] — Titan. The whole blob file is scanned,
//!   valid values are rewritten, and the new addresses are written back
//!   through the LSM write path (the *Write-Index* step of Fig. 3),
//!   guarded against concurrent user writes.
//! * [`GcScheme::CompactionTriggered`] — BlobDB. No standalone GC: value
//!   relocation happens inside compaction (see [`crate::hook`]), and a
//!   blob file is deleted only once every record in it has been exposed
//!   as garbage ([`exhausted`](crate::vstore::VsstMeta::is_exhausted)).
//!
//! Every phase is wall-clock timed into [`GcStats`], reproducing the
//! paper's Figure 3 latency breakdown, and all I/O is charged to
//! `IoClass::GcRead` / `IoClass::GcWrite` for Figure 12(c).
//!
//! # The validation pipeline (GC-Lookup, Fig. 8 step ② / Fig. 10)
//!
//! A GC job moves through four phases, named after the paper's Fig. 8:
//!
//! | phase | Fig. 8 | what happens here |
//! |---|---|---|
//! | **Read**   | step ① | value-file keys (Lazy Read) or whole records are loaded into the pending batch |
//! | **GC-Lookup** | step ② | every pending record is validated against the index LSM-tree at each read point |
//! | **Fetch/Write** | steps ③–④ | surviving values are fetched (lazy) and rewritten hot/cold-routed |
//! | **Write-Index** | Titan only | new addresses are pushed back through the write path |
//!
//! The paper's Fig. 10 profiles GC-Lookup — historically one serial
//! `get_at` point query per record per read point — as the dominant GC
//! cost. This module therefore runs the phase through a batched
//! validation engine with three interchangeable modes
//! ([`GcValidateMode`]):
//!
//! * **Point** — the baseline: serial point lookups, exactly the paper's
//!   profiled behaviour.
//! * **Merge** (*merge-validate*) — the batch is sorted by user key (the
//!   fetch phase wants that order anyway) and resolved with **one
//!   co-sequential sweep of a pinned LSM iterator per read point**
//!   ([`scavenger_lsm::BatchSweep`]), turning `O(N · cost(get))` into a
//!   single merged forward pass that amortizes version pinning,
//!   table-handle lookups, and block-cache accesses.
//! * **Parallel** — the sorted batch is partitioned into contiguous key
//!   ranges across a pool of `gc_threads` scoped worker threads, each
//!   resolving its range with private sweeps over one shared pinned view
//!   (concurrent lookups without per-key version-mutex or table-cache
//!   contention).
//!
//! `Auto` picks per batch. All three modes are observationally
//! equivalent (asserted by `tests/integration_gc_validation.rs`) and
//! feed per-mode counters into [`GcStats`].

use crate::dropcache::DropCache;
use crate::options::{
    Features, GcScheme, GcValidateMode, VFormat, AUTO_MERGE_VALIDATE_MIN,
    AUTO_PARALLEL_VALIDATE_MIN,
};
use crate::stats::GcStats;
use crate::vstore::vtable::{parse_record_key, VReader, VWriter};
use crate::vstore::{new_value_file_record, ValueStore};
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::{EnvRef, IoClass};
use scavenger_lsm::{GuardedWrite, Lsm, LsmReadResult, LsmView, ValueEditBundle};
use scavenger_table::btable::TableOptions;
use scavenger_table::handle::BlockHandle;
use scavenger_table::KeyCmp;
use scavenger_util::ikey::{cmp_internal, SeqNo, ValueRef, ValueType};
use scavenger_util::{Error, Result};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Outcome of a dry-run [`GcRunner::validate_file`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcValidationReport {
    /// Records examined.
    pub records: u64,
    /// Records still referenced from some read point.
    pub valid: u64,
    /// The concrete validation mode that ran.
    pub mode: GcValidateMode,
}

/// Result of one GC job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Value files collected (deleted).
    pub files_collected: usize,
    /// Valid records rewritten.
    pub records_rewritten: u64,
    /// Bytes freed: deleted file sizes minus new file sizes.
    pub bytes_reclaimed: u64,
}

/// Tuning knobs for the GC runner.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Target size of rewritten value files.
    pub vsst_target: u64,
    /// Max candidate files merged per GC job.
    pub batch_files: usize,
    /// How GC-Lookup validates candidate records.
    pub validate_mode: GcValidateMode,
    /// Worker threads for parallel validation.
    pub threads: usize,
}

/// Drives GC jobs for one engine.
pub struct GcRunner {
    env: EnvRef,
    dir: String,
    features: Features,
    cfg: GcConfig,
    table_opts: TableOptions,
    vstore: Arc<ValueStore>,
    dropcache: Arc<DropCache>,
    stats: Arc<GcStats>,
    /// Write-back (Titan) GC cannot preserve superseded versions through
    /// inheritance, so collected blob files are deleted *deferred*: only
    /// once no registered read point predates the job's write-back
    /// barrier (see [`GcRunner::reap_deferred`]).
    deferred: Mutex<Vec<DeferredDeletion>>,
}

/// Blob files awaiting deletion until every read point that could still
/// address them has drained.
struct DeferredDeletion {
    /// Sequence of the GC job's write-back commit: readers at or above it
    /// observe the relocated references.
    barrier: SeqNo,
    files: Vec<u64>,
}

/// A record awaiting validation.
struct Pending {
    ikey: Vec<u8>,
    source: u64,
    loc: Loc,
}

enum Loc {
    /// Value already in memory (full-file scan, TerarkDB-style Read).
    Inline(Bytes),
    /// Only the record handle is known (Lazy Read); the value is fetched
    /// after validation.
    Handle(BlockHandle),
}

/// One record's identity inside a validation batch.
struct ValItem {
    ukey: Vec<u8>,
    seq: SeqNo,
}

impl GcRunner {
    /// Create a runner.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        env: EnvRef,
        dir: impl Into<String>,
        features: Features,
        cfg: GcConfig,
        table_opts: TableOptions,
        vstore: Arc<ValueStore>,
        dropcache: Arc<DropCache>,
        stats: Arc<GcStats>,
    ) -> Self {
        GcRunner {
            env,
            dir: dir.into(),
            features,
            cfg,
            table_opts: TableOptions {
                cmp: KeyCmp::Internal,
                ..table_opts
            },
            vstore,
            dropcache,
            stats,
            deferred: Mutex::new(Vec::new()),
        }
    }

    /// Run one GC job if any file crosses `threshold`. Returns `None` when
    /// there is nothing to collect (or the scheme has no standalone GC).
    pub fn run_once(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        self.reap_deferred(lsm)?;
        match self.features.gc {
            GcScheme::CompactionTriggered => Ok(None),
            GcScheme::NoWriteback => self.gc_no_writeback(lsm, threshold),
            GcScheme::Writeback => self.gc_writeback(lsm, threshold),
        }
    }

    /// Read points for validity, pinned for the duration of the job.
    ///
    /// The returned view registers the latest sequence *before* the
    /// registry is scanned, so the point set is race-free: any reader
    /// registered after the scan necessarily observes a sequence at or
    /// above the view's — whose visible versions this GC preserves. The
    /// caller must keep the view alive until the job commits.
    fn read_points(&self, lsm: &Lsm) -> (LsmView, Vec<SeqNo>) {
        let pin = lsm.view();
        // All registered read points: user snapshots plus in-flight view
        // pins (including our own, so the latest sequence is covered).
        let pts = lsm.read_points();
        (pin, pts)
    }

    /// Resolve `Auto` to a concrete mode for a batch of `n` records.
    fn resolve_mode(&self, n: usize) -> GcValidateMode {
        match self.cfg.validate_mode {
            GcValidateMode::Auto => {
                if n >= AUTO_MERGE_VALIDATE_MIN {
                    GcValidateMode::Merge
                } else if self.cfg.threads > 1 && n >= AUTO_PARALLEL_VALIDATE_MIN {
                    GcValidateMode::Parallel
                } else {
                    GcValidateMode::Point
                }
            }
            m => m,
        }
    }

    /// Does `result` (the visible version of item `i` at one read point)
    /// keep the item alive?
    ///
    /// `require_seq_match` is true for keyed (no-writeback) schemes, where
    /// record identity is `(user_key, seq)`. Address-based write-back GC
    /// (Titan) must NOT match sequences: its write-back re-inserts index
    /// entries under fresh sequence numbers while the relocated blob
    /// record keeps the original one — there, `(file, offset)` is the
    /// record's identity.
    fn verdict(
        result: &LsmReadResult,
        item: &ValItem,
        i: usize,
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> bool {
        if let LsmReadResult::Found {
            seq: s,
            vtype: ValueType::ValueRef,
            value,
        } = result
        {
            if !require_seq_match || *s == item.seq {
                if let Ok(r) = ValueRef::decode(value) {
                    return check_ref(i, &r);
                }
            }
        }
        false
    }

    /// The GC-Lookup phase: decide for every pending record whether any
    /// read point still references it. Dispatches to the configured
    /// validation mode (see the module docs); all modes return identical
    /// verdicts.
    ///
    /// Returns one bool per item, in input order.
    fn validate_items(
        &self,
        lsm: &Lsm,
        read_points: &[SeqNo],
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
        mode: GcValidateMode,
    ) -> Result<Vec<bool>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.validate_batches.fetch_add(1, Ordering::Relaxed);
        match mode {
            GcValidateMode::Auto => unreachable!("resolve_mode() produces concrete modes"),
            GcValidateMode::Point => {
                self.validate_point(lsm, read_points, items, require_seq_match, check_ref)
            }
            GcValidateMode::Merge => {
                self.validate_merge(lsm, read_points, items, require_seq_match, check_ref)
            }
            GcValidateMode::Parallel => {
                self.validate_parallel(lsm, read_points, items, require_seq_match, check_ref)
            }
        }
    }

    /// Baseline: one serial point lookup per record per read point.
    fn validate_point(
        &self,
        lsm: &Lsm,
        read_points: &[SeqNo],
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> Result<Vec<bool>> {
        let mut valid = vec![false; items.len()];
        let mut lookups = 0u64;
        for (i, item) in items.iter().enumerate() {
            for &pt in read_points {
                lookups += 1;
                let r = lsm.get_at(&item.ukey, pt)?;
                if Self::verdict(&r, item, i, require_seq_match, check_ref) {
                    valid[i] = true;
                    break;
                }
            }
        }
        self.stats
            .validate_point_lookups
            .fetch_add(lookups, Ordering::Relaxed);
        Ok(valid)
    }

    /// Merge-validate: sort the batch by user key and resolve it with one
    /// co-sequential sweep of a pinned LSM view per read point.
    fn validate_merge(
        &self,
        lsm: &Lsm,
        read_points: &[SeqNo],
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> Result<Vec<bool>> {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[a].ukey.cmp(&items[b].ukey));
        let reader = lsm.batch_reader();
        let mut valid = vec![false; items.len()];
        for &pt in read_points {
            let mut sweep = reader.sweep(pt)?;
            for &i in &order {
                if valid[i] {
                    continue;
                }
                let item = &items[i];
                let r = sweep.next_visible(&item.ukey)?;
                if Self::verdict(&r, item, i, require_seq_match, check_ref) {
                    valid[i] = true;
                }
            }
            let s = sweep.stats();
            self.stats.validate_sweeps.fetch_add(1, Ordering::Relaxed);
            self.stats
                .validate_sweep_steps
                .fetch_add(s.steps, Ordering::Relaxed);
            self.stats
                .validate_sweep_seeks
                .fetch_add(s.seeks, Ordering::Relaxed);
        }
        Ok(valid)
    }

    /// Worker-pool validation: sort the batch, partition it into
    /// contiguous key ranges across `gc_threads` scoped threads, and have
    /// each worker resolve its range with per-worker co-sequential sweeps
    /// over one shared pinned view (one sweep per read point per worker).
    ///
    /// Each lookup is a seek-or-step on a private iterator, so workers
    /// never contend on the version mutex or table-cache lock the way
    /// concurrent `get_at` calls do. Per-worker counters are merged into
    /// [`GcStats`] after the join.
    fn validate_parallel(
        &self,
        lsm: &Lsm,
        read_points: &[SeqNo],
        items: &[ValItem],
        require_seq_match: bool,
        check_ref: &(dyn Fn(usize, &ValueRef) -> bool + Sync),
    ) -> Result<Vec<bool>> {
        let threads = self.cfg.threads.clamp(1, items.len());
        if threads == 1 {
            return self.validate_merge(lsm, read_points, items, require_seq_match, check_ref);
        }
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[a].ukey.cmp(&items[b].ukey));
        let reader = lsm.batch_reader();
        let chunk = order.len().div_ceil(threads);
        type WorkerOut = Result<(Vec<(usize, bool)>, scavenger_lsm::SweepStats)>;
        let worker_results: Vec<WorkerOut> = std::thread::scope(|scope| {
            let reader = &reader;
            let handles: Vec<_> = order
                .chunks(chunk)
                .map(|range| {
                    scope.spawn(move || -> WorkerOut {
                        let mut local: Vec<(usize, bool)> =
                            range.iter().map(|&i| (i, false)).collect();
                        let mut stats = scavenger_lsm::SweepStats::default();
                        for &pt in read_points {
                            let mut sweep = reader.sweep(pt)?;
                            for slot in local.iter_mut() {
                                if slot.1 {
                                    continue;
                                }
                                let item = &items[slot.0];
                                let r = sweep.next_visible(&item.ukey)?;
                                if Self::verdict(&r, item, slot.0, require_seq_match, check_ref) {
                                    slot.1 = true;
                                }
                            }
                            let s = sweep.stats();
                            stats.steps += s.steps;
                            stats.seeks += s.seeks;
                        }
                        Ok((local, stats))
                    })
                })
                .collect();
            self.stats
                .validate_parallel_jobs
                .fetch_add(handles.len() as u64, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::internal("GC validation worker panicked")))
                })
                .collect()
        });
        let mut valid = vec![false; items.len()];
        for res in worker_results {
            let (local, s) = res?;
            for (i, ok) in local {
                valid[i] = ok;
            }
            self.stats
                .validate_sweeps
                .fetch_add(read_points.len() as u64, Ordering::Relaxed);
            self.stats
                .validate_sweep_steps
                .fetch_add(s.steps, Ordering::Relaxed);
            self.stats
                .validate_sweep_seeks
                .fetch_add(s.seeks, Ordering::Relaxed);
        }
        Ok(valid)
    }

    /// Dry-run the GC-Lookup phase over every record of value file `file`
    /// without moving any data: how many records are still live? Used by
    /// diagnostics and the `gc_validate` microbenchmark to exercise one
    /// validation mode in isolation.
    pub fn validate_file(
        &self,
        lsm: &Lsm,
        file: u64,
        mode: Option<GcValidateMode>,
    ) -> Result<GcValidationReport> {
        let meta = self
            .vstore
            .meta(file)
            .ok_or_else(|| Error::not_found(format!("value file {file}")))?;
        let reader = self.vstore.gc_reader(file)?;
        let mut items: Vec<ValItem> = Vec::new();
        let mut offsets: Vec<u64> = Vec::new();
        // Write-back identity is `(file, offset)`, so its records must be
        // materialized via `scan_all` (the lazy index carries no offsets).
        let need_addresses = self.features.gc == GcScheme::Writeback;
        if !need_addresses && self.features.lazy_read && meta.format == VFormat::RTable {
            for (ikey, _) in reader.read_lazy_index()? {
                let (u, s) = parse_record_key(&ikey)?;
                items.push(ValItem {
                    ukey: u.to_vec(),
                    seq: s,
                });
            }
        } else {
            for rec in reader.scan_all()? {
                let (u, s) = parse_record_key(&rec.ikey)?;
                items.push(ValItem {
                    ukey: u.to_vec(),
                    seq: s,
                });
                offsets.push(rec.value_offset);
            }
        }
        let (_pin, read_points) = self.read_points(lsm);
        let mode = mode.unwrap_or_else(|| self.resolve_mode(items.len()));
        // Record identity must mirror the scheme's own GC (see
        // `verdict()`): keyed for no-writeback, `(file, offset)` for
        // write-back, where rewritten index entries carry fresh seqs.
        let keyed = |_i: usize, r: &ValueRef| self.vstore.resolves_to(r.file, file);
        let addressed = |i: usize, r: &ValueRef| r.file == file && r.offset == offsets[i];
        let verdicts = match self.features.gc {
            GcScheme::Writeback => {
                self.validate_items(lsm, &read_points, &items, false, &addressed, mode)?
            }
            _ => self.validate_items(lsm, &read_points, &items, true, &keyed, mode)?,
        };
        Ok(GcValidationReport {
            records: items.len() as u64,
            valid: verdicts.iter().filter(|&&v| v).count() as u64,
            mode,
        })
    }

    // ---------------- TerarkDB / Scavenger ----------------

    fn gc_no_writeback(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        let candidates: Vec<_> = self
            .vstore
            .gc_candidates(threshold)
            .into_iter()
            .take(self.cfg.batch_files.max(1))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let candidate_files: Vec<u64> = candidates.iter().map(|m| m.file).collect();
        let deleted_bytes: u64 = candidates.iter().map(|m| m.size).sum();

        // ---- Read (paper Fig. 8 step ① / §II-C "Read") ----
        let t_read = Instant::now();
        let mut readers: HashMap<u64, VReader> = HashMap::new();
        let mut pending: Vec<Pending> = Vec::new();
        for meta in &candidates {
            let reader = self.vstore.gc_reader(meta.file)?;
            if self.features.lazy_read && meta.format == VFormat::RTable {
                for (ikey, handle) in reader.read_lazy_index()? {
                    pending.push(Pending {
                        ikey,
                        source: meta.file,
                        loc: Loc::Handle(handle),
                    });
                }
            } else {
                for rec in reader.scan_all()? {
                    pending.push(Pending {
                        ikey: rec.ikey,
                        source: meta.file,
                        loc: Loc::Inline(rec.value),
                    });
                }
            }
            readers.insert(meta.file, reader);
        }
        self.stats
            .read_ns
            .fetch_add(t_read.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_scanned
            .fetch_add(pending.len() as u64, Ordering::Relaxed);

        // ---- GC-Lookup (Fig. 8 step ② / Fig. 10), batched ----
        // The pin stays alive until the job commits: every version it
        // protects is either rewritten or reachable through inheritance.
        let t_lookup = Instant::now();
        let (_pin, read_points) = self.read_points(lsm);
        let mut items = Vec::with_capacity(pending.len());
        for rec in &pending {
            let (u, s) = parse_record_key(&rec.ikey)?;
            items.push(ValItem {
                ukey: u.to_vec(),
                seq: s,
            });
        }
        let sources: Vec<u64> = pending.iter().map(|r| r.source).collect();
        // Keyed identity: alive if some read point's visible reference
        // resolves (through inheritance) to the record's source file.
        let check = |i: usize, r: &ValueRef| self.vstore.resolves_to(r.file, sources[i]);
        let verdicts = self.validate_items(
            lsm,
            &read_points,
            &items,
            true,
            &check,
            self.resolve_mode(items.len()),
        )?;
        let mut valid: Vec<Pending> = pending
            .into_iter()
            .zip(&verdicts)
            .filter_map(|(rec, &ok)| ok.then_some(rec))
            .collect();
        self.stats
            .lookup_ns
            .fetch_add(t_lookup.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_valid
            .fetch_add(valid.len() as u64, Ordering::Relaxed);

        // ---- Fetch valid values (the lazy part of Lazy Read, step ③) ----
        let t_fetch = Instant::now();
        valid.sort_by(|a, b| cmp_internal(&a.ikey, &b.ikey));
        let mut materialized: Vec<(Vec<u8>, Bytes)> = Vec::with_capacity(valid.len());
        {
            // Group handle-fetches per source file for coalescing. A
            // BTreeMap keeps the fetch order (and therefore the I/O
            // trace) deterministic across runs — `HashMap` iteration
            // order would reshuffle it per process.
            let mut by_file: BTreeMap<u64, Vec<(usize, BlockHandle)>> = BTreeMap::new();
            for (i, rec) in valid.iter().enumerate() {
                match &rec.loc {
                    Loc::Inline(v) => materialized.push((rec.ikey.clone(), v.clone())),
                    Loc::Handle(h) => {
                        by_file.entry(rec.source).or_default().push((i, *h));
                        materialized.push((rec.ikey.clone(), Bytes::new()));
                    }
                }
            }
            for (file, mut handles) in by_file {
                handles.sort_by_key(|(_, h)| h.offset);
                let reader = &readers[&file];
                match reader {
                    VReader::R(r) => {
                        let hs: Vec<BlockHandle> = handles.iter().map(|(_, h)| *h).collect();
                        let recs = r.read_records(&hs, self.features.gc_readahead)?;
                        for ((idx, _), (_, value)) in handles.iter().zip(recs) {
                            materialized[*idx].1 = value;
                        }
                    }
                    _ => {
                        for (idx, h) in handles {
                            let (_, value) = reader.read_record(h)?;
                            materialized[idx].1 = value;
                        }
                    }
                }
            }
        }
        self.stats
            .read_ns
            .fetch_add(t_fetch.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Write (Fig. 8 step ④), hot/cold routed ----
        let t_write = Instant::now();
        let mut writers: [Option<(u64, VWriter)>; 2] = [None, None];
        let mut outputs: Vec<scavenger_lsm::NewValueFile> = Vec::new();
        let alloc = lsm.file_alloc();
        for (ikey, value) in &materialized {
            let (ukey, seq) = parse_record_key(ikey)?;
            let route = usize::from(self.features.hotness && self.dropcache.contains(ukey));
            if writers[route].is_none() {
                let file = alloc.next_file_number();
                writers[route] = Some((
                    file,
                    VWriter::create(
                        &self.env,
                        &self.dir,
                        file,
                        self.features.vformat,
                        self.table_opts.clone(),
                        IoClass::GcWrite,
                    )?,
                ));
            }
            let (_, w) = writers[route].as_mut().unwrap();
            w.add(ukey, seq, value)?;
            if w.estimated_size() >= self.cfg.vsst_target {
                let (file, w) = writers[route].take().unwrap();
                let info = w.finish()?;
                outputs.push(new_value_file_record(
                    file,
                    info,
                    route == 1,
                    self.features.vformat,
                ));
            }
        }
        for (route, slot) in writers.into_iter().enumerate() {
            if let Some((file, w)) = slot {
                if w.num_entries() == 0 {
                    let _ = self.env.remove_file(&crate::vstore::vtable::vfile_path(
                        &self.dir,
                        file,
                        self.features.vformat,
                    ));
                    continue;
                }
                let info = w.finish()?;
                outputs.push(new_value_file_record(
                    file,
                    info,
                    route == 1,
                    self.features.vformat,
                ));
            }
        }
        self.stats
            .write_ns
            .fetch_add(t_write.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Commit: inheritance instead of index rewrites (§II-B) ----
        let mut bundle = ValueEditBundle {
            new_files: outputs,
            deleted_files: candidate_files.clone(),
            inherits: Vec::new(),
            garbage: Vec::new(),
        };
        for old in &candidate_files {
            for nf in &bundle.new_files {
                bundle.inherits.push((*old, nf.file));
            }
        }
        let new_bytes: u64 = bundle.new_files.iter().map(|f| f.size).sum();
        lsm.apply_value_edit(bundle.clone())?;
        let removed = self.vstore.apply_bundle(&bundle);
        for (file, format) in removed {
            self.vstore.delete_file(file, format);
        }

        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .files_collected
            .fetch_add(candidate_files.len() as u64, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(deleted_bytes.saturating_sub(new_bytes), Ordering::Relaxed);
        Ok(Some(GcOutcome {
            files_collected: candidate_files.len(),
            records_rewritten: materialized.len() as u64,
            bytes_reclaimed: deleted_bytes.saturating_sub(new_bytes),
        }))
    }

    // ---------------- Titan ----------------

    /// Delete deferred write-back candidates whose barrier has cleared:
    /// no registered read point predates the job's write-back commit, so
    /// no in-flight reader can still hold a pre-relocation reference.
    ///
    /// Entries that cannot be reaped — barrier not cleared, or the
    /// manifest write failed — go back on the queue; an error never
    /// drops the remaining entries (they would leak their disk files and
    /// escape `gc_writeback`'s re-pick exclusion).
    fn reap_deferred(&self, lsm: &Lsm) -> Result<()> {
        let mut pending = {
            let mut deferred = self.deferred.lock();
            if deferred.is_empty() {
                return Ok(());
            }
            std::mem::take(&mut *deferred)
        };
        let oldest = lsm.oldest_read_point();
        let mut kept = Vec::new();
        let mut result = Ok(());
        for d in pending.drain(..) {
            if result.is_err() || oldest.is_some_and(|o| o < d.barrier) {
                kept.push(d);
                continue;
            }
            let bundle = ValueEditBundle {
                deleted_files: d.files,
                ..Default::default()
            };
            match lsm.apply_value_edit(bundle.clone()) {
                Ok(()) => {
                    let removed = self.vstore.apply_bundle(&bundle);
                    for (file, format) in removed {
                        self.vstore.delete_file(file, format);
                    }
                }
                Err(e) => {
                    result = Err(e);
                    kept.push(DeferredDeletion {
                        barrier: d.barrier,
                        files: bundle.deleted_files,
                    });
                }
            }
        }
        if !kept.is_empty() {
            self.deferred.lock().extend(kept);
        }
        result
    }

    fn gc_writeback(&self, lsm: &Lsm, threshold: f64) -> Result<Option<GcOutcome>> {
        // Titan gates blob deletion on the oldest snapshot; we take the
        // conservative equivalent and defer GC while snapshots exist.
        if !lsm.snapshot_sequences().is_empty() {
            return Ok(None);
        }
        // Files already collected but awaiting barrier-gated deletion
        // must not be re-picked: their records are dead in the index, so
        // a second pass would churn without reclaiming anything.
        let in_flight: Vec<u64> = {
            let deferred = self.deferred.lock();
            deferred
                .iter()
                .flat_map(|d| d.files.iter().copied())
                .collect()
        };
        let candidates: Vec<_> = self
            .vstore
            .gc_candidates(threshold)
            .into_iter()
            .filter(|m| !in_flight.contains(&m.file))
            .take(self.cfg.batch_files.max(1))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let candidate_files: Vec<u64> = candidates.iter().map(|m| m.file).collect();
        let deleted_bytes: u64 = candidates.iter().map(|m| m.size).sum();

        // ---- Read: full sequential scan of each blob file ----
        let t_read = Instant::now();
        let mut records: Vec<(u64, crate::vstore::vtable::BlobRecord)> = Vec::new();
        for meta in &candidates {
            let reader = self.vstore.gc_reader(meta.file)?;
            for rec in reader.scan_all()? {
                records.push((meta.file, rec));
            }
        }
        self.stats
            .read_ns
            .fetch_add(t_read.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_scanned
            .fetch_add(records.len() as u64, Ordering::Relaxed);

        // ---- GC-Lookup: validate the batch against the index ----
        let t_lookup = Instant::now();
        let (pin, read_points) = self.read_points(lsm);
        let mut items = Vec::with_capacity(records.len());
        for (_, rec) in &records {
            let (u, s) = parse_record_key(&rec.ikey)?;
            items.push(ValItem {
                ukey: u.to_vec(),
                seq: s,
            });
        }
        let addrs: Vec<(u64, u64)> = records
            .iter()
            .map(|(source, rec)| (*source, rec.value_offset))
            .collect();
        // Address identity (Titan): alive if some read point's visible
        // reference still points at this exact `(file, offset)`.
        let check = |i: usize, r: &ValueRef| r.file == addrs[i].0 && r.offset == addrs[i].1;
        let verdicts = self.validate_items(
            lsm,
            &read_points,
            &items,
            false,
            &check,
            self.resolve_mode(items.len()),
        )?;
        let valid: Vec<(u64, crate::vstore::vtable::BlobRecord)> = records
            .into_iter()
            .zip(&verdicts)
            .filter_map(|(rec, &ok)| ok.then_some(rec))
            .collect();
        self.stats
            .lookup_ns
            .fetch_add(t_lookup.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats
            .records_valid
            .fetch_add(valid.len() as u64, Ordering::Relaxed);

        // ---- Write: rewrite valid values into a fresh blob file ----
        let t_write = Instant::now();
        let alloc = lsm.file_alloc();
        let mut new_files = Vec::new();
        let mut guarded: Vec<GuardedWrite> = Vec::new();
        if !valid.is_empty() {
            let mut file = alloc.next_file_number();
            let mut w = VWriter::create(
                &self.env,
                &self.dir,
                file,
                VFormat::BlobLog,
                self.table_opts.clone(),
                IoClass::GcWrite,
            )?;
            for (source, rec) in &valid {
                let (ukey, seq) = parse_record_key(&rec.ikey)?;
                let written = w.add(ukey, seq, &rec.value)?;
                guarded.push(GuardedWrite {
                    key: ukey.to_vec(),
                    expected: ValueRef {
                        file: *source,
                        size: rec.value.len() as u32,
                        offset: rec.value_offset,
                    },
                    replacement: ValueRef {
                        file,
                        size: written.size,
                        offset: written.offset,
                    },
                });
                if w.estimated_size() >= self.cfg.vsst_target {
                    let info = w.finish()?;
                    new_files.push(new_value_file_record(file, info, false, VFormat::BlobLog));
                    file = alloc.next_file_number();
                    w = VWriter::create(
                        &self.env,
                        &self.dir,
                        file,
                        VFormat::BlobLog,
                        self.table_opts.clone(),
                        IoClass::GcWrite,
                    )?;
                }
            }
            if w.num_entries() > 0 {
                let info = w.finish()?;
                new_files.push(new_value_file_record(file, info, false, VFormat::BlobLog));
            } else {
                let _ = self.env.remove_file(&crate::vstore::vtable::vfile_path(
                    &self.dir,
                    file,
                    VFormat::BlobLog,
                ));
            }
        }
        self.stats
            .write_ns
            .fetch_add(t_write.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Write-Index: push the new addresses through the write path
        // (Titan's extra step, ~38% of GC time in the paper's Fig. 3) ----
        let t_wi = Instant::now();
        let rewritten = guarded.len() as u64;
        if !guarded.is_empty() {
            lsm.write_guarded(&guarded)?;
        }
        self.stats
            .write_index_ns
            .fetch_add(t_wi.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // ---- Commit ----
        // The new blob files go live immediately; the collected files are
        // only *queued* for deletion behind a barrier at the write-back
        // commit sequence. Write-back has no inheritance edges, so an
        // in-flight reader pinned below the barrier still resolves
        // through the old file — deleting it now would dangle that read.
        let bundle = ValueEditBundle {
            new_files,
            deleted_files: Vec::new(),
            inherits: Vec::new(),
            garbage: Vec::new(),
        };
        let new_bytes: u64 = bundle.new_files.iter().map(|f| f.size).sum();
        if !bundle.new_files.is_empty() {
            lsm.apply_value_edit(bundle.clone())?;
            self.vstore.apply_bundle(&bundle);
        }
        self.deferred.lock().push(DeferredDeletion {
            barrier: lsm.last_sequence(),
            files: candidate_files.clone(),
        });
        // Release the job's own read-point pin, then try to reap: in the
        // quiet case (no other readers in flight) the files are deleted
        // immediately, matching the previous delete-at-commit behaviour.
        drop(pin);
        self.reap_deferred(lsm)?;

        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .files_collected
            .fetch_add(candidate_files.len() as u64, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(deleted_bytes.saturating_sub(new_bytes), Ordering::Relaxed);
        Ok(Some(GcOutcome {
            files_collected: candidate_files.len(),
            records_rewritten: rewritten,
            bytes_reclaimed: deleted_bytes.saturating_sub(new_bytes),
        }))
    }
}
