//! Engine statistics: GC step breakdown (paper Fig. 3), space breakdown,
//! and the aggregate snapshot the experiment harness consumes.

use scavenger_env::IoStatsSnapshot;
use scavenger_util::ikey::SeqNo;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulated per-step GC cost. The four steps are exactly the paper's
/// (§II-C): Read, GC-Lookup, Write, Write-Index.
#[derive(Debug, Default)]
pub struct GcStats {
    /// Wall nanoseconds in the Read step.
    pub read_ns: AtomicU64,
    /// Wall nanoseconds in the GC-Lookup step.
    pub lookup_ns: AtomicU64,
    /// Wall nanoseconds in the Write step.
    pub write_ns: AtomicU64,
    /// Wall nanoseconds in the Write-Index step (Titan only).
    pub write_index_ns: AtomicU64,
    /// GC jobs run.
    pub runs: AtomicU64,
    /// Value files collected.
    pub files_collected: AtomicU64,
    /// Records examined.
    pub records_scanned: AtomicU64,
    /// Records found valid and rewritten.
    pub records_valid: AtomicU64,
    /// Bytes of garbage reclaimed (file bytes deleted minus bytes
    /// rewritten).
    pub reclaimed_bytes: AtomicU64,
    /// Validation batches executed (one per GC job phase).
    pub validate_batches: AtomicU64,
    /// Serial or parallel point lookups issued during validation.
    pub validate_point_lookups: AtomicU64,
    /// Co-sequential merge sweeps run (batches × read points).
    pub validate_sweeps: AtomicU64,
    /// Forward iterator steps taken by merge sweeps.
    pub validate_sweep_steps: AtomicU64,
    /// Full merged re-seeks taken by merge sweeps.
    pub validate_sweep_seeks: AtomicU64,
    /// Worker tasks dispatched by parallel validation.
    pub validate_parallel_jobs: AtomicU64,
    /// Worker tasks dispatched by parallel GC file I/O (the Fetch phase's
    /// per-file fan-out and Titan's full-file Read scans).
    pub fetch_parallel_jobs: AtomicU64,
    /// Record batches staged through `VWriter::add_batch` by the Write
    /// phase's route writers.
    pub write_batches: AtomicU64,
    /// GC jobs executed through the overlapped pipeline executor.
    pub pipeline_jobs: AtomicU64,
    /// Record batches pushed through the pipeline stages.
    pub pipeline_batches: AtomicU64,
    /// Stage executions that began while another pipeline stage was
    /// mid-batch — the direct measure of stage overlap.
    pub pipeline_overlaps: AtomicU64,
    /// Inter-stage handoffs that found the downstream queue full
    /// (backpressure from a slower stage).
    pub pipeline_backpressure: AtomicU64,
}

impl GcStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> GcStepTimes {
        GcStepTimes {
            read_ns: self.read_ns.load(Ordering::Relaxed),
            lookup_ns: self.lookup_ns.load(Ordering::Relaxed),
            write_ns: self.write_ns.load(Ordering::Relaxed),
            write_index_ns: self.write_index_ns.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            files_collected: self.files_collected.load(Ordering::Relaxed),
            records_scanned: self.records_scanned.load(Ordering::Relaxed),
            records_valid: self.records_valid.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
            validate_batches: self.validate_batches.load(Ordering::Relaxed),
            validate_point_lookups: self.validate_point_lookups.load(Ordering::Relaxed),
            validate_sweeps: self.validate_sweeps.load(Ordering::Relaxed),
            validate_sweep_steps: self.validate_sweep_steps.load(Ordering::Relaxed),
            validate_sweep_seeks: self.validate_sweep_seeks.load(Ordering::Relaxed),
            validate_parallel_jobs: self.validate_parallel_jobs.load(Ordering::Relaxed),
            fetch_parallel_jobs: self.fetch_parallel_jobs.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            pipeline_jobs: self.pipeline_jobs.load(Ordering::Relaxed),
            pipeline_batches: self.pipeline_batches.load(Ordering::Relaxed),
            pipeline_overlaps: self.pipeline_overlaps.load(Ordering::Relaxed),
            pipeline_backpressure: self.pipeline_backpressure.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`GcStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStepTimes {
    /// Read-step nanoseconds.
    pub read_ns: u64,
    /// GC-Lookup-step nanoseconds.
    pub lookup_ns: u64,
    /// Write-step nanoseconds.
    pub write_ns: u64,
    /// Write-Index-step nanoseconds.
    pub write_index_ns: u64,
    /// GC jobs run.
    pub runs: u64,
    /// Files collected.
    pub files_collected: u64,
    /// Records examined.
    pub records_scanned: u64,
    /// Records rewritten.
    pub records_valid: u64,
    /// Garbage bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Validation batches executed.
    pub validate_batches: u64,
    /// Point lookups issued during validation (serial + parallel).
    pub validate_point_lookups: u64,
    /// Co-sequential merge sweeps run.
    pub validate_sweeps: u64,
    /// Forward iterator steps taken by merge sweeps.
    pub validate_sweep_steps: u64,
    /// Full merged re-seeks taken by merge sweeps.
    pub validate_sweep_seeks: u64,
    /// Worker tasks dispatched by parallel validation.
    pub validate_parallel_jobs: u64,
    /// Worker tasks dispatched by parallel GC file I/O (Fetch fan-out and
    /// Titan Read scans).
    pub fetch_parallel_jobs: u64,
    /// Record batches staged through `VWriter::add_batch` by the Write
    /// phase.
    pub write_batches: u64,
    /// GC jobs executed through the overlapped pipeline executor.
    pub pipeline_jobs: u64,
    /// Record batches pushed through the pipeline stages.
    pub pipeline_batches: u64,
    /// Stage executions that overlapped another stage.
    pub pipeline_overlaps: u64,
    /// Handoffs that hit a full inter-stage queue (backpressure).
    pub pipeline_backpressure: u64,
}

impl GcStepTimes {
    /// Total nanoseconds across all steps.
    pub fn total_ns(&self) -> u64 {
        self.read_ns + self.lookup_ns + self.write_ns + self.write_index_ns
    }

    /// Per-step share of GC time as `(read, lookup, write, write_index)`
    /// percentages — the paper's Figure 3 latency breakdown.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total_ns() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            100.0 * self.read_ns as f64 / t,
            100.0 * self.lookup_ns as f64 / t,
            100.0 * self.write_ns as f64 / t,
            100.0 * self.write_index_ns as f64 / t,
        )
    }

    /// Add `other`'s counters into `self` — used by
    /// [`DbShards::stats`](crate::DbShards::stats) to fold per-shard GC
    /// breakdowns into one set-wide snapshot. The exhaustive
    /// destructuring (no `..`) makes the compiler flag any field added
    /// to the struct but forgotten here.
    pub fn accumulate(&mut self, other: &GcStepTimes) {
        let GcStepTimes {
            read_ns,
            lookup_ns,
            write_ns,
            write_index_ns,
            runs,
            files_collected,
            records_scanned,
            records_valid,
            reclaimed_bytes,
            validate_batches,
            validate_point_lookups,
            validate_sweeps,
            validate_sweep_steps,
            validate_sweep_seeks,
            validate_parallel_jobs,
            fetch_parallel_jobs,
            write_batches,
            pipeline_jobs,
            pipeline_batches,
            pipeline_overlaps,
            pipeline_backpressure,
        } = *other;
        self.read_ns += read_ns;
        self.lookup_ns += lookup_ns;
        self.write_ns += write_ns;
        self.write_index_ns += write_index_ns;
        self.runs += runs;
        self.files_collected += files_collected;
        self.records_scanned += records_scanned;
        self.records_valid += records_valid;
        self.reclaimed_bytes += reclaimed_bytes;
        self.validate_batches += validate_batches;
        self.validate_point_lookups += validate_point_lookups;
        self.validate_sweeps += validate_sweeps;
        self.validate_sweep_steps += validate_sweep_steps;
        self.validate_sweep_seeks += validate_sweep_seeks;
        self.validate_parallel_jobs += validate_parallel_jobs;
        self.fetch_parallel_jobs += fetch_parallel_jobs;
        self.write_batches += write_batches;
        self.pipeline_jobs += pipeline_jobs;
        self.pipeline_batches += pipeline_batches;
        self.pipeline_overlaps += pipeline_overlaps;
        self.pipeline_backpressure += pipeline_backpressure;
    }

    /// `self - earlier`, saturating.
    pub fn delta(&self, earlier: &GcStepTimes) -> GcStepTimes {
        GcStepTimes {
            read_ns: self.read_ns.saturating_sub(earlier.read_ns),
            lookup_ns: self.lookup_ns.saturating_sub(earlier.lookup_ns),
            write_ns: self.write_ns.saturating_sub(earlier.write_ns),
            write_index_ns: self.write_index_ns.saturating_sub(earlier.write_index_ns),
            runs: self.runs.saturating_sub(earlier.runs),
            files_collected: self.files_collected.saturating_sub(earlier.files_collected),
            records_scanned: self.records_scanned.saturating_sub(earlier.records_scanned),
            records_valid: self.records_valid.saturating_sub(earlier.records_valid),
            reclaimed_bytes: self.reclaimed_bytes.saturating_sub(earlier.reclaimed_bytes),
            validate_batches: self
                .validate_batches
                .saturating_sub(earlier.validate_batches),
            validate_point_lookups: self
                .validate_point_lookups
                .saturating_sub(earlier.validate_point_lookups),
            validate_sweeps: self.validate_sweeps.saturating_sub(earlier.validate_sweeps),
            validate_sweep_steps: self
                .validate_sweep_steps
                .saturating_sub(earlier.validate_sweep_steps),
            validate_sweep_seeks: self
                .validate_sweep_seeks
                .saturating_sub(earlier.validate_sweep_seeks),
            validate_parallel_jobs: self
                .validate_parallel_jobs
                .saturating_sub(earlier.validate_parallel_jobs),
            fetch_parallel_jobs: self
                .fetch_parallel_jobs
                .saturating_sub(earlier.fetch_parallel_jobs),
            write_batches: self.write_batches.saturating_sub(earlier.write_batches),
            pipeline_jobs: self.pipeline_jobs.saturating_sub(earlier.pipeline_jobs),
            pipeline_batches: self
                .pipeline_batches
                .saturating_sub(earlier.pipeline_batches),
            pipeline_overlaps: self
                .pipeline_overlaps
                .saturating_sub(earlier.pipeline_overlaps),
            pipeline_backpressure: self
                .pipeline_backpressure
                .saturating_sub(earlier.pipeline_backpressure),
        }
    }
}

/// Where the engine's bytes live on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceBreakdown {
    /// Key SSTs (the index LSM-tree).
    pub ksst_bytes: u64,
    /// Value SSTs / blob logs.
    pub value_bytes: u64,
    /// Write-ahead logs.
    pub wal_bytes: u64,
    /// Manifest + CURRENT.
    pub manifest_bytes: u64,
    /// Anything else.
    pub other_bytes: u64,
}

impl SpaceBreakdown {
    /// Total engine footprint.
    pub fn total(&self) -> u64 {
        self.ksst_bytes + self.value_bytes + self.wal_bytes + self.manifest_bytes + self.other_bytes
    }

    /// Add `other`'s per-category bytes into `self` — used by
    /// [`DbShards`](crate::DbShards) to fold per-shard breakdowns into
    /// one set-wide total. Exhaustively destructured (no `..`) so a new
    /// category cannot be silently dropped from aggregation.
    pub fn accumulate(&mut self, other: &SpaceBreakdown) {
        let SpaceBreakdown {
            ksst_bytes,
            value_bytes,
            wal_bytes,
            manifest_bytes,
            other_bytes,
        } = *other;
        self.ksst_bytes += ksst_bytes;
        self.value_bytes += value_bytes;
        self.wal_bytes += wal_bytes;
        self.manifest_bytes += manifest_bytes;
        self.other_bytes += other_bytes;
    }
}

/// Aggregate engine statistics for the harness.
#[derive(Debug, Clone)]
pub struct DbStats {
    /// Per-class I/O counters.
    pub io: IoStatsSnapshot,
    /// GC step breakdown.
    pub gc: GcStepTimes,
    /// On-disk space breakdown.
    pub space: SpaceBreakdown,
    /// Index LSM-tree space amplification (paper Eq. 1).
    pub index_space_amp: f64,
    /// Total exposed garbage bytes in the value store.
    pub exposed_garbage_bytes: u64,
    /// Total value bytes in live value files.
    pub value_store_bytes: u64,
    /// Live value files.
    pub value_files: u64,
    /// Block cache hit ratio.
    pub cache_hit_ratio: f64,
    /// Flushes.
    pub flushes: u64,
    /// Compactions.
    pub compactions: u64,
    /// Entries dropped by merges.
    pub merge_drops: u64,
    /// Write-path throttle activations (space-aware throttling, §III-D).
    /// When the engine is a [`DbShards`](crate::DbShards) member, the
    /// counter is shared — every shard reports the set-wide total.
    pub throttle_stalls: u64,
    /// The oldest registered read point (gauge), or `None` when no
    /// reader is in flight. Everything visible at this sequence is
    /// preserved: compaction keeps the pinned versions, no-writeback GC
    /// validates against it, Titan's write-back GC holds collected blob
    /// files in its deferred queue until no read point predates the
    /// relocation, and BlobDB defers exhausted-file reaping entirely
    /// while it is `Some`. A value that stays old for a long time is the
    /// signature of a leaked view/snapshot — space cannot be reclaimed
    /// past it, which space-aware throttling (§III-D) will eventually
    /// surface as activations that cannot get back under the limit.
    pub oldest_read_point: Option<SeqNo>,
    /// Pinned transient views currently registered (gauge): in-flight
    /// `get`s/scans, live [`ReadView`](crate::ReadView)s, and GC
    /// validation readers.
    pub pinned_views: u64,
    /// User [`Snapshot`](crate::Snapshot)s currently registered (gauge).
    /// Beyond pinning versions like any read point, snapshots gate
    /// Titan's whole-job GC deferral.
    pub live_snapshots: u64,
    /// Background jobs that exhausted their transient-failure retries (or
    /// failed permanently) and degraded the engine to read-only mode.
    pub bg_errors: u64,
    /// Transient background-job failures that were retried with backoff
    /// (see `Options::bg_retry_limit` / `Options::bg_retry_base`).
    pub bg_retries: u64,
    /// True while the engine is in read-only degraded mode after a
    /// permanent background failure; writes fail fast with
    /// [`Error::ReadOnlyMode`](scavenger_util::Error::ReadOnlyMode) until
    /// `resume()` clears the condition. For a [`DbShards`](crate::DbShards)
    /// set this is the OR across shards.
    pub degraded: bool,
    /// WAL files whose tail was found torn/corrupt during recovery; the
    /// intact record prefix was replayed and the rest discarded.
    pub wal_tail_corruptions: u64,
    /// Commit groups formed by the group-commit write path (each group is
    /// one WAL record, one memtable pass, and at most one fsync).
    pub group_commit_groups: u64,
    /// Writer batches committed through those groups. Equal to
    /// `group_commit_groups` when writers never contend; greater under
    /// concurrency.
    pub group_commit_batches: u64,
    /// Largest number of batches ever merged into a single group.
    pub group_commit_max_group: u64,
    /// Fsyncs elided by riding a group leader's sync: for every synced
    /// group this grows by `sync_riders - 1`.
    pub group_commit_fsyncs_saved: u64,
    /// Optimistic transactions committed through this handle (validated
    /// read set, batch applied). For a [`DbShards`](crate::DbShards) set
    /// this sums the set-level commits with any per-shard commits.
    pub txn_commits: u64,
    /// Optimistic transactions rejected at commit-time validation: a
    /// read-set key was overwritten after the transaction's read point.
    pub txn_conflicts: u64,
    /// Multi-shard batches committed through the two-phase coordinator
    /// log (prepare + commit records). Always 0 on a single
    /// [`Db`](crate::Db);
    /// single-shard batches bypass the coordinator entirely.
    pub txn_2pc_commits: u64,
    /// Prepared-but-uncommitted coordinator transactions rolled forward
    /// during recovery (crash between prepare and the last shard apply).
    pub txn_2pc_rollforwards: u64,
    /// Change events published to the CDC ring at group-commit apply
    /// time (counter; includes internal relocation events the
    /// subscriber API filters out).
    pub cdc_events_published: u64,
    /// Registered change-stream cursors (gauge). For a
    /// [`DbShards`](crate::DbShards) set this sums per-shard cursors,
    /// so one merged subscription counts once per shard.
    pub cdc_subscribers: u64,
    /// WAL bytes retained beyond the durability horizon for change-
    /// stream catch-up — the CDC share of [`DbStats::pinned_bytes`].
    pub cdc_retained_wal_bytes: u64,
    /// How far the slowest registered subscriber trails the commit head
    /// in sequence numbers (gauge; max across shards, 0 when caught up
    /// or no subscribers).
    pub cdc_lag_seqs: u64,
    /// Cursor polls served from retained WAL segments rather than the
    /// in-memory ring (counter) — nonzero means subscribers fell behind
    /// the ring and took the catch-up path.
    pub cdc_catchup_reads: u64,
    /// Bytes the engine is currently holding *only* because something
    /// pins them — WAL history retained for change streams plus value
    /// files whose reclamation is deferred by read points (gauge).
    /// Space-aware throttling (§III-D) discounts these: reclamation
    /// cannot get rid of them, so stalling writers on them is pointless.
    pub pinned_bytes: u64,
}

// ---------------- Prometheus exposition ----------------

/// Append one metric line in Prometheus text exposition format:
/// `name{labels} value`. `labels` is the raw label-pair string (e.g.
/// `r#"class="wal",shard="3""#`), or `""` for none — the braces are
/// omitted entirely in that case.
pub fn prom_line(out: &mut String, name: &str, labels: &str, value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    if value.fract() == 0.0 && value.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", value as i64));
    } else {
        out.push_str(&format!("{value}"));
    }
    out.push('\n');
}

/// Append a `# HELP` / `# TYPE` header for a metric.
pub fn prom_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Append per-[`IoClass`](scavenger_env::IoClass) I/O counters in
/// exposition format, one series per class, with `extra_labels`
/// (e.g. `r#"shard="2""#`) appended to each class label.
pub fn render_io_prometheus(out: &mut String, io: &IoStatsSnapshot, extra_labels: &str) {
    for class in scavenger_env::io_stats::ALL_IO_CLASSES {
        let c = io.class(class);
        let labels = if extra_labels.is_empty() {
            format!("class=\"{}\"", class.label())
        } else {
            format!("class=\"{}\",{extra_labels}", class.label())
        };
        prom_line(
            out,
            "scavenger_io_read_bytes_total",
            &labels,
            c.read_bytes as f64,
        );
        prom_line(
            out,
            "scavenger_io_read_ops_total",
            &labels,
            c.read_ops as f64,
        );
        prom_line(
            out,
            "scavenger_io_write_bytes_total",
            &labels,
            c.write_bytes as f64,
        );
        prom_line(
            out,
            "scavenger_io_write_ops_total",
            &labels,
            c.write_ops as f64,
        );
    }
}

impl DbStats {
    /// Render this snapshot in Prometheus text exposition format,
    /// appending `labels` to every series. Covers the per-class I/O
    /// counters, the GC step breakdown, the space breakdown, and every
    /// scalar gauge — the engine half of a `/metrics` scrape (the
    /// server layer adds its own connection/latency series on top).
    pub fn render_prometheus(&self, out: &mut String, labels: &str) {
        let DbStats {
            io,
            gc,
            space,
            index_space_amp,
            exposed_garbage_bytes,
            value_store_bytes,
            value_files,
            cache_hit_ratio,
            flushes,
            compactions,
            merge_drops,
            throttle_stalls,
            oldest_read_point,
            pinned_views,
            live_snapshots,
            bg_errors,
            bg_retries,
            degraded,
            wal_tail_corruptions,
            group_commit_groups,
            group_commit_batches,
            group_commit_max_group,
            group_commit_fsyncs_saved,
            txn_commits,
            txn_conflicts,
            txn_2pc_commits,
            txn_2pc_rollforwards,
            cdc_events_published,
            cdc_subscribers,
            cdc_retained_wal_bytes,
            cdc_lag_seqs,
            cdc_catchup_reads,
            pinned_bytes,
        } = self;
        render_io_prometheus(out, io, labels);
        let g = |out: &mut String, name: &str, v: f64| prom_line(out, name, labels, v);
        g(out, "scavenger_gc_runs_total", gc.runs as f64);
        g(
            out,
            "scavenger_gc_files_collected_total",
            gc.files_collected as f64,
        );
        g(
            out,
            "scavenger_gc_records_scanned_total",
            gc.records_scanned as f64,
        );
        g(
            out,
            "scavenger_gc_records_valid_total",
            gc.records_valid as f64,
        );
        g(
            out,
            "scavenger_gc_reclaimed_bytes_total",
            gc.reclaimed_bytes as f64,
        );
        for (step, ns) in [
            ("read", gc.read_ns),
            ("lookup", gc.lookup_ns),
            ("write", gc.write_ns),
            ("write_index", gc.write_index_ns),
        ] {
            let step_labels = if labels.is_empty() {
                format!("step=\"{step}\"")
            } else {
                format!("step=\"{step}\",{labels}")
            };
            prom_line(
                out,
                "scavenger_gc_step_seconds_total",
                &step_labels,
                ns as f64 / 1e9,
            );
        }
        for (kind, bytes) in [
            ("ksst", space.ksst_bytes),
            ("value", space.value_bytes),
            ("wal", space.wal_bytes),
            ("manifest", space.manifest_bytes),
            ("other", space.other_bytes),
        ] {
            let kind_labels = if labels.is_empty() {
                format!("kind=\"{kind}\"")
            } else {
                format!("kind=\"{kind}\",{labels}")
            };
            prom_line(out, "scavenger_space_bytes", &kind_labels, bytes as f64);
        }
        g(out, "scavenger_index_space_amp", *index_space_amp);
        g(
            out,
            "scavenger_exposed_garbage_bytes",
            *exposed_garbage_bytes as f64,
        );
        g(
            out,
            "scavenger_value_store_bytes",
            *value_store_bytes as f64,
        );
        g(out, "scavenger_value_files", *value_files as f64);
        g(out, "scavenger_cache_hit_ratio", *cache_hit_ratio);
        g(out, "scavenger_flushes_total", *flushes as f64);
        g(out, "scavenger_compactions_total", *compactions as f64);
        g(out, "scavenger_merge_drops_total", *merge_drops as f64);
        g(
            out,
            "scavenger_throttle_stalls_total",
            *throttle_stalls as f64,
        );
        // Absent ⇒ no reader in flight; emit presence + value so a
        // scraper can tell "no pin" from "pinned at sequence 0".
        g(
            out,
            "scavenger_oldest_read_point_present",
            if oldest_read_point.is_some() {
                1.0
            } else {
                0.0
            },
        );
        g(
            out,
            "scavenger_oldest_read_point",
            oldest_read_point.unwrap_or(0) as f64,
        );
        g(out, "scavenger_pinned_views", *pinned_views as f64);
        g(out, "scavenger_live_snapshots", *live_snapshots as f64);
        g(out, "scavenger_bg_errors_total", *bg_errors as f64);
        g(out, "scavenger_bg_retries_total", *bg_retries as f64);
        g(out, "scavenger_degraded", if *degraded { 1.0 } else { 0.0 });
        g(
            out,
            "scavenger_wal_tail_corruptions_total",
            *wal_tail_corruptions as f64,
        );
        g(
            out,
            "scavenger_group_commit_groups_total",
            *group_commit_groups as f64,
        );
        g(
            out,
            "scavenger_group_commit_batches_total",
            *group_commit_batches as f64,
        );
        g(
            out,
            "scavenger_group_commit_max_group",
            *group_commit_max_group as f64,
        );
        g(
            out,
            "scavenger_group_commit_fsyncs_saved_total",
            *group_commit_fsyncs_saved as f64,
        );
        g(out, "scavenger_txn_commits_total", *txn_commits as f64);
        g(out, "scavenger_txn_conflicts_total", *txn_conflicts as f64);
        g(
            out,
            "scavenger_txn_2pc_commits_total",
            *txn_2pc_commits as f64,
        );
        g(
            out,
            "scavenger_txn_2pc_rollforwards_total",
            *txn_2pc_rollforwards as f64,
        );
        g(
            out,
            "scavenger_cdc_events_published_total",
            *cdc_events_published as f64,
        );
        g(out, "scavenger_cdc_subscribers", *cdc_subscribers as f64);
        g(
            out,
            "scavenger_cdc_retained_wal_bytes",
            *cdc_retained_wal_bytes as f64,
        );
        g(out, "scavenger_cdc_lag_seqs", *cdc_lag_seqs as f64);
        g(
            out,
            "scavenger_cdc_catchup_reads_total",
            *cdc_catchup_reads as f64,
        );
        g(out, "scavenger_pinned_bytes", *pinned_bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let t = GcStepTimes {
            read_ns: 500,
            lookup_ns: 300,
            write_ns: 150,
            write_index_ns: 50,
            ..Default::default()
        };
        let (r, l, w, wi) = t.percentages();
        assert!((r + l + w + wi - 100.0).abs() < 1e-9);
        assert!((r - 50.0).abs() < 1e-9);
        assert!((wi - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_percentages_are_zero() {
        let t = GcStepTimes::default();
        assert_eq!(t.percentages(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(t.total_ns(), 0);
    }

    #[test]
    fn delta_subtracts() {
        let a = GcStepTimes {
            read_ns: 100,
            runs: 2,
            ..Default::default()
        };
        let b = GcStepTimes {
            read_ns: 250,
            runs: 5,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.read_ns, 150);
        assert_eq!(d.runs, 3);
    }

    #[test]
    fn space_total_sums_components() {
        let s = SpaceBreakdown {
            ksst_bytes: 1,
            value_bytes: 2,
            wal_bytes: 3,
            manifest_bytes: 4,
            other_bytes: 5,
        };
        assert_eq!(s.total(), 15);
    }

    #[test]
    fn prom_line_formats_labels_and_integers() {
        let mut out = String::new();
        prom_line(&mut out, "m", "", 3.0);
        prom_line(&mut out, "m", "a=\"b\"", 0.5);
        assert_eq!(out, "m 3\nm{a=\"b\"} 0.5\n");
    }

    #[test]
    fn io_render_emits_every_class_with_extra_labels() {
        let io = IoStatsSnapshot::default();
        let mut out = String::new();
        render_io_prometheus(&mut out, &io, "shard=\"1\"");
        assert!(out.contains("scavenger_io_read_bytes_total{class=\"wal\",shard=\"1\"} 0"));
        assert!(out.contains("class=\"gc-write\""));
        assert_eq!(
            out.lines().count(),
            4 * scavenger_env::io_stats::NUM_IO_CLASSES
        );
    }

    #[test]
    fn gc_stats_atomics_accumulate() {
        let g = GcStats::default();
        g.read_ns.fetch_add(10, Ordering::Relaxed);
        g.read_ns.fetch_add(5, Ordering::Relaxed);
        g.runs.fetch_add(1, Ordering::Relaxed);
        let s = g.snapshot();
        assert_eq!(s.read_ns, 15);
        assert_eq!(s.runs, 1);
    }
}
