//! The public engine facade: opens the index LSM-tree, value store, GC
//! runner, and throttle as one database.

use crate::dropcache::DropCache;
use crate::gc::{GcOutcome, GcRunner};
use crate::hook::{EngineHook, HookConfig};
use crate::options::{EngineMode, GcScheme, Options};
use crate::stats::{DbStats, GcStats, SpaceBreakdown};
use crate::throttle::{Throttle, MAX_THROTTLE_ROUNDS};
use crate::txn::TxnCounters;
use crate::view::{ReadOptions, ReadPin, ReadView, Snapshot, WriteOptions, WriteReceipt};
use crate::vstore::ValueStore;
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::usage::{SpaceTracker, UsageEnv};
use scavenger_lsm::filename::{parse_path, FileKind};
use scavenger_lsm::{Lsm, LsmReadResult, ValueEditBundle, WriteBatch};
use scavenger_table::btable::BlockCache;
use scavenger_util::ikey::{SeqNo, ValueRef, ValueType};
use scavenger_util::{Error, Result};
use std::sync::Arc;

/// One entry produced by a range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanEntry {
    /// User key.
    pub key: Vec<u8>,
    /// Value (resolved through the value store if separated).
    pub value: Bytes,
}

pub(crate) struct DbInner {
    opts: Options,
    lsm: Lsm,
    vstore: Arc<ValueStore>,
    dropcache: Arc<DropCache>,
    gc: Option<GcRunner>,
    gc_stats: Arc<GcStats>,
    /// Shared with sibling shards when opened through
    /// [`DbShards`](crate::DbShards), so limit + counters are global.
    throttle: Arc<Throttle>,
    /// Serializes GC jobs and exhausted-file reaping.
    gc_lock: Mutex<()>,
    /// Byte credits for paced auto-GC (see `Options::gc_bandwidth_factor`).
    gc_credits: Mutex<i64>,
    cache: Arc<BlockCache>,
    /// Optimistic-transaction commit/conflict counters.
    txn: TxnCounters,
    /// Incremental space-usage counter over this store's directory,
    /// maintained by a [`UsageEnv`] layer wrapped around the
    /// environment at open. `None` only when the opener installed its
    /// own `space_usage` source (a [`DbShards`](crate::DbShards) set
    /// sums per-shard trackers instead).
    space_tracker: Option<Arc<SpaceTracker>>,
}

impl DbInner {
    /// Resolve an index read result into the user value, fetching
    /// separated values through the value store.
    pub(crate) fn resolve_read(&self, key: &[u8], r: LsmReadResult) -> Result<Option<Bytes>> {
        match r {
            LsmReadResult::NotFound | LsmReadResult::Deleted => Ok(None),
            LsmReadResult::Found {
                vtype: ValueType::Value,
                value,
                ..
            } => Ok(Some(value)),
            LsmReadResult::Found {
                vtype: ValueType::ValueRef,
                seq,
                value,
            } => {
                let vref = ValueRef::decode(&value)?;
                Ok(Some(self.vstore.read_ref(key, seq, &vref)?))
            }
            LsmReadResult::Found {
                vtype: ValueType::Deletion,
                ..
            } => Err(Error::internal(
                "tombstone escaped the read path".to_string(),
            )),
        }
    }
}

/// A Scavenger database handle (cheaply cloneable).
#[derive(Clone)]
pub struct Db {
    inner: Arc<DbInner>,
}

impl Db {
    /// Open (or recover) a database.
    pub fn open(mut opts: Options) -> Result<Db> {
        // Meter this store's directory once at open, then keep the
        // usage current incrementally as the env layer sees appends,
        // deletes, and renames — space-aware admission (§III-D) reads
        // an atomic instead of walking O(files) per write. Skipped when
        // the opener brings its own usage source (shard sets install a
        // tracker-summing closure).
        let space_tracker = if opts.space_usage.is_none() {
            let (env, tracker) = UsageEnv::wrap(opts.env.clone(), &format!("{}/", opts.dir))?;
            opts.env = env;
            Some(tracker)
        } else {
            None
        };
        let cache = opts.block_cache.clone().unwrap_or_else(|| {
            Arc::new(BlockCache::with_capacity(opts.block_cache_bytes.max(4096)))
        });
        // A shared cache means sibling stores whose file numbers collide
        // (shards all allocate from 1): namespace this store's cache keys
        // so one shard can never serve another's cached blocks.
        let cache_ns = if opts.block_cache.is_some() {
            scavenger_table::cache::new_cache_namespace()
        } else {
            0
        };
        let vstore = Arc::new(
            ValueStore::new(opts.env.clone(), opts.dir.clone(), cache.clone())
                .with_cache_namespace(cache_ns),
        );
        let dropcache = Arc::new(DropCache::new(opts.dropcache_keys));
        let gc_stats = Arc::new(GcStats::default());

        let mut lsm_opts = opts.lsm_options();
        lsm_opts.block_cache = Some(cache.clone());
        lsm_opts.cache_namespace = cache_ns;
        let hook = if opts.features.separate {
            let h = Arc::new(EngineHook::new(
                HookConfig {
                    env: opts.env.clone(),
                    dir: opts.dir.clone(),
                    features: opts.features,
                    sep_threshold: opts.sep_threshold,
                    vsst_target: opts.vsst_target_size,
                    table_opts: lsm_opts.table_options(),
                },
                vstore.clone(),
                dropcache.clone(),
                gc_stats.clone(),
            ));
            lsm_opts.value_hook = Some(h.clone());
            Some(h)
        } else {
            None
        };

        let (lsm, replay) = Lsm::open(lsm_opts)?;

        // Restore the value store: manifest history first, then anything
        // committed during WAL recovery (buffered by the hook).
        let apply = |bundle: &ValueEditBundle| {
            let removed = vstore.apply_bundle(bundle);
            for (file, format) in removed {
                vstore.delete_file(file, format);
            }
        };
        for bundle in &replay {
            apply(bundle);
        }
        if let Some(h) = &hook {
            for bundle in h.go_live() {
                apply(&bundle);
            }
        }
        vstore.delete_orphans()?;

        let gc = if opts.features.separate {
            Some(GcRunner::new(
                opts.env.clone(),
                opts.dir.clone(),
                opts.features,
                crate::gc::GcConfig {
                    vsst_target: opts.vsst_target_size,
                    batch_files: opts.gc_batch_files,
                    validate_mode: opts.gc_validate_mode,
                    threads: opts.gc_threads,
                    // Auto resolves here, once, against the machine; the
                    // GC executor only ever sees a concrete setting.
                    pipeline: opts.gc_pipeline.resolved(),
                    pipeline_batch: opts.gc_pipeline_batch,
                },
                opts.lsm_options().table_options(),
                vstore.clone(),
                dropcache.clone(),
                gc_stats.clone(),
            ))
        } else {
            None
        };
        let throttle = opts
            .shared_throttle
            .clone()
            .unwrap_or_else(|| Arc::new(Throttle::new(opts.space_limit, opts.throttle_gc_factor)));

        Ok(Db {
            inner: Arc::new(DbInner {
                opts,
                lsm,
                vstore,
                dropcache,
                gc,
                gc_stats,
                throttle,
                gc_lock: Mutex::new(()),
                gc_credits: Mutex::new(0),
                cache,
                txn: TxnCounters::default(),
                space_tracker,
            }),
        })
    }

    // ---------------- writes ----------------

    /// Insert or overwrite a key (default [`WriteOptions`]).
    pub fn put(&self, key: impl AsRef<[u8]>, value: impl Into<Bytes>) -> Result<WriteReceipt> {
        self.put_with(&WriteOptions::default(), key, value)
    }

    /// Insert or overwrite a key with explicit options.
    pub fn put_with(
        &self,
        opts: &WriteOptions,
        key: impl AsRef<[u8]>,
        value: impl Into<Bytes>,
    ) -> Result<WriteReceipt> {
        let mut b = WriteBatch::new();
        b.put(key.as_ref(), value.into());
        self.write_with(opts, b)
    }

    /// Delete a key (default [`WriteOptions`]).
    pub fn delete(&self, key: impl AsRef<[u8]>) -> Result<WriteReceipt> {
        self.delete_with(&WriteOptions::default(), key)
    }

    /// Delete a key with explicit options.
    pub fn delete_with(&self, opts: &WriteOptions, key: impl AsRef<[u8]>) -> Result<WriteReceipt> {
        let mut b = WriteBatch::new();
        b.delete(key.as_ref());
        self.write_with(opts, b)
    }

    /// Apply a batch atomically (default [`WriteOptions`]).
    pub fn write(&self, batch: WriteBatch) -> Result<WriteReceipt> {
        self.write_with(&WriteOptions::default(), batch)
    }

    /// Apply a batch atomically with explicit options: `sync = false`
    /// skips the per-write WAL fsync, `disable_throttle = true` bypasses
    /// space-aware admission throttling. The returned [`WriteReceipt`]
    /// reports the batch's commit point, its group-commit company, and
    /// whether an fsync covered it.
    pub fn write_with(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<WriteReceipt> {
        if !opts.disable_throttle {
            self.enforce_space_limit()?;
        }
        let credit = (batch.byte_size() as f64 * self.inner.opts.gc_bandwidth_factor) as i64;
        let receipt = self.inner.lsm.write_opts(opts, batch)?;
        {
            let mut c = self.inner.gc_credits.lock();
            // Cap the accumulator so an idle period cannot bank unbounded
            // GC bandwidth.
            *c = (*c + credit).min(64 * 1024 * 1024);
        }
        self.post_write_maintenance()?;
        Ok(receipt)
    }

    /// Validate a transaction's read set under the LSM writer lock and,
    /// if every read is still current, commit its write buffer through
    /// the group-commit path. Backing for
    /// [`Transactional::txn_commit`](crate::Transactional).
    pub(crate) fn txn_commit_raw(
        &self,
        reads: &[(Vec<u8>, SeqNo)],
        batch: WriteBatch,
        opts: &WriteOptions,
    ) -> Result<WriteReceipt> {
        if !opts.disable_throttle {
            self.enforce_space_limit()?;
        }
        match self.inner.lsm.write_validated(opts, batch, reads) {
            Ok(receipt) => {
                self.inner.txn.committed();
                self.post_write_maintenance()?;
                Ok(receipt)
            }
            Err(e) => {
                if e.is_txn_conflict() {
                    self.inner.txn.conflicted();
                }
                Err(e)
            }
        }
    }

    /// The usage the throttle compares against the space limit: this
    /// engine's own footprint, unless the opener installed a shared
    /// source (a [`DbShards`](crate::DbShards) set sums every shard so
    /// one budget covers the whole store).
    fn throttled_usage(&self) -> u64 {
        if let Some(usage) = &self.inner.opts.space_usage {
            return usage();
        }
        if let Some(tracker) = &self.inner.space_tracker {
            return tracker.total();
        }
        self.space().total()
    }

    /// Bytes held only because something pins them: WAL history
    /// retained for registered change-stream subscribers, plus (under
    /// BlobDB's compaction-triggered scheme) exhausted value files
    /// whose reaping is deferred while a read point is live. Reclaiming
    /// cannot free these — the throttle discounts them when deciding
    /// whether stalling writers can still help.
    pub fn pinned_bytes(&self) -> u64 {
        let inner = &self.inner;
        let mut pinned = inner.lsm.change_log().pinned_bytes();
        if inner.opts.features.gc == GcScheme::CompactionTriggered
            && inner.lsm.oldest_read_point().is_some()
        {
            pinned += inner
                .vstore
                .all_files()
                .iter()
                .filter(|m| m.is_exhausted())
                .map(|m| m.size)
                .sum::<u64>();
        }
        pinned
    }

    /// Space-aware throttling (paper §III-D): before admitting a write,
    /// reclaim aggressively while over the limit.
    fn enforce_space_limit(&self) -> Result<()> {
        let inner = &self.inner;
        if inner.throttle.limit().is_none() {
            return Ok(());
        }
        if !inner.throttle.over_limit(self.throttled_usage()) {
            return Ok(());
        }
        // Discount pinned bytes (CDC-retained WAL history, read-point-
        // deferred blob files): reclamation cannot touch them, so when
        // the *reclaimable* footprint is under the limit, stalling
        // writers on GC rounds would burn I/O for nothing.
        if !inner
            .throttle
            .over_limit(self.throttled_usage().saturating_sub(self.pinned_bytes()))
        {
            return Ok(());
        }
        inner.throttle.note_activation();
        let aggressive = inner.throttle.aggressive_threshold(inner.opts.gc_threshold);
        for _ in 0..MAX_THROTTLE_ROUNDS {
            let reclaimable = self.throttled_usage().saturating_sub(self.pinned_bytes());
            if !inner.throttle.over_limit(reclaimable) {
                return Ok(());
            }
            let mut progressed = false;
            if let Some(gc) = &inner.gc {
                let _g = inner.gc_lock.lock();
                if gc.run_once(&inner.lsm, aggressive)?.is_some() {
                    inner
                        .throttle
                        .gc_rounds
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    progressed = true;
                }
            }
            self.reap_exhausted()?;
            if !progressed {
                // No GC candidate yet: force compaction to expose hidden
                // garbage, then try again.
                if inner.lsm.force_compact_once()? {
                    inner
                        .throttle
                        .forced_compactions
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    break;
                }
            }
        }
        if inner
            .throttle
            .over_limit(self.throttled_usage().saturating_sub(self.pinned_bytes()))
        {
            inner
                .throttle
                .unresolved
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(())
    }

    fn post_write_maintenance(&self) -> Result<()> {
        self.reap_exhausted()?;
        if self.inner.opts.auto_gc {
            self.run_paced_gc()?;
        }
        Ok(())
    }

    /// Auto-GC under the bandwidth budget: run jobs while candidates exist
    /// and credits remain, charging each job's GC read+write bytes.
    fn run_paced_gc(&self) -> Result<()> {
        let inner = &self.inner;
        let Some(gc) = &inner.gc else { return Ok(()) };
        loop {
            if *inner.gc_credits.lock() <= 0 {
                return Ok(());
            }
            let before = inner.opts.env.io_stats().snapshot();
            let ran = {
                let _g = inner.gc_lock.lock();
                gc.run_once(&inner.lsm, inner.opts.gc_threshold)?
            };
            if ran.is_none() {
                return Ok(());
            }
            let d = inner.opts.env.io_stats().snapshot().delta(&before);
            let cost = d.class(scavenger_env::IoClass::GcRead).read_bytes
                + d.class(scavenger_env::IoClass::GcWrite).write_bytes;
            *inner.gc_credits.lock() -= cost as i64;
        }
    }

    /// BlobDB reclamation: delete blob files whose every record has been
    /// exposed ("exhausted through compaction", §II-C).
    ///
    /// Deferred while *any* read point is registered: an in-flight view
    /// may hold a pre-relocation superversion whose index entries still
    /// address the exhausted file, and relocation happens inside
    /// compaction without advancing the sequence — so no sequence
    /// comparison can tell a safe reader from an endangered one. A
    /// reader registered after this check pins the current (post-
    /// relocation) superversion and is safe. Exhaustion is monotonic, so
    /// deferred files are reaped on a later quiet pass.
    fn reap_exhausted(&self) -> Result<()> {
        let inner = &self.inner;
        if inner.opts.features.gc != GcScheme::CompactionTriggered {
            return Ok(());
        }
        let _g = inner.gc_lock.lock();
        if inner.lsm.oldest_read_point().is_some() {
            return Ok(());
        }
        let exhausted = inner.vstore.exhausted_files();
        if exhausted.is_empty() {
            return Ok(());
        }
        let bundle = ValueEditBundle {
            deleted_files: exhausted,
            ..Default::default()
        };
        inner.lsm.apply_value_edit(bundle.clone())?;
        let removed = inner.vstore.apply_bundle(&bundle);
        for (file, format) in removed {
            inner.vstore.delete_file(file, format);
        }
        Ok(())
    }

    // ---------------- reads ----------------

    /// Latest value of `key`, or `None` if absent/deleted.
    ///
    /// Single-pass and strictly consistent: the read goes through a
    /// transient pinned [`ReadView`], so the index version it observes
    /// and the value it resolves belong to the same point in time even
    /// under concurrent flush/compaction/GC. (Earlier versions re-read
    /// the index up to three times to paper over values retired between
    /// the index lookup and the fetch.)
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        let key = key.as_ref();
        self.inner
            .lsm
            .get_resolved(key, |r| self.inner.resolve_read(key, r))
    }

    /// Value of `key` as seen by `opts`: through the pinned view or
    /// snapshot in [`ReadOptions::pin`] (latest otherwise), with
    /// per-call cache control. A sharded pin
    /// ([`ReadPin::ShardsView`] /
    /// [`ReadPin::ShardsSnapshot`]) is
    /// an error on a single-engine handle.
    pub fn get_with(&self, opts: &ReadOptions<'_>, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        let key = key.as_ref();
        match opts.pin {
            ReadPin::View(v) => v.get_opt(key, opts.fill_cache),
            ReadPin::Snapshot(s) => s.view().get_opt(key, opts.fill_cache),
            ReadPin::Latest => self.view().get_opt(key, opts.fill_cache),
            ReadPin::ShardsView(_) | ReadPin::ShardsSnapshot(_) => Err(Error::invalid_argument(
                "sharded pin passed to a single-engine read",
            )),
        }
    }

    /// Take a pinned, registered [`ReadView`] at the latest sequence.
    /// All reads through it are strictly consistent for its lifetime:
    /// writes, flushes, compactions, and GC committed after creation are
    /// invisible, and every version it can see stays resolvable.
    ///
    /// ```
    /// use scavenger::{Db, EngineMode, MemEnv, Options};
    ///
    /// let db = Db::open(Options::new(MemEnv::shared(), "view-demo", EngineMode::Scavenger)).unwrap();
    /// db.put(b"k", b"old".to_vec()).unwrap();
    /// let view = db.view();
    /// db.put(b"k", b"new".to_vec()).unwrap();
    /// // The view still reads its epoch; the latest read sees the update.
    /// assert_eq!(view.get(b"k").unwrap().unwrap().as_ref(), b"old");
    /// assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"new");
    /// ```
    pub fn view(&self) -> ReadView {
        ReadView {
            view: self.inner.lsm.view(),
            db: self.inner.clone(),
        }
    }

    /// Take a consistent snapshot: an RAII handle owning a registered
    /// view. Read through it with [`Snapshot::get`] / [`Snapshot::scan`];
    /// dropping it unregisters the sequence.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            view: ReadView {
                view: self.inner.lsm.snapshot_view(),
                db: self.inner.clone(),
            },
        }
    }

    /// Range scan over `[lo, hi)` (unbounded when `hi` is `None`),
    /// resolving separated values, through a transient pinned view (the
    /// iterator owns the pin).
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<DbScanIter> {
        self.view().scan(lo, hi)
    }

    /// Range scan as seen by `opts`: bounds come from
    /// [`lower_bound`](ReadOptions::lower_bound) /
    /// [`upper_bound`](ReadOptions::upper_bound), the read point from
    /// [`ReadOptions::pin`] (latest otherwise). A sharded pin is an
    /// error on a single-engine handle.
    pub fn scan_with(&self, opts: &ReadOptions<'_>) -> Result<DbScanIter> {
        let lo = opts.lower_bound.as_deref().unwrap_or(b"");
        let hi = opts.upper_bound.as_deref();
        match opts.pin {
            ReadPin::View(v) => v.scan_opt(lo, hi, opts.fill_cache),
            ReadPin::Snapshot(s) => s.view().scan_opt(lo, hi, opts.fill_cache),
            ReadPin::Latest => self.view().scan_opt(lo, hi, opts.fill_cache),
            ReadPin::ShardsView(_) | ReadPin::ShardsSnapshot(_) => Err(Error::invalid_argument(
                "sharded pin passed to a single-engine scan",
            )),
        }
    }

    // ---------------- maintenance ----------------

    /// Flush the memtable and drain background work.
    pub fn flush(&self) -> Result<()> {
        self.inner.lsm.flush()?;
        self.post_write_maintenance()
    }

    /// Compact until every level score is under 1.
    pub fn compact_all(&self) -> Result<()> {
        self.inner.lsm.compact_until_stable()?;
        self.post_write_maintenance()
    }

    /// Run one GC job at the configured threshold.
    pub fn run_gc(&self) -> Result<Option<GcOutcome>> {
        self.run_gc_at(self.inner.opts.gc_threshold)
    }

    /// Run one GC job at an explicit threshold.
    pub fn run_gc_at(&self, threshold: f64) -> Result<Option<GcOutcome>> {
        let inner = &self.inner;
        match &inner.gc {
            Some(gc) => {
                let _g = inner.gc_lock.lock();
                gc.run_once(&inner.lsm, threshold)
            }
            None => Ok(None),
        }
    }

    /// Dry-run the GC-Lookup validation phase over one value file without
    /// moving data: reports how many of its records are still live.
    /// `mode` overrides the configured [`crate::GcValidateMode`] (useful
    /// for diagnostics and benchmarking the modes against each other).
    pub fn gc_validate_file(
        &self,
        file: u64,
        mode: Option<crate::GcValidateMode>,
    ) -> Result<crate::GcValidationReport> {
        let inner = &self.inner;
        match &inner.gc {
            Some(gc) => {
                let _g = inner.gc_lock.lock();
                gc.validate_file(&inner.lsm, file, mode)
            }
            None => Err(Error::internal(
                "engine mode has no value separation to validate".to_string(),
            )),
        }
    }

    /// Run GC jobs until no candidate crosses the threshold.
    pub fn run_gc_until_clean(&self) -> Result<usize> {
        let mut jobs = 0;
        while self.run_gc()?.is_some() {
            jobs += 1;
            if jobs > 1024 {
                return Err(Error::internal("runaway GC loop"));
            }
        }
        Ok(jobs)
    }

    /// Recover from read-only degraded mode after a permanent background
    /// failure: re-verify (and if needed rewrite) the manifest, delete
    /// orphan value files left behind by a crashed GC write stage, clear
    /// the stored background error, and re-enable writes. Returns an
    /// error — leaving the engine degraded — if verification fails.
    pub fn resume(&self) -> Result<()> {
        self.inner.lsm.resume()?;
        self.inner.vstore.delete_orphans()?;
        Ok(())
    }

    /// True while the engine is in read-only degraded mode (writes fail
    /// fast with [`Error::ReadOnlyMode`]; see [`Db::resume`]).
    pub fn is_degraded(&self) -> bool {
        self.inner.lsm.is_degraded()
    }

    /// The background error that degraded the engine, if any.
    pub fn background_error(&self) -> Option<Error> {
        self.inner.lsm.background_error()
    }

    // ---------------- introspection ----------------

    /// The engine options.
    pub fn options(&self) -> &Options {
        &self.inner.opts
    }

    /// The engine mode.
    pub fn mode(&self) -> EngineMode {
        self.inner.opts.mode
    }

    /// On-disk space breakdown.
    pub fn space(&self) -> SpaceBreakdown {
        let inner = &self.inner;
        let mut s = SpaceBreakdown::default();
        let prefix = format!("{}/", inner.opts.dir);
        if let Ok(files) = inner.opts.env.list_prefix(&prefix) {
            for p in files {
                let size = inner.opts.env.file_size(&p).unwrap_or(0);
                match parse_path(&inner.opts.dir, &p) {
                    Some((FileKind::Table, _)) => s.ksst_bytes += size,
                    Some((FileKind::ValueTable | FileKind::BlobLog, _)) => s.value_bytes += size,
                    Some((FileKind::Wal, _)) => s.wal_bytes += size,
                    Some((FileKind::Manifest | FileKind::Current, _)) => s.manifest_bytes += size,
                    None => s.other_bytes += size,
                }
            }
        }
        s
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> DbStats {
        let inner = &self.inner;
        let version = inner.lsm.current_version();
        let counters = inner.lsm.counters();
        let (pinned_views, live_snapshots) = inner.lsm.read_point_counts();
        let cdc = inner.lsm.change_log().stats();
        DbStats {
            io: inner.opts.env.io_stats().snapshot(),
            gc: inner.gc_stats.snapshot(),
            space: self.space(),
            index_space_amp: version.index_space_amp(),
            exposed_garbage_bytes: inner.vstore.total_exposed_bytes(),
            value_store_bytes: inner.vstore.total_bytes(),
            value_files: inner.vstore.all_files().len() as u64,
            cache_hit_ratio: inner.cache.hit_ratio(),
            flushes: counters.flushes.load(std::sync::atomic::Ordering::Relaxed),
            compactions: counters
                .compactions
                .load(std::sync::atomic::Ordering::Relaxed),
            merge_drops: counters
                .merge_drops
                .load(std::sync::atomic::Ordering::Relaxed),
            throttle_stalls: inner.throttle.activation_count(),
            oldest_read_point: inner.lsm.oldest_read_point(),
            pinned_views: pinned_views as u64,
            live_snapshots: live_snapshots as u64,
            bg_errors: counters
                .bg_errors
                .load(std::sync::atomic::Ordering::Relaxed),
            bg_retries: counters
                .bg_retries
                .load(std::sync::atomic::Ordering::Relaxed),
            degraded: inner.lsm.is_degraded(),
            wal_tail_corruptions: counters
                .wal_tail_corruptions
                .load(std::sync::atomic::Ordering::Relaxed),
            group_commit_groups: counters
                .group_commit_groups
                .load(std::sync::atomic::Ordering::Relaxed),
            group_commit_batches: counters
                .group_commit_batches
                .load(std::sync::atomic::Ordering::Relaxed),
            group_commit_max_group: counters
                .group_commit_max_group
                .load(std::sync::atomic::Ordering::Relaxed),
            group_commit_fsyncs_saved: counters
                .group_commit_fsyncs_saved
                .load(std::sync::atomic::Ordering::Relaxed),
            txn_commits: inner.txn.commits(),
            txn_conflicts: inner.txn.conflicts(),
            // Single-handle stores never touch the 2PC coordinator.
            txn_2pc_commits: 0,
            txn_2pc_rollforwards: 0,
            cdc_events_published: cdc.events_published,
            cdc_subscribers: cdc.subscribers,
            cdc_retained_wal_bytes: cdc.retained_wal_bytes,
            cdc_lag_seqs: cdc.lag_seqs,
            cdc_catchup_reads: cdc.catchup_reads,
            pinned_bytes: self.pinned_bytes(),
        }
    }

    /// The underlying index LSM-tree (exposed for experiments/tests).
    pub fn lsm(&self) -> &Lsm {
        &self.inner.lsm
    }

    /// The value store (exposed for experiments/tests).
    pub fn value_store(&self) -> &Arc<ValueStore> {
        &self.inner.vstore
    }

    /// The DropCache (exposed for experiments/tests).
    pub fn drop_cache(&self) -> &Arc<DropCache> {
        &self.inner.dropcache
    }
}

/// Scan iterator resolving separated values. Carries the pinned view it
/// was opened from (when opened through the view API), so both index
/// entries and their separated values stay resolvable for the whole
/// scan.
///
/// Implements [`Iterator`] over `Result<ScanEntry>`, so the whole
/// adapter toolbox applies (`take`, `map`, `collect::<Result<Vec<_>>>`).
/// After yielding an error the iterator is *fused*: every subsequent
/// `next` returns `None` — a scan cannot resume past a failed resolve.
/// [`next_entry`](DbScanIter::next_entry) and
/// [`collect_n`](DbScanIter::collect_n) are thin wrappers over the
/// `Iterator` impl.
pub struct DbScanIter {
    inner: scavenger_lsm::ScanIter,
    db: Arc<DbInner>,
    done: bool,
}

impl DbScanIter {
    pub(crate) fn new(inner: scavenger_lsm::ScanIter, db: Arc<DbInner>) -> DbScanIter {
        DbScanIter {
            inner,
            db,
            done: false,
        }
    }

    /// Advance the underlying index iterator and resolve the entry's
    /// value through the value store.
    fn resolve_next(&mut self) -> Result<Option<ScanEntry>> {
        match self.inner.next_entry()? {
            Some(e) => {
                let value = match e.vtype {
                    ValueType::Value => e.value,
                    ValueType::ValueRef => {
                        let vref = ValueRef::decode(&e.value)?;
                        self.db.vstore.read_ref(&e.user_key, e.seq, &vref)?
                    }
                    ValueType::Deletion => return Err(Error::internal("tombstone in scan output")),
                };
                Ok(Some(ScanEntry {
                    key: e.user_key,
                    value,
                }))
            }
            None => Ok(None),
        }
    }

    /// Next entry, or `None` at the end of the range (thin wrapper over
    /// the [`Iterator`] impl).
    pub fn next_entry(&mut self) -> Result<Option<ScanEntry>> {
        self.next().transpose()
    }

    /// Collect up to `limit` entries (thin wrapper over the [`Iterator`]
    /// impl).
    pub fn collect_n(&mut self, limit: usize) -> Result<Vec<ScanEntry>> {
        self.by_ref().take(limit).collect()
    }
}

impl Iterator for DbScanIter {
    type Item = Result<ScanEntry>;

    fn next(&mut self) -> Option<Result<ScanEntry>> {
        if self.done {
            return None;
        }
        let pulled = self.resolve_next();
        scavenger_util::iter::fuse(&mut self.done, pulled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;

    fn small_opts(mode: EngineMode) -> Options {
        let mut o = Options::new(MemEnv::shared(), "db", mode);
        o.memtable_size = 8 * 1024;
        o.vsst_target_size = 32 * 1024;
        o.base_level_bytes = 64 * 1024;
        o.ksst_target_size = 16 * 1024;
        o.block_cache_bytes = 256 * 1024;
        o
    }

    fn value(i: usize, len: usize) -> Vec<u8> {
        let mut v = vec![(i % 251) as u8; len];
        v[0] = (i >> 8) as u8;
        v
    }

    #[test]
    fn roundtrip_small_and_large_all_modes() {
        for mode in EngineMode::ALL {
            let db = Db::open(small_opts(mode)).unwrap();
            // Small values stay inline; large get separated (except Rocks).
            for i in 0..50 {
                db.put(format!("small{i:03}"), value(i, 100)).unwrap();
                db.put(format!("large{i:03}"), value(i, 2048)).unwrap();
            }
            db.flush().unwrap();
            for i in 0..50 {
                assert_eq!(
                    db.get(format!("small{i:03}")).unwrap().unwrap(),
                    Bytes::from(value(i, 100)),
                    "{mode:?} small{i}"
                );
                assert_eq!(
                    db.get(format!("large{i:03}")).unwrap().unwrap(),
                    Bytes::from(value(i, 2048)),
                    "{mode:?} large{i}"
                );
            }
            assert!(db.get("absent").unwrap().is_none());
            // Separated modes must have created value files.
            let has_vfiles = !db.value_store().all_files().is_empty();
            assert_eq!(has_vfiles, mode != EngineMode::Rocks, "{mode:?}");
        }
    }

    #[test]
    fn deletes_and_overwrites_resolve_correctly() {
        for mode in EngineMode::ALL {
            let db = Db::open(small_opts(mode)).unwrap();
            db.put("k", value(1, 4096)).unwrap();
            db.put("k", value(2, 4096)).unwrap();
            db.flush().unwrap();
            assert_eq!(db.get("k").unwrap().unwrap(), Bytes::from(value(2, 4096)));
            db.delete("k").unwrap();
            assert!(db.get("k").unwrap().is_none(), "{mode:?}");
            db.flush().unwrap();
            assert!(db.get("k").unwrap().is_none(), "{mode:?} after flush");
        }
    }

    #[test]
    fn scan_resolves_separated_values_in_order() {
        for mode in [EngineMode::Scavenger, EngineMode::Terark, EngineMode::Titan] {
            let db = Db::open(small_opts(mode)).unwrap();
            for i in 0..40 {
                db.put(format!("key{i:03}"), value(i, 1500)).unwrap();
            }
            db.flush().unwrap();
            let mut it = db.scan(b"key010", Some(b"key020")).unwrap();
            let entries = it.collect_n(usize::MAX).unwrap();
            assert_eq!(entries.len(), 10, "{mode:?}");
            for (j, e) in entries.iter().enumerate() {
                assert_eq!(e.key, format!("key{:03}", j + 10).into_bytes());
                assert_eq!(e.value, Bytes::from(value(j + 10, 1500)));
            }
        }
    }

    #[test]
    fn updates_generate_garbage_and_gc_reclaims() {
        for mode in [EngineMode::Scavenger, EngineMode::Terark] {
            let mut o = small_opts(mode);
            o.auto_gc = false; // drive GC manually
            let db = Db::open(o).unwrap();
            // Load then update everything several times.
            for round in 0..4 {
                for i in 0..60 {
                    db.put(format!("key{i:03}"), value(round * 100 + i, 2048))
                        .unwrap();
                }
                db.flush().unwrap();
            }
            db.compact_all().unwrap();
            let before = db.stats();
            assert!(
                before.exposed_garbage_bytes > 0,
                "{mode:?}: compaction must expose garbage"
            );
            let jobs = db.run_gc_until_clean().unwrap();
            assert!(jobs > 0, "{mode:?}: GC should run");
            let after = db.stats();
            assert!(
                after.space.value_bytes < before.space.value_bytes,
                "{mode:?}: GC must shrink the value store ({} -> {})",
                before.space.value_bytes,
                after.space.value_bytes
            );
            // All data still readable after GC (refs resolve through
            // inheritance).
            for i in 0..60 {
                assert_eq!(
                    db.get(format!("key{i:03}")).unwrap().unwrap(),
                    Bytes::from(value(300 + i, 2048)),
                    "{mode:?} key{i} after GC"
                );
            }
        }
    }

    #[test]
    fn titan_gc_rewrites_index_entries() {
        let mut o = small_opts(EngineMode::Titan);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for round in 0..4 {
            for i in 0..40 {
                db.put(format!("key{i:03}"), value(round * 64 + i, 2048))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        let jobs = db.run_gc_until_clean().unwrap();
        assert!(jobs > 0);
        let gc = db.stats().gc;
        assert!(gc.write_index_ns > 0, "Titan pays the Write-Index step");
        for i in 0..40 {
            assert_eq!(
                db.get(format!("key{i:03}")).unwrap().unwrap(),
                Bytes::from(value(192 + i, 2048))
            );
        }
    }

    #[test]
    fn blobdb_reclaims_only_exhausted_files() {
        let mut o = small_opts(EngineMode::BlobDb);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for round in 0..6 {
            for i in 0..40 {
                db.put(format!("key{i:03}"), value(round * 64 + i, 2048))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        // Standalone GC does nothing in BlobDB mode.
        assert!(db.run_gc().unwrap().is_none());
        db.compact_all().unwrap();
        for i in 0..40 {
            assert_eq!(
                db.get(format!("key{i:03}")).unwrap().unwrap(),
                Bytes::from(value(320 + i, 2048))
            );
        }
    }

    #[test]
    fn scavenger_gc_does_lazy_read() {
        let mut o = small_opts(EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for round in 0..4 {
            for i in 0..50 {
                db.put(format!("key{i:03}"), value(round + i, 4096))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();

        let io_before = db.options().env.io_stats().snapshot();
        let outcome = db.run_gc().unwrap();
        let io_after = db.options().env.io_stats().snapshot();
        if let Some(out) = outcome {
            assert!(out.files_collected > 0);
            let d = io_after.delta(&io_before);
            let gc_read = d.class(scavenger_env::IoClass::GcRead).read_bytes;
            // Lazy read: GC read bytes must be far below the bytes of the
            // collected files (which are mostly garbage values we skip).
            assert!(gc_read > 0);
            assert!(
                gc_read < out.bytes_reclaimed + out.records_rewritten * 4096,
                "gc_read {gc_read} should not re-read entire files"
            );
        }
    }

    #[test]
    fn space_limit_throttles_and_reclaims() {
        let mut o = small_opts(EngineMode::Scavenger);
        o.auto_gc = false; // force the throttle to do the reclamation
        o.space_limit = Some(600 * 1024); // ~600 KiB quota
        let db = Db::open(o).unwrap();
        // Write ~1.5 MiB of updates over a small key set: garbage galore.
        for round in 0..16 {
            for i in 0..48 {
                db.put(format!("key{i:02}"), value(round + i, 2048))
                    .unwrap();
            }
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert!(stats.throttle_stalls > 0, "throttle must have activated");
        // All data remains correct under throttling.
        for i in 0..48 {
            assert_eq!(
                db.get(format!("key{i:02}")).unwrap().unwrap(),
                Bytes::from(value(15 + i, 2048))
            );
        }
        // Space should be near the quota (allow transient overshoot of one
        // memtable + one vSST).
        let total = db.space().total();
        assert!(
            total < (600 + 512) * 1024,
            "space {total} should be pulled back toward the 600 KiB quota"
        );
    }

    #[test]
    fn stats_report_space_breakdown() {
        let db = Db::open(small_opts(EngineMode::Scavenger)).unwrap();
        for i in 0..80 {
            db.put(format!("key{i:03}"), value(i, 3000)).unwrap();
        }
        db.flush().unwrap();
        let s = db.stats();
        assert!(s.space.ksst_bytes > 0, "index files exist");
        assert!(s.space.value_bytes > 0, "value files exist");
        assert!(s.space.manifest_bytes > 0);
        assert!(s.space.total() >= s.space.ksst_bytes + s.space.value_bytes);
        assert!(s.index_space_amp >= 1.0);
        assert!(s.value_files > 0);
    }

    #[test]
    fn recovery_restores_separated_values() {
        let env = MemEnv::shared();
        for mode in [EngineMode::Scavenger, EngineMode::Terark, EngineMode::Titan] {
            let dir = format!("db-{mode:?}");
            {
                let mut o = small_opts(mode);
                o.env = env.clone();
                o.dir = dir.clone();
                let db = Db::open(o).unwrap();
                for i in 0..60 {
                    db.put(format!("key{i:03}"), value(i, 2048)).unwrap();
                }
                db.flush().unwrap();
                // A few unflushed writes live only in the WAL.
                for i in 0..10 {
                    db.put(format!("fresh{i:02}"), value(i, 2048)).unwrap();
                }
            }
            {
                let mut o = small_opts(mode);
                o.env = env.clone();
                o.dir = dir.clone();
                let db = Db::open(o).unwrap();
                for i in 0..60 {
                    assert_eq!(
                        db.get(format!("key{i:03}")).unwrap().unwrap(),
                        Bytes::from(value(i, 2048)),
                        "{mode:?} key{i}"
                    );
                }
                for i in 0..10 {
                    assert_eq!(
                        db.get(format!("fresh{i:02}")).unwrap().unwrap(),
                        Bytes::from(value(i, 2048)),
                        "{mode:?} fresh{i}"
                    );
                }
            }
        }
    }

    #[test]
    fn recovery_after_gc_preserves_inheritance() {
        let env = MemEnv::shared();
        {
            let mut o = small_opts(EngineMode::Scavenger);
            o.env = env.clone();
            o.auto_gc = false;
            let db = Db::open(o).unwrap();
            for round in 0..4 {
                for i in 0..50 {
                    db.put(format!("key{i:03}"), value(round + i, 2048))
                        .unwrap();
                }
                db.flush().unwrap();
            }
            db.compact_all().unwrap();
            db.run_gc_until_clean().unwrap();
        }
        {
            let mut o = small_opts(EngineMode::Scavenger);
            o.env = env.clone();
            let db = Db::open(o).unwrap();
            for i in 0..50 {
                assert_eq!(
                    db.get(format!("key{i:03}")).unwrap().unwrap(),
                    Bytes::from(value(3 + i, 2048)),
                    "key{i} readable after GC + reopen"
                );
            }
        }
    }

    #[test]
    fn snapshot_survives_gc_in_no_writeback_modes() {
        let mut o = small_opts(EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        db.put("k", value(1, 4096)).unwrap();
        db.flush().unwrap();
        let snap = db.snapshot();
        // Overwrite enough to make the old vSST collectible.
        for round in 0..4 {
            db.put("k", value(100 + round, 4096)).unwrap();
            for i in 0..30 {
                db.put(format!("fill{i:02}"), value(i, 2048)).unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        db.run_gc_until_clean().unwrap();
        // The snapshot's version was rewritten by GC but must remain
        // reachable through inheritance.
        assert_eq!(
            db.get_with(&crate::view::ReadOptions::pinned(&snap), "k")
                .unwrap()
                .unwrap(),
            Bytes::from(value(1, 4096))
        );
        assert_eq!(db.get("k").unwrap().unwrap(), Bytes::from(value(103, 4096)));
        drop(snap);
    }

    #[test]
    fn hot_cold_separation_marks_files() {
        let mut o = small_opts(EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        // Hot keys: overwritten repeatedly; cold keys written once.
        for i in 0..20 {
            db.put(format!("cold{i:02}"), value(i, 2048)).unwrap();
        }
        for round in 0..6 {
            for i in 0..8 {
                db.put(format!("hot{i:02}"), value(round * 10 + i, 2048))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        db.flush().unwrap();
        // After drops have been observed, hot keys should be in the cache.
        let hot_in_cache = (0..8)
            .filter(|i| db.drop_cache().contains(format!("hot{i:02}").as_bytes()))
            .count();
        assert!(hot_in_cache >= 6, "hot keys detected: {hot_in_cache}/8");
        // And subsequent flushes should produce hot-marked files.
        for round in 0..2 {
            for i in 0..8 {
                db.put(format!("hot{i:02}"), value(round * 7 + i, 2048))
                    .unwrap();
            }
        }
        db.flush().unwrap();
        let any_hot = db.value_store().all_files().iter().any(|m| m.hot);
        assert!(any_hot, "hot vSSTs should exist");
    }

    #[test]
    fn rocks_mode_never_creates_value_files() {
        let db = Db::open(small_opts(EngineMode::Rocks)).unwrap();
        for i in 0..100 {
            db.put(format!("key{i:03}"), value(i, 8192)).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        assert!(db.value_store().all_files().is_empty());
        assert_eq!(db.space().value_bytes, 0);
        assert!(db.run_gc().unwrap().is_none());
        for i in (0..100).step_by(7) {
            assert_eq!(
                db.get(format!("key{i:03}")).unwrap().unwrap(),
                Bytes::from(value(i, 8192))
            );
        }
    }
}
