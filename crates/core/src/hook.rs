//! The engine's [`ValueHook`]: KV separation at flush, hot/cold routing,
//! garbage exposure from compaction drops, and BlobDB-style relocation.
//!
//! One hook serves every separated mode; feature flags select behaviour:
//!
//! * **Flush sessions** move values ≥ `sep_threshold` into value files
//!   (vSSTs or blob logs), replacing them with references. With hotness
//!   enabled (§III-B3), keys found in the DropCache go to *hot* files,
//!   everything else to *cold* files.
//! * **Drop observation** (every session): a dropped `ValueRef` means its
//!   value just became *exposed garbage* (§II-D) — the session accumulates
//!   the charge; a dropped key is recorded in the DropCache as a hot-write
//!   signal.
//! * **Compaction sessions** in BlobDB mode relocate values whose blob
//!   file falls in the oldest [`BLOBDB_AGE_CUTOFF`] fraction — BlobDB's
//!   compaction-coupled GC (§II-C), which is exactly what delays space
//!   reclamation in that baseline.

use crate::dropcache::DropCache;
use crate::options::{Features, GcScheme};
use crate::stats::GcStats;
use crate::vstore::vtable::{VWriter, WrittenRecord};
use crate::vstore::{new_value_file_record, ValueStore};
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::{EnvRef, IoClass};
use scavenger_lsm::{DropCause, FileNumAlloc, JobKind, ValueEditBundle, ValueHook, ValueSession};
use scavenger_table::btable::TableOptions;
use scavenger_table::KeyCmp;
use scavenger_util::ikey::{SeqNo, ValueRef, ValueType};
use scavenger_util::Result;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fraction of oldest blob files eligible for relocation during
/// compaction (RocksDB BlobDB's `blob_garbage_collection_age_cutoff`).
pub const BLOBDB_AGE_CUTOFF: f64 = 0.25;

/// Of the eligible entries, the fraction actually relocated per
/// compaction pass. At production scale a compaction covers only a slice
/// of each blob file's key range; this sampling reproduces that partial
/// draining at laptop scale (a file needs several compaction passes
/// before it exhausts — the delayed reclamation of paper §II-C).
pub const BLOBDB_RELOCATION_SAMPLE: u64 = 4;

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ceb9fe1a85ec53);
    x ^ (x >> 33)
}

/// Shared configuration for hook sessions.
pub struct HookConfig {
    /// Environment.
    pub env: EnvRef,
    /// Directory prefix.
    pub dir: String,
    /// Feature set.
    pub features: Features,
    /// Separation threshold in bytes.
    pub sep_threshold: usize,
    /// Target value-file size.
    pub vsst_target: u64,
    /// Table options for value tables.
    pub table_opts: TableOptions,
}

/// The engine hook (see module docs).
pub struct EngineHook {
    cfg: HookConfig,
    vstore: Arc<ValueStore>,
    dropcache: Arc<DropCache>,
    gc_stats: Arc<GcStats>,
    /// `Some(buffer)` while the engine is replaying its manifest: bundles
    /// committed during WAL recovery are buffered and applied (in order)
    /// after the historical state is restored.
    replay_buffer: Mutex<Option<Vec<ValueEditBundle>>>,
    /// Rotating salt so each compaction session relocates a different
    /// sample of eligible blob entries.
    session_counter: AtomicU64,
}

impl EngineHook {
    /// Create a hook in *replay* phase.
    pub fn new(
        cfg: HookConfig,
        vstore: Arc<ValueStore>,
        dropcache: Arc<DropCache>,
        gc_stats: Arc<GcStats>,
    ) -> Self {
        EngineHook {
            cfg,
            vstore,
            dropcache,
            gc_stats,
            replay_buffer: Mutex::new(Some(Vec::new())),
            session_counter: AtomicU64::new(0),
        }
    }

    /// Leave replay phase, returning bundles committed during recovery.
    pub fn go_live(&self) -> Vec<ValueEditBundle> {
        self.replay_buffer.lock().take().unwrap_or_default()
    }

    fn value_table_opts(&self) -> TableOptions {
        TableOptions {
            cmp: KeyCmp::Internal,
            ..self.cfg.table_opts.clone()
        }
    }
}

impl ValueHook for EngineHook {
    fn session(
        &self,
        kind: JobKind,
        alloc: Arc<dyn FileNumAlloc>,
    ) -> Result<Box<dyn ValueSession>> {
        // BlobDB relocation targets: the oldest 25% of live blob files,
        // frozen at session start.
        let relocation_targets = if self.cfg.features.gc == GcScheme::CompactionTriggered
            && matches!(kind, JobKind::Compaction { .. })
        {
            let mut files = self.vstore.live_file_numbers();
            files.sort_unstable();
            let n = ((files.len() as f64) * BLOBDB_AGE_CUTOFF).ceil() as usize;
            files.into_iter().take(n).collect()
        } else {
            HashSet::new()
        };
        let salt = self.session_counter.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(SeparationSession {
            relocation_salt: salt,
            env: self.cfg.env.clone(),
            dir: self.cfg.dir.clone(),
            features: self.cfg.features,
            sep_threshold: self.cfg.sep_threshold,
            vsst_target: self.cfg.vsst_target,
            table_opts: self.value_table_opts(),
            kind,
            alloc,
            vstore: self.vstore.clone(),
            dropcache: self.dropcache.clone(),
            gc_stats: self.gc_stats.clone(),
            writers: [None, None],
            outputs: Vec::new(),
            garbage: HashMap::new(),
            relocation_targets,
            relocation_readers: HashMap::new(),
        }))
    }

    fn on_committed(&self, bundle: &ValueEditBundle) {
        {
            let mut buf = self.replay_buffer.lock();
            if let Some(b) = buf.as_mut() {
                b.push(bundle.clone());
                return;
            }
        }
        let removed = self.vstore.apply_bundle(bundle);
        for (file, format) in removed {
            self.vstore.delete_file(file, format);
        }
    }
}

const COLD: usize = 0;
const HOT: usize = 1;

struct SeparationSession {
    relocation_salt: u64,
    env: EnvRef,
    dir: String,
    features: Features,
    sep_threshold: usize,
    vsst_target: u64,
    table_opts: TableOptions,
    kind: JobKind,
    alloc: Arc<dyn FileNumAlloc>,
    vstore: Arc<ValueStore>,
    dropcache: Arc<DropCache>,
    gc_stats: Arc<GcStats>,
    /// Open writers: `[cold, hot]`.
    writers: [Option<(u64, VWriter)>; 2],
    outputs: Vec<scavenger_lsm::NewValueFile>,
    /// file → (bytes, entries) exposed by drops in this job.
    garbage: HashMap<u64, (u64, u64)>,
    relocation_targets: HashSet<u64>,
    relocation_readers: HashMap<u64, crate::vstore::vtable::VReader>,
}

impl SeparationSession {
    fn io_class(&self) -> IoClass {
        match self.kind {
            JobKind::Flush => IoClass::Flush,
            JobKind::Compaction { .. } => IoClass::GcWrite,
        }
    }

    fn write_value(
        &mut self,
        route: usize,
        user_key: &[u8],
        seq: SeqNo,
        value: &[u8],
    ) -> Result<(u64, WrittenRecord)> {
        if self.writers[route].is_none() {
            let file = self.alloc.next_file_number();
            let w = VWriter::create(
                &self.env,
                &self.dir,
                file,
                self.features.vformat,
                self.table_opts.clone(),
                self.io_class(),
            )?;
            self.writers[route] = Some((file, w));
        }
        let (file, w) = self.writers[route].as_mut().unwrap();
        let rec = w.add(user_key, seq, value)?;
        let file = *file;
        if w.estimated_size() >= self.vsst_target {
            self.roll(route)?;
        }
        Ok((file, rec))
    }

    fn roll(&mut self, route: usize) -> Result<()> {
        if let Some((file, w)) = self.writers[route].take() {
            if w.num_entries() == 0 {
                let _ = self.env.remove_file(&crate::vstore::vtable::vfile_path(
                    &self.dir,
                    file,
                    self.features.vformat,
                ));
                return Ok(());
            }
            let info = w.finish()?;
            self.outputs.push(new_value_file_record(
                file,
                info,
                route == HOT,
                self.features.vformat,
            ));
        }
        Ok(())
    }

    fn charge_garbage(&mut self, vref: &ValueRef) {
        // Attribute to the live holder if resolvable now; the apply-side
        // fallback re-resolves if this file dies before commit.
        let target = if self.vstore.meta(vref.file).is_some() {
            vref.file
        } else {
            self.vstore
                .resolve_leaves(vref.file)
                .into_iter()
                .find(|f| self.vstore.meta(*f).is_some())
                .unwrap_or(vref.file)
        };
        let e = self.garbage.entry(target).or_insert((0, 0));
        e.0 += u64::from(vref.size);
        e.1 += 1;
    }
}

impl ValueSession for SeparationSession {
    fn entry(
        &mut self,
        user_key: &[u8],
        seq: SeqNo,
        vtype: ValueType,
        value: Bytes,
    ) -> Result<(ValueType, Bytes)> {
        match vtype {
            ValueType::Value
                if self.features.separate
                    && self.kind == JobKind::Flush
                    && value.len() >= self.sep_threshold =>
            {
                let route = if self.features.hotness && self.dropcache.contains(user_key) {
                    HOT
                } else {
                    COLD
                };
                let (file, rec) = self.write_value(route, user_key, seq, &value)?;
                let vref = ValueRef {
                    file,
                    size: rec.size,
                    offset: rec.offset,
                };
                Ok((ValueType::ValueRef, Bytes::from(vref.encode())))
            }
            ValueType::ValueRef
                if self.features.gc == GcScheme::CompactionTriggered
                    && matches!(self.kind, JobKind::Compaction { .. }) =>
            {
                let old = ValueRef::decode(&value)?;
                if !self.relocation_targets.contains(&old.file)
                    || self.vstore.meta(old.file).is_none()
                {
                    return Ok((vtype, value));
                }
                // Partial draining: relocate only this session's sample.
                let h = mix64(
                    scavenger_table::filter::bloom_hash(user_key) as u64
                        ^ self.relocation_salt.wrapping_mul(0x9e3779b97f4a7c15),
                );
                if !h.is_multiple_of(BLOBDB_RELOCATION_SAMPLE) {
                    return Ok((vtype, value));
                }
                // Relocate: read the old value (GC read), append to a new
                // blob (GC write), expose the old slot as garbage.
                let t0 = Instant::now();
                if !self.relocation_readers.contains_key(&old.file) {
                    self.relocation_readers
                        .insert(old.file, self.vstore.gc_reader(old.file)?);
                }
                let old_value = self.relocation_readers[&old.file].read_at(old.offset, old.size)?;
                self.gc_stats
                    .read_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let t1 = Instant::now();
                let (file, rec) = self.write_value(COLD, user_key, seq, &old_value)?;
                self.gc_stats
                    .write_ns
                    .fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.charge_garbage(&old);
                let vref = ValueRef {
                    file,
                    size: rec.size,
                    offset: rec.offset,
                };
                Ok((ValueType::ValueRef, Bytes::from(vref.encode())))
            }
            _ => Ok((vtype, value)),
        }
    }

    fn drop_entry(
        &mut self,
        user_key: &[u8],
        _seq: SeqNo,
        vtype: ValueType,
        value: &[u8],
        cause: DropCause,
    ) {
        if matches!(cause, DropCause::Shadowed | DropCause::Tombstoned) && self.features.hotness {
            self.dropcache.insert(user_key);
        }
        if vtype == ValueType::ValueRef {
            if let Ok(vref) = ValueRef::decode(value) {
                self.charge_garbage(&vref);
            }
        }
    }

    fn finish(mut self: Box<Self>) -> Result<ValueEditBundle> {
        self.roll(COLD)?;
        self.roll(HOT)?;
        // Deterministic bundle: `HashMap` drain order would reshuffle the
        // manifest record (and every downstream charge order) per run.
        let mut garbage: Vec<(u64, u64, u64)> = self
            .garbage
            .drain()
            .map(|(file, (bytes, entries))| (file, bytes, entries))
            .collect();
        garbage.sort_unstable_by_key(|(file, _, _)| *file);
        Ok(ValueEditBundle {
            new_files: std::mem::take(&mut self.outputs),
            deleted_files: Vec::new(),
            inherits: Vec::new(),
            garbage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;
    use scavenger_table::btable::BlockCache;
    use std::sync::atomic::AtomicU64;

    struct SeqAlloc(AtomicU64);
    impl FileNumAlloc for SeqAlloc {
        fn next_file_number(&self) -> u64 {
            self.0.fetch_add(1, Ordering::SeqCst)
        }
    }

    fn setup(features: Features) -> (EngineHook, Arc<ValueStore>, Arc<DropCache>) {
        let env: EnvRef = MemEnv::shared();
        let vstore = Arc::new(ValueStore::new(
            env.clone(),
            "db",
            Arc::new(BlockCache::with_capacity(1 << 20)),
        ));
        let dropcache = Arc::new(DropCache::new(1024));
        let hook = EngineHook::new(
            HookConfig {
                env,
                dir: "db".into(),
                features,
                sep_threshold: 512,
                vsst_target: 1 << 20,
                table_opts: TableOptions::default(),
            },
            vstore.clone(),
            dropcache.clone(),
            Arc::new(GcStats::default()),
        );
        hook.go_live();
        (hook, vstore, dropcache)
    }

    fn scavenger_features() -> Features {
        Features::for_mode(crate::options::EngineMode::Scavenger)
    }

    #[test]
    fn flush_session_separates_large_values_only() {
        let (hook, _, _) = setup(scavenger_features());
        let alloc = Arc::new(SeqAlloc(AtomicU64::new(100)));
        let mut s = hook.session(JobKind::Flush, alloc).unwrap();

        let (t, v) = s
            .entry(b"small", 1, ValueType::Value, Bytes::from(vec![1u8; 100]))
            .unwrap();
        assert_eq!(t, ValueType::Value, "below threshold stays inline");
        assert_eq!(v.len(), 100);

        let (t, v) = s
            .entry(b"large", 2, ValueType::Value, Bytes::from(vec![2u8; 4096]))
            .unwrap();
        assert_eq!(t, ValueType::ValueRef);
        let r = ValueRef::decode(&v).unwrap();
        assert_eq!(r.size, 4096);
        assert_eq!(r.file, 100);

        let bundle = s.finish().unwrap();
        assert_eq!(bundle.new_files.len(), 1);
        assert_eq!(bundle.new_files[0].entries, 1);
        assert_eq!(bundle.new_files[0].value_bytes, 4096);
        assert!(!bundle.new_files[0].hot);
    }

    #[test]
    fn hot_keys_route_to_hot_files() {
        let (hook, _, dropcache) = setup(scavenger_features());
        dropcache.insert(b"hotkey");
        let alloc = Arc::new(SeqAlloc(AtomicU64::new(10)));
        let mut s = hook.session(JobKind::Flush, alloc).unwrap();
        s.entry(
            b"coldkey",
            1,
            ValueType::Value,
            Bytes::from(vec![0u8; 2048]),
        )
        .unwrap();
        s.entry(b"hotkey", 2, ValueType::Value, Bytes::from(vec![1u8; 2048]))
            .unwrap();
        let bundle = s.finish().unwrap();
        assert_eq!(bundle.new_files.len(), 2, "hot and cold outputs");
        let hot: Vec<bool> = bundle.new_files.iter().map(|f| f.hot).collect();
        assert!(hot.contains(&true) && hot.contains(&false));
    }

    #[test]
    fn hotness_disabled_uses_single_route() {
        let (hook, _, dropcache) = setup(Features::for_mode(crate::options::EngineMode::Terark));
        dropcache.insert(b"hotkey"); // present but unused
        let alloc = Arc::new(SeqAlloc(AtomicU64::new(10)));
        let mut s = hook.session(JobKind::Flush, alloc).unwrap();
        s.entry(
            b"coldkey",
            1,
            ValueType::Value,
            Bytes::from(vec![0u8; 2048]),
        )
        .unwrap();
        s.entry(b"hotkey", 2, ValueType::Value, Bytes::from(vec![1u8; 2048]))
            .unwrap();
        let bundle = s.finish().unwrap();
        assert_eq!(bundle.new_files.len(), 1);
    }

    #[test]
    fn dropped_refs_become_exposed_garbage() {
        let (hook, vstore, dropcache) = setup(scavenger_features());
        // Register a value file the drops refer to.
        vstore.apply_bundle(&ValueEditBundle {
            new_files: vec![scavenger_lsm::NewValueFile {
                file: 7,
                size: 10_000,
                entries: 10,
                value_bytes: 9_000,
                hot: false,
                format: scavenger_table::props::TableType::RTable as u8,
            }],
            ..Default::default()
        });
        let alloc = Arc::new(SeqAlloc(AtomicU64::new(50)));
        let mut s = hook.session(JobKind::Flush, alloc).unwrap();
        let vref = ValueRef {
            file: 7,
            size: 900,
            offset: 0,
        };
        s.drop_entry(
            b"k1",
            3,
            ValueType::ValueRef,
            &vref.encode(),
            DropCause::Shadowed,
        );
        s.drop_entry(
            b"k2",
            4,
            ValueType::ValueRef,
            &vref.encode(),
            DropCause::Tombstoned,
        );
        let bundle = s.finish().unwrap();
        assert_eq!(bundle.garbage, vec![(7, 1800, 2)]);
        // Hot-write keys recorded.
        assert!(dropcache.contains(b"k1"));
        assert!(dropcache.contains(b"k2"));
        // Commit-side application updates the meta.
        hook.on_committed(&bundle);
        assert!((vstore.meta(7).unwrap().garbage_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn rolls_files_at_target_size() {
        let (hook, _, _) = setup(scavenger_features());
        let alloc = Arc::new(SeqAlloc(AtomicU64::new(1)));
        let mut s = hook.session(JobKind::Flush, alloc).unwrap();
        // vsst_target is 1 MiB; write ~3 MiB of values.
        for i in 0..300 {
            let key = format!("key{i:04}");
            s.entry(
                key.as_bytes(),
                i,
                ValueType::Value,
                Bytes::from(vec![7u8; 10_240]),
            )
            .unwrap();
        }
        let bundle = s.finish().unwrap();
        assert!(
            bundle.new_files.len() >= 3,
            "expected multiple rolled files, got {}",
            bundle.new_files.len()
        );
        let total: u64 = bundle.new_files.iter().map(|f| f.entries).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn blobdb_compaction_relocates_sampled_entries() {
        let features = Features::for_mode(crate::options::EngineMode::BlobDb);
        let (hook, vstore, _) = setup(features);
        let alloc = Arc::new(SeqAlloc(AtomicU64::new(100)));

        // Create a real blob file with many entries via a flush session.
        let mut s = hook.session(JobKind::Flush, alloc.clone()).unwrap();
        let mut refs = Vec::new();
        for i in 0..32u64 {
            let key = format!("key{i:02}");
            let (t, enc) = s
                .entry(
                    key.as_bytes(),
                    i,
                    ValueType::Value,
                    Bytes::from(vec![3u8; 2000]),
                )
                .unwrap();
            assert_eq!(t, ValueType::ValueRef);
            refs.push((key, i, ValueRef::decode(&enc).unwrap()));
        }
        let old_file = refs[0].2.file;
        let bundle = s.finish().unwrap();
        hook.on_committed(&bundle);
        assert!(vstore.meta(old_file).is_some());

        // Compaction session: the only blob file is in the oldest 25%, but
        // only a per-session sample of its entries relocates (partial
        // draining; see BLOBDB_RELOCATION_SAMPLE).
        let mut s = hook
            .session(
                JobKind::Compaction {
                    output_level: 6,
                    bottommost: true,
                },
                alloc,
            )
            .unwrap();
        let mut relocated = 0;
        for (key, seq, old_ref) in &refs {
            let (t, enc2) = s
                .entry(
                    key.as_bytes(),
                    *seq,
                    ValueType::ValueRef,
                    Bytes::from(old_ref.encode()),
                )
                .unwrap();
            assert_eq!(t, ValueType::ValueRef);
            if ValueRef::decode(&enc2).unwrap().file != old_ref.file {
                relocated += 1;
            }
        }
        assert!(relocated > 0, "some entries must relocate");
        assert!(relocated < refs.len(), "but not all in one pass (sampled)");
        let bundle = s.finish().unwrap();
        assert_eq!(bundle.new_files.len(), 1);
        // Relocated slots exposed as garbage on the old file.
        let g = bundle
            .garbage
            .iter()
            .find(|(f, _, _)| *f == old_file)
            .unwrap();
        assert_eq!(g.1, relocated as u64 * 2000);
        hook.on_committed(&bundle);
        assert!(!vstore.meta(old_file).unwrap().is_exhausted());
    }

    #[test]
    fn replay_buffer_defers_application() {
        let env: EnvRef = MemEnv::shared();
        let vstore = Arc::new(ValueStore::new(
            env.clone(),
            "db",
            Arc::new(BlockCache::with_capacity(1024)),
        ));
        let hook = EngineHook::new(
            HookConfig {
                env,
                dir: "db".into(),
                features: scavenger_features(),
                sep_threshold: 512,
                vsst_target: 1 << 20,
                table_opts: TableOptions::default(),
            },
            vstore.clone(),
            Arc::new(DropCache::new(16)),
            Arc::new(GcStats::default()),
        );
        // Still replaying: committed bundles buffer instead of applying.
        let bundle = ValueEditBundle {
            garbage: vec![(1, 2, 3)],
            ..Default::default()
        };
        hook.on_committed(&bundle);
        assert_eq!(vstore.total_exposed_bytes(), 0);
        let buffered = hook.go_live();
        assert_eq!(buffered.len(), 1);
        assert_eq!(buffered[0].garbage, vec![(1, 2, 3)]);
        // Live now: applies immediately.
        hook.on_committed(&ValueEditBundle::default());
    }
}
