//! One engine surface: the trait-based API unifying [`Db`] and
//! [`DbShards`].
//!
//! The paper's core claim is comparative — five
//! [`EngineMode`](crate::EngineMode)s on one substrate — and the engine grows backends the same way: a single
//! store, a hash-sharded set, and whatever comes next (WAL-time
//! separation, revisited trade-off knobs) should all serve the same
//! tests, benches, and applications. These traits are that contract:
//!
//! * [`KvRead`] — point/range reads, pinned views, snapshots. The
//!   associated types [`View`](KvRead::View) / [`Snap`](KvRead::Snap) /
//!   [`Iter`](KvRead::Iter) name each backend's concrete read surfaces
//!   ([`ReadView`]/[`Snapshot`]/[`DbScanIter`] for [`Db`];
//!   [`ShardsView`]/[`ShardsSnapshot`]/[`ShardsScanIter`] for
//!   [`DbShards`]), and [`PinnedReader`] lets generic code read through
//!   either.
//! * [`KvWrite`] — puts, deletes, and atomic batches with
//!   [`WriteOptions`].
//! * [`Maintenance`] — flush/compaction/GC plus the stats and space
//!   introspection the harness consumes; [`GcReport`] normalizes the
//!   single-engine and fan-out GC result shapes.
//! * [`Engine`] — umbrella alias for `KvRead + KvWrite + Maintenance`
//!   (blanket-implemented).
//!
//! Per-call options are shared, not mirrored: one [`ReadOptions`] whose
//! [`ReadPin`](crate::ReadPin) enum covers both engines' pinned
//! surfaces, one [`WriteOptions`]. A generic function needs no
//! per-backend code at all:
//!
//! ```
//! use scavenger::{Db, DbShards, Engine, EngineMode, MemEnv, Options, ShardedOptions};
//!
//! fn churn<E: Engine>(db: &E) -> scavenger::Result<u64> {
//!     db.put(b"k", vec![7u8; 2048].into())?;
//!     db.flush()?;
//!     db.compact_all()?;
//!     let report = db.run_gc()?;
//!     Ok(report.aggregate().bytes_reclaimed)
//! }
//!
//! let single = Db::open(Options::new(MemEnv::shared(), "e1", EngineMode::Scavenger)).unwrap();
//! let sharded = ShardedOptions::builder(MemEnv::shared(), "e2", EngineMode::Scavenger)
//!     .num_shards(2)
//!     .open()
//!     .unwrap();
//! churn(&single).unwrap();
//! churn(&sharded).unwrap();
//! ```
//!
//! ## How a new backend plugs in
//!
//! Implement the three traits (plus [`PinnedReader`] for its view and
//! snapshot types, and `Iterator<Item = Result<ScanEntry>>` for its scan
//! iterator), and add [`ReadPin`](crate::ReadPin) variants + `From`
//! impls for the new pinned surfaces (the enum is `#[non_exhaustive]`,
//! so that is an additive, non-breaking change in `view.rs`). Every
//! generic consumer — the conformance suite in
//! `tests/engine_conformance.rs`, the bench harness's `EngineKvStore`
//! adapter, the examples — then runs against it unchanged. The traits
//! are object-safe (asserted by a compile-time test below), so `dyn`
//! dispatch over heterogeneous backends works too.

use crate::db::{Db, DbScanIter, ScanEntry};
use crate::gc::GcOutcome;
use crate::shards::{DbShards, ShardsScanIter, ShardsSnapshot, ShardsView};
use crate::stats::{DbStats, SpaceBreakdown};
use crate::view::{ReadOptions, ReadView, Snapshot, WriteOptions, WriteReceipt};
use bytes::Bytes;
use scavenger_lsm::WriteBatch;
use scavenger_util::Result;

/// Unified result of one [`Maintenance::run_gc`] call: per-engine GC
/// outcomes, indexed by shard. A single [`Db`] reports one slot; a
/// [`DbShards`] reports one per shard. This normalizes the historical
/// asymmetry (`Option<GcOutcome>` vs `Vec<Option<GcOutcome>>`) so
/// generic drivers never branch on the handle type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Each engine's outcome for this pass (`None` where no candidate
    /// crossed the GC threshold), indexed by shard for a sharded store.
    pub outcomes: Vec<Option<GcOutcome>>,
}

impl GcReport {
    /// Wrap a single engine's outcome.
    pub fn single(outcome: Option<GcOutcome>) -> GcReport {
        GcReport {
            outcomes: vec![outcome],
        }
    }

    /// Did any engine run a GC job this pass?
    pub fn ran(&self) -> bool {
        self.outcomes.iter().any(|o| o.is_some())
    }

    /// Number of GC jobs that actually ran.
    pub fn jobs(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_some()).count()
    }

    /// Sum of all outcomes — files collected, records rewritten, and
    /// bytes reclaimed across the whole handle.
    pub fn aggregate(&self) -> GcOutcome {
        let mut total = GcOutcome::default();
        for o in self.outcomes.iter().flatten() {
            total.files_collected += o.files_collected;
            total.records_rewritten += o.records_rewritten;
            total.bytes_reclaimed += o.bytes_reclaimed;
        }
        total
    }
}

impl From<Option<GcOutcome>> for GcReport {
    fn from(outcome: Option<GcOutcome>) -> GcReport {
        GcReport::single(outcome)
    }
}

/// A pinned read surface — a view or snapshot of either engine flavor.
/// Everything readable *through a pin* goes through this trait, so
/// generic code can hold an epoch and read it without knowing whether
/// one engine or a shard set is underneath.
pub trait PinnedReader {
    /// Scan iterator over this pin (same type as the owning engine's
    /// [`KvRead::Iter`]).
    type Iter: Iterator<Item = Result<ScanEntry>>;

    /// Value of `key` at the pin, or `None` if absent/deleted there.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>>;

    /// Range scan over `[lo, hi)` (unbounded when `hi` is `None`) at
    /// the pin, resolving separated values.
    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<Self::Iter>;
}

/// Read half of the unified engine surface: point lookups, range scans,
/// and the pinned-consistency machinery (views and snapshots).
///
/// Every scan iterator is a real [`Iterator`] over
/// `Result<`[`ScanEntry`]`>`; every pinned surface is a
/// [`PinnedReader`]. Per-call knobs ride in the shared [`ReadOptions`]
/// (whose [`pin`](ReadOptions::pin) accepts both engines' views and
/// snapshots — passing the wrong flavor to a handle is an error, never
/// silently ignored).
///
/// ```
/// use scavenger::{Db, EngineMode, KvRead, MemEnv, Options, PinnedReader, ReadOptions};
///
/// fn epoch_len<E: KvRead>(db: &E) -> usize {
///     let view = db.view(); // pinned: later writes stay invisible
///     view.scan(b"", None).unwrap().count()
/// }
///
/// let db = Db::open(Options::new(MemEnv::shared(), "kvread-doc", EngineMode::Scavenger)).unwrap();
/// db.put("a", vec![1u8; 600]).unwrap();
/// assert_eq!(epoch_len(&db), 1);
/// assert!(KvRead::get(&db, b"a").unwrap().is_some());
/// assert!(db.get_with(&ReadOptions::default(), b"missing").unwrap().is_none());
/// ```
pub trait KvRead {
    /// Pinned, strictly-consistent view type.
    type View: PinnedReader<Iter = Self::Iter>;
    /// RAII snapshot type (participates in snapshot-gated GC policy).
    type Snap: PinnedReader<Iter = Self::Iter>;
    /// Range-scan iterator type.
    type Iter: Iterator<Item = Result<ScanEntry>>;

    /// Latest value of `key`, or `None` if absent/deleted.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>>;

    /// Value of `key` as seen by `opts` (pin selection, cache control).
    fn get_with(&self, opts: &ReadOptions<'_>, key: &[u8]) -> Result<Option<Bytes>>;

    /// Range scan over `[lo, hi)` (unbounded when `hi` is `None`) at
    /// the latest state.
    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<Self::Iter>;

    /// Range scan as seen by `opts`: bounds from
    /// [`lower_bound`](ReadOptions::lower_bound) /
    /// [`upper_bound`](ReadOptions::upper_bound), read point from
    /// [`pin`](ReadOptions::pin).
    fn scan_with(&self, opts: &ReadOptions<'_>) -> Result<Self::Iter>;

    /// Pin a strictly-consistent view of the current state.
    fn view(&self) -> Self::View;

    /// Take an RAII snapshot (registered read point until dropped).
    fn snapshot(&self) -> Self::Snap;
}

/// Write half of the unified engine surface. Every write returns a
/// [`WriteReceipt`] describing where the batch landed (its highest
/// sequence number), how many writer batches shared its commit group,
/// and whether the commit was covered by an fsync.
///
/// ```
/// use scavenger::{DbShards, EngineMode, KvWrite, MemEnv, ShardedOptions, WriteBatch, WriteReceipt};
///
/// fn bulk<E: KvWrite>(db: &E) -> scavenger::Result<WriteReceipt> {
///     let mut batch = WriteBatch::new();
///     batch.put("a", scavenger::Bytes::from(vec![1u8; 600]));
///     batch.put("b", scavenger::Bytes::from_static(b"inline"));
///     db.write(batch)?; // atomic even across shards — see `write_with`
///     db.delete(b"a")
/// }
///
/// let db = ShardedOptions::builder(MemEnv::shared(), "kvwrite-doc", EngineMode::Scavenger)
///     .num_shards(2)
///     .open()
///     .unwrap();
/// assert!(bulk(&db).unwrap().synced);
/// assert!(db.get("a").unwrap().is_none());
/// ```
pub trait KvWrite {
    /// Insert or overwrite a key (default [`WriteOptions`]).
    fn put(&self, key: &[u8], value: Bytes) -> Result<WriteReceipt> {
        self.put_with(&WriteOptions::default(), key, value)
    }

    /// Insert or overwrite a key with explicit options.
    fn put_with(&self, opts: &WriteOptions, key: &[u8], value: Bytes) -> Result<WriteReceipt>;

    /// Delete a key (default [`WriteOptions`]).
    fn delete(&self, key: &[u8]) -> Result<WriteReceipt> {
        self.delete_with(&WriteOptions::default(), key)
    }

    /// Delete a key with explicit options.
    fn delete_with(&self, opts: &WriteOptions, key: &[u8]) -> Result<WriteReceipt>;

    /// Apply a batch (default [`WriteOptions`]). Atomicity scope is as
    /// documented on [`write_with`](KvWrite::write_with).
    fn write(&self, batch: WriteBatch) -> Result<WriteReceipt> {
        self.write_with(&WriteOptions::default(), batch)
    }

    /// Apply a batch with explicit options.
    ///
    /// # Atomicity
    ///
    /// A batch is atomic on **both** handles, crashes included. A
    /// single [`Db`] applies it in one WAL record. A [`DbShards`]
    /// splits it by routing: a batch whose keys all land on one shard
    /// takes that shard's fast path (one WAL record, zero extra I/O),
    /// while a multi-shard batch goes through the set's two-phase
    /// commit coordinator — a synced `Prepare` record carrying the full
    /// redo payload, the per-shard sub-batch commits (forced durable),
    /// then a `Commit` record. Recovery replays the coordinator log and
    /// rolls committed-but-unapplied sub-batches forward, so a crash at
    /// any point surfaces the whole batch or none of it.
    ///
    /// The price of that guarantee: a multi-shard batch is always
    /// synced (its receipt reports `synced = true` even under
    /// `sync = false` options), and its receipt aggregates `seq` as the
    /// maximum across touched shards with `group_len` summed. A
    /// single-target batch (and every write on a single [`Db`]) keeps
    /// the requested sync behavior unchanged.
    fn write_with(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<WriteReceipt>;
}

/// Maintenance and introspection half of the unified engine surface:
/// the operations the harness, throttle experiments, and examples drive
/// explicitly.
///
/// ```
/// use scavenger::{Db, EngineMode, Maintenance, MemEnv, Options};
///
/// fn reclaim<E: Maintenance>(db: &E) -> scavenger::Result<u64> {
///     db.flush()?;
///     db.compact_all()?; // exposes garbage
///     let report = db.run_gc()?; // one outcome slot per shard
///     assert_eq!(report.jobs(), report.outcomes.iter().flatten().count());
///     Ok(report.aggregate().bytes_reclaimed)
/// }
///
/// let db = Db::open(Options::new(MemEnv::shared(), "maint-doc", EngineMode::Scavenger)).unwrap();
/// db.put("k", vec![3u8; 2048]).unwrap();
/// reclaim(&db).unwrap();
/// assert!(db.stats().flushes >= 1);
/// assert!(db.space().total() > 0);
/// ```
pub trait Maintenance {
    /// Flush memtables and drain background work.
    fn flush(&self) -> Result<()>;

    /// Compact until every level score is under 1.
    fn compact_all(&self) -> Result<()>;

    /// Run one GC pass at the configured threshold: one job on a single
    /// engine, one job per shard on a sharded one. The [`GcReport`]
    /// normalizes both shapes.
    fn run_gc(&self) -> Result<GcReport>;

    /// Run GC until no candidate crosses the threshold anywhere;
    /// returns the total number of jobs.
    fn run_gc_until_clean(&self) -> Result<usize>;

    /// Recover from read-only degraded mode after a permanent
    /// background failure: re-verify the manifest, clean orphan value
    /// files, clear the stored error, and re-enable writes (every
    /// shard, for a sharded store). See [`Db::resume`].
    fn resume(&self) -> Result<()>;

    /// Aggregate statistics snapshot (set-wide for a sharded store).
    fn stats(&self) -> DbStats;

    /// Per-member statistics, indexed by shard: one element for a
    /// single engine, one per shard for a sharded store (each shard's
    /// `io` counters are its own metered attribution). The metrics
    /// exposition layer uses this to label series per shard without
    /// knowing the handle type.
    fn per_shard_stats(&self) -> Vec<DbStats> {
        vec![self.stats()]
    }

    /// On-disk space breakdown (summed across shards for a sharded
    /// store).
    fn space(&self) -> SpaceBreakdown;
}

/// The full unified surface: everything a backend must provide to serve
/// the conformance suite, the bench harness, and the examples.
/// Blanket-implemented for any `KvRead + KvWrite + Maintenance`.
pub trait Engine: KvRead + KvWrite + Maintenance {}

impl<T: KvRead + KvWrite + Maintenance> Engine for T {}

// ---------------- pinned surfaces ----------------

impl PinnedReader for ReadView {
    type Iter = DbScanIter;

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        ReadView::get(self, key)
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<DbScanIter> {
        ReadView::scan(self, lo, hi)
    }
}

impl PinnedReader for Snapshot {
    type Iter = DbScanIter;

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Snapshot::get(self, key)
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<DbScanIter> {
        Snapshot::scan(self, lo, hi)
    }
}

impl PinnedReader for ShardsView {
    type Iter = ShardsScanIter;

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        ShardsView::get(self, key)
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ShardsScanIter> {
        ShardsView::scan(self, lo, hi)
    }
}

impl PinnedReader for ShardsSnapshot {
    type Iter = ShardsScanIter;

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        ShardsSnapshot::get(self, key)
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ShardsScanIter> {
        ShardsSnapshot::scan(self, lo, hi)
    }
}

// ---------------- Db ----------------

impl KvRead for Db {
    type View = ReadView;
    type Snap = Snapshot;
    type Iter = DbScanIter;

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Db::get(self, key)
    }

    fn get_with(&self, opts: &ReadOptions<'_>, key: &[u8]) -> Result<Option<Bytes>> {
        Db::get_with(self, opts, key)
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<DbScanIter> {
        Db::scan(self, lo, hi)
    }

    fn scan_with(&self, opts: &ReadOptions<'_>) -> Result<DbScanIter> {
        Db::scan_with(self, opts)
    }

    fn view(&self) -> ReadView {
        Db::view(self)
    }

    fn snapshot(&self) -> Snapshot {
        Db::snapshot(self)
    }
}

impl KvWrite for Db {
    fn put_with(&self, opts: &WriteOptions, key: &[u8], value: Bytes) -> Result<WriteReceipt> {
        Db::put_with(self, opts, key, value)
    }

    fn delete_with(&self, opts: &WriteOptions, key: &[u8]) -> Result<WriteReceipt> {
        Db::delete_with(self, opts, key)
    }

    fn write_with(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<WriteReceipt> {
        Db::write_with(self, opts, batch)
    }
}

impl Maintenance for Db {
    fn flush(&self) -> Result<()> {
        Db::flush(self)
    }

    fn compact_all(&self) -> Result<()> {
        Db::compact_all(self)
    }

    fn run_gc(&self) -> Result<GcReport> {
        Ok(GcReport::single(Db::run_gc(self)?))
    }

    fn run_gc_until_clean(&self) -> Result<usize> {
        Db::run_gc_until_clean(self)
    }

    fn resume(&self) -> Result<()> {
        Db::resume(self)
    }

    fn stats(&self) -> DbStats {
        Db::stats(self)
    }

    fn space(&self) -> SpaceBreakdown {
        Db::space(self)
    }
}

// ---------------- DbShards ----------------

impl KvRead for DbShards {
    type View = ShardsView;
    type Snap = ShardsSnapshot;
    type Iter = ShardsScanIter;

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        DbShards::get(self, key)
    }

    fn get_with(&self, opts: &ReadOptions<'_>, key: &[u8]) -> Result<Option<Bytes>> {
        DbShards::get_with(self, opts, key)
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ShardsScanIter> {
        DbShards::scan(self, lo, hi)
    }

    fn scan_with(&self, opts: &ReadOptions<'_>) -> Result<ShardsScanIter> {
        DbShards::scan_with(self, opts)
    }

    fn view(&self) -> ShardsView {
        DbShards::view(self)
    }

    fn snapshot(&self) -> ShardsSnapshot {
        DbShards::snapshot(self)
    }
}

impl KvWrite for DbShards {
    fn put_with(&self, opts: &WriteOptions, key: &[u8], value: Bytes) -> Result<WriteReceipt> {
        DbShards::put_with(self, opts, key, value)
    }

    fn delete_with(&self, opts: &WriteOptions, key: &[u8]) -> Result<WriteReceipt> {
        DbShards::delete_with(self, opts, key)
    }

    fn write_with(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<WriteReceipt> {
        DbShards::write_with(self, opts, batch)
    }
}

impl Maintenance for DbShards {
    fn flush(&self) -> Result<()> {
        DbShards::flush(self)
    }

    fn compact_all(&self) -> Result<()> {
        DbShards::compact_all(self)
    }

    fn run_gc(&self) -> Result<GcReport> {
        DbShards::run_gc(self)
    }

    fn run_gc_until_clean(&self) -> Result<usize> {
        DbShards::run_gc_until_clean(self)
    }

    fn resume(&self) -> Result<()> {
        DbShards::resume(self)
    }

    fn stats(&self) -> DbStats {
        DbShards::stats(self)
    }

    fn per_shard_stats(&self) -> Vec<DbStats> {
        DbShards::shard_stats(self)
    }

    fn space(&self) -> SpaceBreakdown {
        DbShards::space(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{EngineMode, Options};
    use crate::shards::ShardedOptions;
    use scavenger_env::MemEnv;

    /// Compile-time object-safety assertion: the traits must stay
    /// `dyn`-compatible (no generic methods, no `Self` returns outside
    /// associated types), so heterogeneous backends can sit behind one
    /// `dyn Engine<...>` pointer.
    #[allow(dead_code)]
    fn object_safety(
        _write: &dyn KvWrite,
        _maint: &dyn Maintenance,
        _read: &dyn KvRead<View = ReadView, Snap = Snapshot, Iter = DbScanIter>,
        _pin: &dyn PinnedReader<Iter = DbScanIter>,
        _engine: &dyn Engine<View = ShardsView, Snap = ShardsSnapshot, Iter = ShardsScanIter>,
    ) {
    }

    /// Compile-time Send + Sync assertions on every public surface of
    /// the unified API: handles, pinned surfaces, and iterators all
    /// cross threads (the maintenance fan-out and the bench harness
    /// rely on it).
    #[test]
    fn surfaces_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Db>();
        assert_send_sync::<DbShards>();
        assert_send_sync::<ReadView>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<ShardsView>();
        assert_send_sync::<ShardsSnapshot>();
        assert_send_sync::<GcReport>();
        assert_send::<DbScanIter>();
        assert_send::<ShardsScanIter>();
    }

    #[test]
    fn gc_report_normalizes_shapes() {
        let none = GcReport::single(None);
        assert!(!none.ran());
        assert_eq!(none.jobs(), 0);
        assert_eq!(none.aggregate(), GcOutcome::default());

        let fanout = GcReport {
            outcomes: vec![
                Some(GcOutcome {
                    files_collected: 2,
                    records_rewritten: 10,
                    bytes_reclaimed: 4096,
                }),
                None,
                Some(GcOutcome {
                    files_collected: 1,
                    records_rewritten: 5,
                    bytes_reclaimed: 1024,
                }),
            ],
        };
        assert!(fanout.ran());
        assert_eq!(fanout.jobs(), 2);
        let total = fanout.aggregate();
        assert_eq!(total.files_collected, 3);
        assert_eq!(total.records_rewritten, 15);
        assert_eq!(total.bytes_reclaimed, 5120);

        let via_from: GcReport = Some(GcOutcome::default()).into();
        assert_eq!(via_from.jobs(), 1);
    }

    /// One generic body, both engines: the blanket [`Engine`] bound is
    /// enough to drive the full write/read/maintain cycle.
    #[test]
    fn generic_cycle_runs_on_both_handles() {
        fn cycle<E: Engine>(db: &E) {
            for i in 0..30u32 {
                KvWrite::put(
                    db,
                    format!("key{i:02}").as_bytes(),
                    vec![i as u8; 1024].into(),
                )
                .unwrap();
            }
            db.flush().unwrap();
            assert_eq!(
                KvRead::get(db, b"key07").unwrap().unwrap(),
                Bytes::from(vec![7u8; 1024])
            );
            let view = db.view();
            KvWrite::delete(db, b"key07").unwrap();
            assert!(KvRead::get(db, b"key07").unwrap().is_none());
            assert_eq!(view.get(b"key07").unwrap().unwrap().len(), 1024);
            let collected: Vec<ScanEntry> = db
                .scan(b"key00", Some(b"key05"))
                .unwrap()
                .collect::<Result<_>>()
                .unwrap();
            assert_eq!(collected.len(), 5);
            db.compact_all().unwrap();
            let _ = db.run_gc().unwrap();
            assert!(db.stats().flushes >= 1);
            assert!(db.space().total() > 0);
        }
        let single = Db::open(Options::new(
            MemEnv::shared(),
            "eng-single",
            EngineMode::Scavenger,
        ))
        .unwrap();
        cycle(&single);
        let sharded = DbShards::open(ShardedOptions::new(
            MemEnv::shared(),
            "eng-sharded",
            EngineMode::Scavenger,
        ))
        .unwrap();
        cycle(&sharded);
    }
}
