//! # Scavenger
//!
//! A key-value separated LSM-tree storage engine with **I/O-efficient
//! garbage collection** and **space-aware compaction**, reproducing
//! *"Scavenger: Better Space-Time Trade-Offs for Key-Value Separated
//! LSM-trees"* (ICDE 2024).
//!
//! The crate exposes one engine with five selectable designs
//! ([`EngineMode`]), all sharing the same substrate so comparisons isolate
//! exactly the design differences the paper studies:
//!
//! | mode | value placement | value format | GC scheme |
//! |---|---|---|---|
//! | `Rocks`     | inline             | —       | — (compaction only) |
//! | `BlobDb`    | separated ≥ 512 B  | blob log | compaction-triggered relocation |
//! | `Titan`     | separated ≥ 512 B  | blob log | standalone GC + index write-back |
//! | `Terark`    | separated ≥ 512 B  | BTable  | no-writeback GC via inheritance |
//! | `Scavenger` | separated ≥ 512 B  | **RTable** | no-writeback GC + **Lazy Read** + **DTable GC-Lookup** + **DropCache hot/cold** + **compensated compaction** + space-aware throttling |
//!
//! ## Quickstart
//!
//! ```
//! use scavenger::{Db, EngineMode, Options};
//! use scavenger_env::MemEnv;
//!
//! let opts = Options::new(MemEnv::shared(), "demo-db", EngineMode::Scavenger);
//! let db = Db::open(opts).unwrap();
//! db.put(b"hello", vec![7u8; 4096]).unwrap();   // large: separated
//! db.put(b"tiny", &b"small"[..]).unwrap();      // small: stays inline
//! assert_eq!(db.get(b"tiny").unwrap().unwrap().as_ref(), b"small");
//! assert_eq!(db.get(b"hello").unwrap().unwrap().len(), 4096);
//! db.delete(b"tiny").unwrap();
//! assert!(db.get(b"tiny").unwrap().is_none());
//! ```
//!
//! ## One engine surface
//!
//! Every handle implements the trait triple in [`engine`] —
//! [`KvRead`] / [`KvWrite`] / [`Maintenance`] (umbrella: [`Engine`]) —
//! so tests, benches, and applications written against the traits run
//! unchanged on a single [`Db`] or a sharded [`DbShards`]. Per-call
//! options are shared: one [`ReadOptions`] (its [`ReadPin`] covers both
//! engines' views and snapshots), one [`WriteOptions`], and a
//! [`GcReport`] that normalizes single vs. fan-out GC results.
//!
//! ## Scaling out
//!
//! For multi-core write scaling, [`DbShards`] hash-partitions the key
//! space across N independent engines behind the same API — one shared
//! block cache, one global space budget, per-shard GC/compaction fanned
//! across threads. Strict per-shard read consistency comes from the
//! pinned-view machinery ([`Db::view`], [`Snapshot`], [`ReadOptions`]).
//!
//! The repository-level `ARCHITECTURE.md` walks the full design: the
//! trait-based API layer, the superversion read path and its
//! copy-on-write installs, the staged GC pipeline, space-aware
//! throttling, and the shard layer. `README.md` has the crate map and
//! the benchmark baselines.

#![warn(missing_docs)]

pub mod changes;
pub mod db;
pub mod dropcache;
pub mod engine;
pub mod gc;
pub(crate) mod gc_exec;
pub mod hook;
pub mod options;
pub mod shards;
pub mod stats;
pub mod throttle;
pub mod txn;
pub mod view;
pub mod vstore;

pub use changes::{
    ChangeOp, ChangeRecord, ChangeStream, ChangeSubscriber, DbChangeStream, ResumeToken,
    ShardsChangeStream, SubscribeFrom,
};
pub use db::{Db, DbScanIter, ScanEntry};
pub use dropcache::DropCache;
pub use engine::{Engine, GcReport, KvRead, KvWrite, Maintenance, PinnedReader};
pub use gc::{GcOutcome, GcValidationReport};
pub use options::{
    EngineMode, Features, GcPipeline, GcScheme, GcValidateMode, Options, OptionsBuilder,
    SpaceUsageFn, VFormat,
};
pub use shards::{DbShards, ShardedOptions, ShardedOptionsBuilder, ShardsSnapshot, ShardsView};
pub use stats::{DbStats, GcStats, GcStepTimes, SpaceBreakdown};
pub use throttle::Throttle;
pub use txn::{Transaction, Transactional};
pub use view::{ReadOptions, ReadPin, ReadView, Snapshot, WriteOptions, WriteReceipt};

// Re-export the write-batch type (and the byte buffer it carries) so
// `Db::write(WriteBatch)` is callable from the crate root alone, with
// no direct `scavenger-lsm` / `bytes` dependency.
pub use bytes::Bytes;
pub use scavenger_lsm::WriteBatch;

// Re-export the substrate types users commonly need.
pub use scavenger_env::{DeviceModel, Env, EnvRef, FsEnv, IoClass, IoStatsSnapshot, MemEnv};
pub use scavenger_util::{Error, Result};
