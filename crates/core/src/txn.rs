//! Optimistic transactions and the cross-shard two-phase-commit
//! coordinator.
//!
//! Two layers live here:
//!
//! 1. **[`Transaction`]** — an optimistic-concurrency-control (OCC)
//!    transaction generic over any [`Transactional`] engine handle
//!    ([`Db`] or [`DbShards`]). Reads pin a
//!    view at begin time and record a *read set* (key → the sequence the
//!    view reads at); writes buffer locally and are invisible to other
//!    readers until commit. Commit validates the read set — every read
//!    key must still have no version newer than the transaction's read
//!    point — and then applies the write buffer atomically through the
//!    engine's write path. Validation failure surfaces as
//!    [`Error::TxnConflict`] with nothing written; the caller re-runs
//!    the transaction against current state.
//!
//! 2. **`Coordinator`** — the two-phase-commit log that makes a
//!    multi-shard [`DbShards`] batch crash-atomic. A
//!    `Prepare` record carrying the full redo payload (per-shard
//!    sub-batch bytes + CRC digest + the shard's sequence floor) is
//!    fsynced *before* any shard write; each shard sub-batch is then
//!    applied with a forced WAL sync; finally a `Commit` record is
//!    appended without sync (losing it is safe — see below). Recovery at
//!    [`DbShards::open`](crate::DbShards::open) replays the log:
//!    prepared-but-uncommitted transactions **roll forward**, re-applying
//!    each entry only if the key has no durable version newer than the
//!    prepare-time floor (a newer version means the entry was already
//!    applied, or was legally superseded by a later write — either way
//!    re-applying would resurrect stale data). Torn or corrupt records
//!    describe transactions whose prepare never became durable, i.e.
//!    nothing was applied — they are discarded.
//!
//! The coordinator log lives at `<root>/COORDLOG` so fault-injection
//! rules can target it by substring.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::{EnvRef, IoClass};
use scavenger_lsm::wal::{read_all_records, LogWriter};
use scavenger_lsm::WriteBatch;
use scavenger_util::coding::{
    get_fixed32, get_fixed64, get_length_prefixed_slice, get_varint32, put_fixed32, put_fixed64,
    put_length_prefixed_slice, put_varint32,
};
use scavenger_util::ikey::{SeqNo, ValueType};
use scavenger_util::{crc32c, Error, Result};

use crate::db::{Db, ScanEntry};
use crate::engine::{KvRead, KvWrite, PinnedReader};
use crate::shards::DbShards;
use crate::view::{WriteOptions, WriteReceipt};

// ---------------------------------------------------------------------------
// Transactional trait + Transaction
// ---------------------------------------------------------------------------

/// Engines that support optimistic transactions.
///
/// Implemented by [`Db`] and [`DbShards`];
/// code written against this trait runs unchanged on both, like the
/// rest of the [`Engine`](crate::Engine) surface. This is a separate
/// trait (rather than methods on `KvWrite`) because [`Transaction`] is
/// generic over the concrete handle — adding it to the object-safe
/// trait triple would break `dyn Engine`.
///
/// ## Isolation
///
/// Reads inside a transaction see the engine at begin time (snapshot
/// isolation) plus the transaction's own buffered writes. Commit-time
/// validation rejects the transaction if any key it *read* has a newer
/// version than its read point, so transactions that commit are
/// serializable against each other (write-write conflicts are a special
/// case: blind writes alone never conflict, matching classic OCC — add
/// the key to the read set with [`Transaction::get`] to get write-write
/// detection). Range scans record the keys they return, not the range
/// itself, so phantoms (keys *inserted* into a scanned range after
/// begin) are not detected.
///
/// On [`DbShards`], commits are validated and applied under a global
/// transaction mutex, so transactions serialize against each other;
/// raw non-transactional writes racing a commit can land between
/// validation and apply, exactly as they can on a single [`Db`]
/// between any two independent writes.
pub trait Transactional: KvRead + KvWrite + Clone {
    /// Begin an optimistic transaction: pins a view of the engine at
    /// the current sequence and returns an empty transaction against
    /// it.
    fn begin(&self) -> Transaction<Self> {
        Transaction::new(self)
    }

    /// The sequence a commit-time conflict check for `key` compares
    /// against under `view`. Implementation detail of [`Transaction`].
    #[doc(hidden)]
    fn txn_read_seq(view: &Self::View, key: &[u8]) -> SeqNo;

    /// Validate `reads` against current state and, if every read is
    /// still current, atomically apply `batch`. Implementation detail
    /// of [`Transaction::commit_with`].
    #[doc(hidden)]
    fn txn_commit(
        &self,
        reads: &[(Vec<u8>, SeqNo)],
        batch: WriteBatch,
        opts: &WriteOptions,
    ) -> Result<WriteReceipt>;
}

impl Transactional for Db {
    fn txn_read_seq(view: &Self::View, _key: &[u8]) -> SeqNo {
        view.sequence()
    }

    fn txn_commit(
        &self,
        reads: &[(Vec<u8>, SeqNo)],
        batch: WriteBatch,
        opts: &WriteOptions,
    ) -> Result<WriteReceipt> {
        self.txn_commit_raw(reads, batch, opts)
    }
}

impl Transactional for DbShards {
    fn txn_read_seq(view: &Self::View, key: &[u8]) -> SeqNo {
        view.read_seq_for(key)
    }

    fn txn_commit(
        &self,
        reads: &[(Vec<u8>, SeqNo)],
        batch: WriteBatch,
        opts: &WriteOptions,
    ) -> Result<WriteReceipt> {
        self.txn_commit_raw(reads, batch, opts)
    }
}

/// An optimistic transaction over an engine handle.
///
/// Created by [`Transactional::begin`]. Reads ([`get`](Self::get),
/// [`scan`](Self::scan)) see the engine as of begin time plus this
/// transaction's own writes; writes ([`put`](Self::put),
/// [`delete`](Self::delete)) buffer locally. [`commit`](Self::commit)
/// validates the read set and applies the buffer atomically —
/// all-or-nothing even across shards — or fails with
/// [`Error::TxnConflict`] having written nothing.
/// [`rollback`](Self::rollback) (or just dropping the transaction)
/// discards the buffer.
///
/// ```
/// use scavenger::{Db, EngineMode, Options, Transactional};
/// use scavenger_env::MemEnv;
///
/// let db = Db::open(Options::new(MemEnv::shared(), "txn-demo", EngineMode::Scavenger)).unwrap();
/// db.put(b"balance", &b"100"[..]).unwrap();
///
/// let mut txn = db.begin();
/// let v = txn.get(b"balance").unwrap().unwrap();
/// assert_eq!(v.as_ref(), b"100");
/// txn.put(b"balance", &b"90"[..]);
/// txn.put(b"audit", &b"spent 10"[..]);
/// txn.commit().unwrap(); // both keys land atomically, or neither
/// ```
pub struct Transaction<E: Transactional> {
    engine: E,
    view: E::View,
    /// Key → the sequence the pinned view reads it at. Commit fails if
    /// any of these keys gains a newer version before validation.
    reads: BTreeMap<Vec<u8>, SeqNo>,
    /// Key → buffered write (`None` = delete).
    writes: BTreeMap<Vec<u8>, Option<Bytes>>,
}

impl<E: Transactional> Transaction<E> {
    fn new(engine: &E) -> Self {
        Transaction {
            engine: engine.clone(),
            view: engine.view(),
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Read `key`: the transaction's own buffered write if there is
    /// one, else the value at the transaction's read point. Either way
    /// the key joins the read set, so the commit fails if another
    /// writer changes it first.
    pub fn get(&mut self, key: impl AsRef<[u8]>) -> Result<Option<Bytes>> {
        let key = key.as_ref();
        let seq = E::txn_read_seq(&self.view, key);
        self.reads.entry(key.to_vec()).or_insert(seq);
        if let Some(buffered) = self.writes.get(key) {
            return Ok(buffered.clone());
        }
        self.view.get(key)
    }

    /// Buffer a put of `key` → `value`. Visible to this transaction's
    /// own reads immediately; visible to everyone else only after
    /// [`commit`](Self::commit).
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl Into<Bytes>) {
        self.writes
            .insert(key.as_ref().to_vec(), Some(value.into()));
    }

    /// Buffer a delete of `key`.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) {
        self.writes.insert(key.as_ref().to_vec(), None);
    }

    /// Range scan over `[lo, hi)` (unbounded when `hi` is `None`) at
    /// the transaction's read point, overlaid with the transaction's
    /// own buffered writes. The result is materialized; every *base*
    /// key the scan observes joins the read set. Keys newly inserted
    /// into the range by other writers after begin are not tracked
    /// (no phantom protection).
    pub fn scan(&mut self, lo: &[u8], hi: Option<&[u8]>) -> Result<Vec<ScanEntry>> {
        let base: Vec<ScanEntry> = self.view.scan(lo, hi)?.collect::<Result<Vec<_>>>()?;
        let hi_bound = match hi {
            Some(h) => Bound::Excluded(h),
            None => Bound::Unbounded,
        };
        let mut overlay = self
            .writes
            .range::<[u8], _>((Bound::Included(lo), hi_bound))
            .peekable();
        let mut out = Vec::new();
        for entry in base {
            // Overlay-only keys strictly before this base key.
            while let Some((k, v)) = overlay.peek() {
                if k.as_slice() >= entry.key.as_slice() {
                    break;
                }
                if let Some(v) = v {
                    out.push(ScanEntry {
                        key: (*k).clone(),
                        value: v.clone(),
                    });
                }
                overlay.next();
            }
            let seq = E::txn_read_seq(&self.view, &entry.key);
            self.reads.entry(entry.key.clone()).or_insert(seq);
            if let Some((k, v)) = overlay.peek() {
                if k.as_slice() == entry.key.as_slice() {
                    // Buffered write shadows the base version.
                    if let Some(v) = v {
                        out.push(ScanEntry {
                            key: entry.key.clone(),
                            value: v.clone(),
                        });
                    }
                    overlay.next();
                    continue;
                }
            }
            out.push(entry);
        }
        for (k, v) in overlay {
            if let Some(v) = v {
                out.push(ScanEntry {
                    key: k.clone(),
                    value: v.clone(),
                });
            }
        }
        Ok(out)
    }

    /// Number of distinct keys in the read set (validated at commit).
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of distinct keys in the write buffer.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Commit with default [`WriteOptions`]. See
    /// [`commit_with`](Self::commit_with).
    pub fn commit(self) -> Result<WriteReceipt> {
        self.commit_with(&WriteOptions::default())
    }

    /// Validate the read set and atomically apply the write buffer.
    ///
    /// Returns [`Error::TxnConflict`] — with **nothing written** — if
    /// any key this transaction read has a version newer than its read
    /// point. A read-only transaction (empty write buffer) still
    /// validates, so it can be used as a consistency check; an empty
    /// transaction commits trivially.
    pub fn commit_with(self, opts: &WriteOptions) -> Result<WriteReceipt> {
        let Transaction {
            engine,
            view,
            reads,
            writes,
        } = self;
        // The pinned view's job is done: validation compares against
        // durable per-key sequences, not the pin. Release it first so
        // the read point never blocks the commit's own maintenance.
        drop(view);
        let mut batch = WriteBatch::new();
        for (key, value) in &writes {
            match value {
                Some(v) => batch.put(key, v.clone()),
                None => batch.delete(key),
            }
        }
        let reads: Vec<(Vec<u8>, SeqNo)> = reads.into_iter().collect();
        engine.txn_commit(&reads, batch, opts)
    }

    /// Discard the transaction: buffered writes are dropped, nothing
    /// is written. Equivalent to dropping the value; provided for
    /// explicitness.
    pub fn rollback(self) {}
}

/// Transaction counters shared by both engine handles (surfaced through
/// [`DbStats`](crate::DbStats)).
#[derive(Default)]
pub(crate) struct TxnCounters {
    /// Transactions that passed validation and committed.
    pub commits: AtomicU64,
    /// Transactions rejected at commit time with [`Error::TxnConflict`].
    pub conflicts: AtomicU64,
}

impl TxnCounters {
    pub fn committed(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn conflicted(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Two-phase-commit coordinator
// ---------------------------------------------------------------------------

/// File name of the coordinator log under the `DbShards` root. The name
/// is substring-targetable by fault-injection rules (`"COORD"`).
pub(crate) const COORD_LOG: &str = "COORDLOG";

/// Rotate (truncate) the coordinator log once it exceeds this size and
/// no transaction is in flight.
const COORD_ROTATE_BYTES: u64 = 1 << 20;

const PREPARE_TAG: u8 = 1;
const COMMIT_TAG: u8 = 2;

/// One shard's slice of a prepared multi-shard transaction.
#[derive(Debug)]
struct PreparedPart {
    /// Index into the `DbShards` shard vector.
    shard: usize,
    /// The shard's last sequence at prepare time. Roll-forward re-applies
    /// an entry only if its key has no version newer than this floor.
    floor: SeqNo,
    /// The redo payload: the sub-batch destined for this shard.
    batch: WriteBatch,
}

#[derive(Debug)]
struct PrepareRecord {
    txn_id: u64,
    parts: Vec<PreparedPart>,
}

#[derive(Debug)]
enum CoordRecord {
    Prepare(PrepareRecord),
    Commit(u64),
}

fn encode_prepare(txn_id: u64, parts: &[(usize, WriteBatch)], floors: &[SeqNo]) -> Vec<u8> {
    let mut buf = vec![PREPARE_TAG];
    put_fixed64(&mut buf, txn_id);
    put_varint32(&mut buf, parts.len() as u32);
    for ((shard, batch), floor) in parts.iter().zip(floors) {
        put_varint32(&mut buf, *shard as u32);
        put_fixed64(&mut buf, *floor);
        let bytes = batch.encode(0);
        put_fixed32(&mut buf, crc32c::value(&bytes));
        put_length_prefixed_slice(&mut buf, &bytes);
    }
    buf
}

fn encode_commit(txn_id: u64) -> Vec<u8> {
    let mut buf = vec![COMMIT_TAG];
    put_fixed64(&mut buf, txn_id);
    buf
}

fn decode_record(mut src: &[u8]) -> Result<CoordRecord> {
    let (&tag, rest) = src
        .split_first()
        .ok_or_else(|| Error::corruption("empty coordinator record"))?;
    src = rest;
    match tag {
        PREPARE_TAG => {
            let txn_id = get_fixed64(&mut src)?;
            let n = get_varint32(&mut src)? as usize;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                let shard = get_varint32(&mut src)? as usize;
                let floor = get_fixed64(&mut src)?;
                let digest = get_fixed32(&mut src)?;
                let bytes = get_length_prefixed_slice(&mut src)?;
                if crc32c::value(bytes) != digest {
                    return Err(Error::corruption(format!(
                        "coordinator prepare {txn_id}: sub-batch digest mismatch"
                    )));
                }
                let (_, batch) = WriteBatch::decode(bytes)?;
                parts.push(PreparedPart {
                    shard,
                    floor,
                    batch,
                });
            }
            Ok(CoordRecord::Prepare(PrepareRecord { txn_id, parts }))
        }
        COMMIT_TAG => Ok(CoordRecord::Commit(get_fixed64(&mut src)?)),
        other => Err(Error::corruption(format!(
            "unknown coordinator record tag {other}"
        ))),
    }
}

struct CoordState {
    log: LogWriter,
    next_txn: u64,
    /// Prepared-but-not-yet-resolved transactions. The log only rotates
    /// when this is zero, so rotation never drops a live prepare.
    outstanding: usize,
}

/// The `DbShards` two-phase-commit coordinator: owns the coordinator
/// log and drives prepare → per-shard apply → commit for multi-shard
/// batches, plus roll-forward recovery at open.
pub(crate) struct Coordinator {
    env: EnvRef,
    path: String,
    state: Mutex<CoordState>,
    /// Multi-shard batches committed through the 2PC path.
    pub commits: AtomicU64,
    /// Prepared transactions completed by roll-forward at open.
    pub rollforwards: AtomicU64,
}

impl Coordinator {
    /// Recover any outstanding prepared transactions against `shards`
    /// (which must already be open), then start a fresh coordinator
    /// log. Called from `DbShards::open`.
    pub fn open(env: &EnvRef, root: &str, shards: &[Db]) -> Result<Coordinator> {
        let path = format!("{root}/{COORD_LOG}");
        let rollforwards = AtomicU64::new(0);
        if env.file_exists(&path) {
            let data = env.read_file(&path, IoClass::Wal)?;
            let (records, _torn_tail) = read_all_records(data);
            let mut prepared: BTreeMap<u64, PrepareRecord> = BTreeMap::new();
            for rec in &records {
                match decode_record(rec) {
                    Ok(CoordRecord::Prepare(p)) => {
                        prepared.insert(p.txn_id, p);
                    }
                    Ok(CoordRecord::Commit(id)) => {
                        prepared.remove(&id);
                    }
                    // A torn or corrupt record describes a transaction
                    // whose prepare never became durable — nothing was
                    // applied to any shard, so discarding it preserves
                    // all-or-nothing.
                    Err(_) => {}
                }
            }
            for p in prepared.values() {
                Self::roll_forward(shards, p)?;
                rollforwards.fetch_add(1, Ordering::Relaxed);
            }
            env.remove_file(&path)?;
        }
        let log = LogWriter::new(env.new_writable(&path, IoClass::Wal)?);
        Ok(Coordinator {
            env: env.clone(),
            path,
            state: Mutex::new(CoordState {
                log,
                next_txn: 1,
                outstanding: 0,
            }),
            commits: AtomicU64::new(0),
            rollforwards,
        })
    }

    /// Complete a prepared transaction found in the log at open: apply
    /// each sub-batch entry whose key has no durable version newer than
    /// the prepare-time floor. A newer version means the entry already
    /// landed before the crash (the common case) or was superseded by a
    /// later durable write — re-applying would resurrect stale data.
    fn roll_forward(shards: &[Db], p: &PrepareRecord) -> Result<()> {
        let opts = WriteOptions {
            sync: true,
            disable_throttle: true,
            txn_id: Some(p.txn_id),
        };
        for part in &p.parts {
            let db = shards.get(part.shard).ok_or_else(|| {
                Error::corruption(format!(
                    "coordinator prepare {} references shard {} of {}",
                    p.txn_id,
                    part.shard,
                    shards.len()
                ))
            })?;
            let mut redo = WriteBatch::new();
            for e in part.batch.entries() {
                let newer = db
                    .lsm()
                    .latest_seq(&e.key)?
                    .is_some_and(|seq| seq > part.floor);
                if newer {
                    continue;
                }
                match e.vtype {
                    ValueType::Value => redo.put(&e.key, e.value.clone()),
                    ValueType::Deletion => redo.delete(&e.key),
                    ValueType::ValueRef => {
                        return Err(Error::corruption(
                            "coordinator log contains a value-reference entry",
                        ))
                    }
                }
            }
            if !redo.is_empty() {
                db.write_with(&opts, redo)?;
            }
        }
        Ok(())
    }

    /// Commit a multi-shard batch (≥ 2 non-empty parts) atomically:
    /// fsync a prepare record carrying the full redo payload, apply
    /// each sub-batch to its shard with a forced WAL sync, then append
    /// an (unsynced) commit record. If a shard apply fails, the error
    /// is surfaced and the prepare stays outstanding — the next open
    /// rolls the batch forward, so the write's fate is *indeterminate
    /// until restart*, never partially durable forever.
    ///
    /// Shard syncs are forced regardless of `opts.sync` because the
    /// commit record asserts "every part is durable"; this is why a
    /// multi-shard receipt always reports `synced = true`.
    pub fn commit(
        &self,
        shards: &[Db],
        parts: Vec<(usize, WriteBatch)>,
        opts: &WriteOptions,
    ) -> Result<WriteReceipt> {
        debug_assert!(
            parts.len() >= 2,
            "single-shard batches skip the coordinator"
        );
        let txn_id;
        {
            let mut st = self.state.lock();
            txn_id = st.next_txn;
            st.next_txn += 1;
            let floors: Vec<SeqNo> = parts
                .iter()
                .map(|(s, _)| shards[*s].lsm().last_sequence())
                .collect();
            let rec = encode_prepare(txn_id, &parts, &floors);
            st.log.add_record(&rec)?;
            st.log.sync()?;
            st.outstanding += 1;
        }
        let shard_opts = WriteOptions {
            sync: true,
            disable_throttle: opts.disable_throttle,
            txn_id: Some(txn_id),
        };
        let mut seq = 0;
        let mut group_len = 0;
        let mut apply_err: Option<Error> = None;
        for (shard, batch) in parts {
            match shards[shard].write_with(&shard_opts, batch) {
                Ok(r) => {
                    seq = seq.max(r.seq);
                    group_len += r.group_len;
                }
                Err(e) => {
                    apply_err = Some(e);
                    break;
                }
            }
        }
        {
            let mut st = self.state.lock();
            st.outstanding -= 1;
            if apply_err.is_none() {
                // Losing this record is safe: roll-forward is idempotent
                // under the per-key floor guard. So it rides the next
                // prepare's fsync instead of paying its own.
                st.log.add_record(&encode_commit(txn_id))?;
                if st.outstanding == 0 && st.log.len() > COORD_ROTATE_BYTES {
                    self.rotate_locked(&mut st)?;
                }
            }
        }
        if let Some(e) = apply_err {
            return Err(e);
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(WriteReceipt {
            seq,
            group_len,
            synced: true,
        })
    }

    /// Replace the log with an empty one. Only legal with zero
    /// outstanding prepares: every record is then resolved history, and
    /// a crash between delete and recreate just means an absent log at
    /// the next open (treated as empty).
    fn rotate_locked(&self, st: &mut CoordState) -> Result<()> {
        self.env.remove_file(&self.path)?;
        st.log = LogWriter::new(self.env.new_writable(&self.path, IoClass::Wal)?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_parts() -> Vec<(usize, WriteBatch)> {
        let mut b0 = WriteBatch::new();
        b0.put(b"alpha", &b"1"[..]);
        b0.delete(b"beta");
        let mut b3 = WriteBatch::new();
        b3.put(b"gamma", &b"33"[..]);
        vec![(0, b0), (3, b3)]
    }

    #[test]
    fn prepare_record_roundtrip() {
        let parts = sample_parts();
        let rec = encode_prepare(42, &parts, &[17, 900]);
        match decode_record(&rec).unwrap() {
            CoordRecord::Prepare(p) => {
                assert_eq!(p.txn_id, 42);
                assert_eq!(p.parts.len(), 2);
                assert_eq!(p.parts[0].shard, 0);
                assert_eq!(p.parts[0].floor, 17);
                assert_eq!(p.parts[0].batch.count(), 2);
                assert_eq!(p.parts[1].shard, 3);
                assert_eq!(p.parts[1].floor, 900);
                assert_eq!(p.parts[1].batch.entries()[0].key, b"gamma");
            }
            CoordRecord::Commit(_) => panic!("decoded as commit"),
        }
    }

    #[test]
    fn commit_record_roundtrip() {
        match decode_record(&encode_commit(7)).unwrap() {
            CoordRecord::Commit(id) => assert_eq!(id, 7),
            CoordRecord::Prepare(_) => panic!("decoded as prepare"),
        }
    }

    #[test]
    fn corrupt_sub_batch_is_rejected() {
        let rec = encode_prepare(1, &sample_parts(), &[0, 0]);
        // Flip a byte in the tail (inside the last sub-batch payload):
        // the digest check must reject the whole record.
        let mut bad = rec.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let err = decode_record(&bad).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "got {err}");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(decode_record(&[9, 0, 0]).is_err());
        assert!(decode_record(&[]).is_err());
    }
}
