//! IndexDecoupledTable (DTable) — the Scavenger key SST (paper §III-B2).
//!
//! Baseline key SSTs (BTable) interleave two very different entry classes
//! in the same data blocks: **KF entries** (`key → value-file reference`,
//! tiny) and **KV records** (small inline values, bulky). A GC-Lookup only
//! needs KF entries, yet every block it touches is mostly small-value
//! payload — wasting I/O and cache space (the paper measured a 22% cache
//! hit-ratio drop under Mixed-8K).
//!
//! The DTable physically segregates the two classes:
//!
//! ```text
//! [kv block | kf block]*  [filter.kv] [filter.kf] [props] [kf index]
//!                         [metaindex] [kv index] [footer]
//! ```
//!
//! Each stream has its own index and bloom filter. KF blocks are fetched
//! with **high cache priority** so validation traffic stays resident.
//! Tombstones travel in the KF stream (they are index-only entries).
//! A point lookup consults both streams (bloom-guarded) and returns the
//! smaller candidate under the internal-key order, so lookups remain exact
//! even when a key alternates between inline and separated values.

use crate::block::Block;
use crate::blockio::{read_block, write_block};
use crate::btable::{
    read_footer, BlockCache, BlockFetcher, BuiltTable, PropsTracker, TableOptions, TwoLevelIter,
};
use crate::cache::CachePriority;
use crate::filter::{BloomBuilder, BloomReader};
use crate::handle::Footer;
use crate::props::{meta_keys, metaindex, TableProps, TableType};
use crate::{BlockKind, KeyCmp};
use bytes::Bytes;
use scavenger_env::{RandomAccessFile, WritableFile};
use scavenger_util::ikey::{extract_user_key, parse_internal_key, ValueType};
use scavenger_util::{Error, Result};
use std::cmp::Ordering;
use std::sync::Arc;

use crate::block::BlockBuilder;
use crate::handle::BlockHandle;

/// One entry stream under construction (kv or kf).
struct StreamBuilder {
    data: BlockBuilder,
    index: BlockBuilder,
    bloom: BloomBuilder,
    block_size: usize,
}

impl StreamBuilder {
    fn new(block_size: usize, restart: usize, bloom_bits: usize) -> Self {
        StreamBuilder {
            data: BlockBuilder::new(restart),
            index: BlockBuilder::new(1),
            bloom: BloomBuilder::new(bloom_bits.max(1)),
            block_size,
        }
    }

    fn add(
        &mut self,
        file: &mut dyn WritableFile,
        key: &[u8],
        value: &[u8],
        ukey: &[u8],
    ) -> Result<()> {
        self.bloom.add_key(ukey);
        self.data.add(key, value);
        if self.data.size_estimate() >= self.block_size {
            self.flush(file)?;
        }
        Ok(())
    }

    fn flush(&mut self, file: &mut dyn WritableFile) -> Result<()> {
        if self.data.is_empty() {
            return Ok(());
        }
        let last_key = self.data.last_key().to_vec();
        let payload = self.data.finish();
        let handle = write_block(file, &payload)?;
        self.index.add(&last_key, &handle.encode());
        Ok(())
    }
}

/// Streaming builder for an IndexDecoupledTable.
pub struct DTableBuilder {
    file: Box<dyn WritableFile>,
    kv: StreamBuilder,
    kf: StreamBuilder,
    tracker: PropsTracker,
    smallest: Option<Vec<u8>>,
    largest: Vec<u8>,
    last_key: Vec<u8>,
    num_entries: u64,
}

impl DTableBuilder {
    /// Start building into `file`. DTables always use internal-key order
    /// (routing depends on the internal key's value type).
    pub fn new(file: Box<dyn WritableFile>, opts: TableOptions) -> Self {
        let bs = opts.block_size;
        let ri = opts.restart_interval;
        let bits = opts.bloom_bits_per_key;
        let _ = opts;
        DTableBuilder {
            file,
            kv: StreamBuilder::new(bs, ri, bits),
            // KF entries are tiny; smaller blocks keep point validation
            // reads cheap while still batching well.
            kf: StreamBuilder::new(bs, ri, bits),
            tracker: PropsTracker::new(TableType::DTable, KeyCmp::Internal),
            smallest: None,
            largest: Vec::new(),
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Append an entry in internal-key order. Routing: `ValueRef` and
    /// `Deletion` entries go to the KF stream, inline `Value` entries to
    /// the KV stream.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(
            self.last_key.is_empty() || KeyCmp::Internal.cmp(&self.last_key, key).is_lt(),
            "keys must be added in strictly increasing order"
        );
        let parsed = parse_internal_key(key)?;
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest.clear();
        self.largest.extend_from_slice(key);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.tracker.observe(key, value);
        self.num_entries += 1;
        match parsed.vtype {
            ValueType::Value => self.kv.add(self.file.as_mut(), key, value, parsed.user_key),
            ValueType::ValueRef | ValueType::Deletion => {
                self.kf.add(self.file.as_mut(), key, value, parsed.user_key)
            }
        }
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written so far (lower bound on final size).
    pub fn estimated_size(&self) -> u64 {
        self.file.len() + (self.kv.data.size_estimate() + self.kf.data.size_estimate()) as u64
    }

    /// Finish the table.
    pub fn finish(mut self) -> Result<BuiltTable> {
        self.kv.flush(self.file.as_mut())?;
        self.kf.flush(self.file.as_mut())?;
        let kv_filter = write_block(self.file.as_mut(), &self.kv.bloom.finish())?;
        let kf_filter = write_block(self.file.as_mut(), &self.kf.bloom.finish())?;
        let props = self.tracker.finish();
        let props_handle = write_block(self.file.as_mut(), &props.encode())?;
        let kf_index_payload = self.kf.index.finish();
        let kf_index = write_block(self.file.as_mut(), &kf_index_payload)?;
        let meta = metaindex::encode(&[
            (meta_keys::FILTER_KV, kv_filter),
            (meta_keys::FILTER_KF, kf_filter),
            (meta_keys::PROPS, props_handle),
            (meta_keys::KF_INDEX, kf_index),
        ]);
        let metaindex_handle = write_block(self.file.as_mut(), &meta)?;
        let kv_index_payload = self.kv.index.finish();
        let kv_index = write_block(self.file.as_mut(), &kv_index_payload)?;
        let footer = Footer {
            metaindex: metaindex_handle,
            index: kv_index,
        };
        self.file.append(&footer.encode())?;
        self.file.sync()?;
        Ok(BuiltTable {
            file_size: self.file.len(),
            smallest: self.smallest.unwrap_or_default(),
            largest: self.largest,
            props,
        })
    }
}

/// An open IndexDecoupledTable.
pub struct DTableReader {
    fetcher: BlockFetcher,
    kv_index: Block,
    kf_index: Block,
    kv_filter: Option<Bytes>,
    kf_filter: Option<Bytes>,
    props: TableProps,
}

impl DTableReader {
    /// Open a DTable file; indexes, filters, and props are pinned.
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        file_number: u64,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<DTableReader> {
        let footer = read_footer(file.as_ref())?;
        let fetcher = BlockFetcher {
            file,
            cache,
            file_number,
        };
        let kv_index = Block::new(read_block(fetcher.file.as_ref(), footer.index)?)?;
        let meta = metaindex::decode(&read_block(fetcher.file.as_ref(), footer.metaindex)?)?;
        let props_handle = metaindex::find(&meta, meta_keys::PROPS)
            .ok_or_else(|| Error::corruption("missing props block"))?;
        let props = TableProps::decode(&read_block(fetcher.file.as_ref(), props_handle)?)?;
        if props.table_type != TableType::DTable {
            return Err(Error::corruption("not a DTable file"));
        }
        let kf_index_handle = metaindex::find(&meta, meta_keys::KF_INDEX)
            .ok_or_else(|| Error::corruption("missing kf index"))?;
        let kf_index = Block::new(read_block(fetcher.file.as_ref(), kf_index_handle)?)?;
        let kv_filter = match metaindex::find(&meta, meta_keys::FILTER_KV) {
            Some(h) => Some(read_block(fetcher.file.as_ref(), h)?),
            None => None,
        };
        let kf_filter = match metaindex::find(&meta, meta_keys::FILTER_KF) {
            Some(h) => Some(read_block(fetcher.file.as_ref(), h)?),
            None => None,
        };
        Ok(DTableReader {
            fetcher,
            kv_index,
            kf_index,
            kv_filter,
            kf_filter,
            props,
        })
    }

    /// Table properties.
    pub fn props(&self) -> &TableProps {
        &self.props
    }

    /// Bloom check across both streams.
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        let kf = self
            .kf_filter
            .as_ref()
            .map(|f| BloomReader::new(f).may_contain(user_key))
            .unwrap_or(true);
        if kf {
            return true;
        }
        self.kv_filter
            .as_ref()
            .map(|f| BloomReader::new(f).may_contain(user_key))
            .unwrap_or(true)
    }

    fn search_stream(
        &self,
        index: &Block,
        filter: &Option<Bytes>,
        kind: BlockKind,
        pri: CachePriority,
        target: &[u8],
        ukey: &[u8],
    ) -> Result<Option<(Vec<u8>, Bytes)>> {
        if let Some(f) = filter {
            if !BloomReader::new(f).may_contain(ukey) {
                return Ok(None);
            }
        }
        let mut index_iter = index.iter(KeyCmp::Internal);
        index_iter.seek(target);
        while index_iter.valid() {
            let handle = BlockHandle::decode_exact(&index_iter.value())?;
            let block = self.fetcher.fetch(handle, kind, pri)?;
            let mut it = block.iter(KeyCmp::Internal);
            it.seek(target);
            if it.valid() {
                return Ok(Some((it.key().to_vec(), it.value())));
            }
            index_iter.next();
        }
        Ok(None)
    }

    /// Point lookup: first entry (across both streams) with internal key
    /// `>= target`. KF blocks are fetched with high cache priority.
    pub fn get(&self, target: &[u8]) -> Result<Option<(Vec<u8>, Bytes)>> {
        let ukey = extract_user_key(target);
        let kf = self.search_stream(
            &self.kf_index,
            &self.kf_filter,
            BlockKind::KeyFile,
            CachePriority::High,
            target,
            ukey,
        )?;
        // Fast path: if the KF stream produced an exact user-key match we
        // still need the KV candidate only if it could hold a *newer*
        // version of the same user key; the bloom check makes this cheap
        // for keys that never stored inline values.
        let kv = self.search_stream(
            &self.kv_index,
            &self.kv_filter,
            BlockKind::Data,
            CachePriority::Low,
            target,
            ukey,
        )?;
        Ok(match (kf, kv) {
            (Some(a), Some(b)) => {
                if KeyCmp::Internal.cmp(&a.0, &b.0) == Ordering::Greater {
                    Some(b)
                } else {
                    Some(a)
                }
            }
            (a, b) => a.or(b),
        })
    }

    /// Iterate both streams merged in internal-key order. The iterator is
    /// self-contained (owns its fetchers).
    pub fn iter(&self) -> DTableIter {
        DTableIter {
            kf: TwoLevelIter::new(
                self.fetcher.clone(),
                self.kf_index.clone(),
                KeyCmp::Internal,
                BlockKind::KeyFile,
                CachePriority::High,
            ),
            kv: TwoLevelIter::new(
                self.fetcher.clone(),
                self.kv_index.clone(),
                KeyCmp::Internal,
                BlockKind::Data,
                CachePriority::Low,
            ),
            on_kf: true,
        }
    }
}

/// Merged iterator over a DTable's KF and KV streams.
pub struct DTableIter {
    kf: TwoLevelIter,
    kv: TwoLevelIter,
    on_kf: bool,
}

impl DTableIter {
    fn pick(&mut self) {
        self.on_kf = match (self.kf.valid(), self.kv.valid()) {
            (true, true) => KeyCmp::Internal.cmp(self.kf.key(), self.kv.key()) != Ordering::Greater,
            (true, false) => true,
            _ => false,
        };
    }

    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.kf.valid() || self.kv.valid()
    }

    /// Position on the first entry.
    pub fn seek_to_first(&mut self) {
        self.kf.seek_to_first();
        self.kv.seek_to_first();
        self.pick();
    }

    /// Position on the first entry `>= target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.kf.seek(target);
        self.kv.seek(target);
        self.pick();
    }

    /// Advance.
    pub fn next(&mut self) {
        if self.on_kf {
            self.kf.next();
        } else {
            self.kv.next();
        }
        self.pick();
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        if self.on_kf {
            self.kf.key()
        } else {
            self.kv.key()
        }
    }

    /// Current value.
    pub fn value(&self) -> Bytes {
        if self.on_kf {
            self.kf.value()
        } else {
            self.kv.value()
        }
    }

    /// Any error from either stream.
    pub fn status(&self) -> Result<()> {
        self.kf.status()?;
        self.kv.status()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::{Env, IoClass, MemEnv};
    use scavenger_util::ikey::{make_internal_key, ValueRef};

    fn opts() -> TableOptions {
        TableOptions {
            block_size: 512,
            ..TableOptions::default()
        }
    }

    /// Build a table mixing inline small values and refs, like a
    /// KV-separated index LSM under the paper's Mixed workload.
    fn mixed_entries(n: usize) -> Vec<(Vec<u8>, Vec<u8>, ValueType)> {
        (0..n)
            .map(|i| {
                let key = format!("key{i:05}");
                if i % 2 == 0 {
                    // Small inline value.
                    (
                        make_internal_key(key.as_bytes(), 100 + i as u64, ValueType::Value),
                        vec![b'v'; 100 + (i % 100)],
                        ValueType::Value,
                    )
                } else {
                    let r = ValueRef {
                        file: 3,
                        size: 16384,
                        offset: (i * 16384) as u64,
                    };
                    (
                        make_internal_key(key.as_bytes(), 100 + i as u64, ValueType::ValueRef),
                        r.encode(),
                        ValueType::ValueRef,
                    )
                }
            })
            .collect()
    }

    fn build(env: &MemEnv, path: &str, es: &[(Vec<u8>, Vec<u8>, ValueType)]) -> BuiltTable {
        let f = env.new_writable(path, IoClass::Flush).unwrap();
        let mut b = DTableBuilder::new(f, opts());
        for (k, v, _) in es {
            b.add(k, v).unwrap();
        }
        b.finish().unwrap()
    }

    fn open(env: &MemEnv, path: &str, cache: Option<Arc<BlockCache>>) -> DTableReader {
        let file = env.open_random_access(path, IoClass::FgIndexRead).unwrap();
        DTableReader::open(file, 5, cache).unwrap()
    }

    #[test]
    fn build_and_get_both_streams() {
        let env = MemEnv::new();
        let es = mixed_entries(400);
        let built = build(&env, "d.sst", &es);
        assert_eq!(built.props.table_type, TableType::DTable);
        assert_eq!(built.props.num_refs, 200);
        assert_eq!(built.props.num_inline, 200);

        let r = open(&env, "d.sst", None);
        for (k, v, _) in &es {
            let (fk, fv) = r.get(k).unwrap().expect("entry");
            assert_eq!(&fk, k);
            assert_eq!(&fv[..], v.as_slice());
        }
    }

    #[test]
    fn lookup_of_ref_keys_avoids_kv_blocks() {
        let env = MemEnv::new();
        let es = mixed_entries(2000);
        build(&env, "d.sst", &es);
        let cache = Arc::new(BlockCache::with_capacity(4 << 20));
        let r = open(&env, "d.sst", Some(cache));

        // Warm nothing; look up only ref keys and count read bytes.
        let before = env.io_stats().snapshot();
        for (k, _, _t) in es
            .iter()
            .filter(|(_, _, t)| *t == ValueType::ValueRef)
            .take(200)
        {
            r.get(k).unwrap().unwrap();
        }
        let d = env.io_stats().snapshot().delta(&before);
        let ref_lookup_bytes = d.class(IoClass::FgIndexRead).read_bytes;

        // Compare against an equivalent BTable where streams interleave.
        let f = env.new_writable("b.sst", IoClass::Flush).unwrap();
        let mut bb = crate::btable::BTableBuilder::new(
            f,
            TableOptions {
                block_size: 512,
                ..TableOptions::default()
            },
        );
        for (k, v, _) in &es {
            bb.add(k, v).unwrap();
        }
        bb.finish().unwrap();
        let bfile = env
            .open_random_access("b.sst", IoClass::FgIndexRead)
            .unwrap();
        let cache2 = Arc::new(BlockCache::with_capacity(4 << 20));
        let br =
            crate::btable::BTableReader::open(bfile, 6, Some(cache2), KeyCmp::Internal).unwrap();
        let before = env.io_stats().snapshot();
        for (k, _, _t) in es
            .iter()
            .filter(|(_, _, t)| *t == ValueType::ValueRef)
            .take(200)
        {
            br.get(k).unwrap().unwrap();
        }
        let d = env.io_stats().snapshot().delta(&before);
        let btable_bytes = d.class(IoClass::FgIndexRead).read_bytes;

        assert!(
            ref_lookup_bytes * 2 < btable_bytes,
            "DTable ref lookups should read far less: dtable={ref_lookup_bytes} btable={btable_bytes}"
        );
    }

    #[test]
    fn tombstones_live_in_kf_stream_and_are_found() {
        let env = MemEnv::new();
        let f = env.new_writable("d.sst", IoClass::Flush).unwrap();
        let mut b = DTableBuilder::new(f, opts());
        b.add(&make_internal_key(b"a", 5, ValueType::Deletion), b"")
            .unwrap();
        b.add(&make_internal_key(b"b", 4, ValueType::Value), b"small")
            .unwrap();
        let built = b.finish().unwrap();
        assert_eq!(built.props.num_deletions, 1);

        let r = open(&env, "d.sst", None);
        let t = make_internal_key(b"a", 100, ValueType::ValueRef);
        let (k, _) = r.get(&t).unwrap().unwrap();
        let p = parse_internal_key(&k).unwrap();
        assert_eq!(p.user_key, b"a");
        assert_eq!(p.vtype, ValueType::Deletion);
    }

    #[test]
    fn newest_version_wins_across_streams() {
        // Key flip-flops: old separated value (seq 5), newer inline (seq 9).
        let env = MemEnv::new();
        let f = env.new_writable("d.sst", IoClass::Flush).unwrap();
        let mut b = DTableBuilder::new(f, opts());
        let r9 = make_internal_key(b"k", 9, ValueType::Value);
        let r5 = make_internal_key(b"k", 5, ValueType::ValueRef);
        b.add(&r9, b"new-inline").unwrap();
        b.add(
            &r5,
            &ValueRef {
                file: 1,
                size: 100,
                offset: 0,
            }
            .encode(),
        )
        .unwrap();
        b.finish().unwrap();

        let r = open(&env, "d.sst", None);
        let t = make_internal_key(b"k", 100, ValueType::ValueRef);
        let (k, v) = r.get(&t).unwrap().unwrap();
        let p = parse_internal_key(&k).unwrap();
        assert_eq!(p.seq, 9);
        assert_eq!(p.vtype, ValueType::Value);
        assert_eq!(&v[..], b"new-inline");

        // At snapshot seq 6, the ref version is visible instead.
        let t = make_internal_key(b"k", 6, ValueType::ValueRef);
        let (k, _) = r.get(&t).unwrap().unwrap();
        assert_eq!(parse_internal_key(&k).unwrap().seq, 5);
    }

    #[test]
    fn merged_iterator_yields_global_order() {
        let env = MemEnv::new();
        let es = mixed_entries(500);
        build(&env, "d.sst", &es);
        let r = open(&env, "d.sst", None);
        let mut it = r.iter();
        it.seek_to_first();
        for (k, v, _) in &es {
            assert!(it.valid());
            assert_eq!(it.key(), k.as_slice());
            assert_eq!(&it.value()[..], v.as_slice());
            it.next();
        }
        assert!(!it.valid());
        it.status().unwrap();
    }

    #[test]
    fn merged_iterator_seek() {
        let env = MemEnv::new();
        let es = mixed_entries(100);
        build(&env, "d.sst", &es);
        let r = open(&env, "d.sst", None);
        let mut it = r.iter();
        it.seek(&es[37].0);
        assert!(it.valid());
        assert_eq!(it.key(), es[37].0.as_slice());
        // Seek past everything.
        it.seek(&make_internal_key(b"zzzz", 0, ValueType::Value));
        assert!(!it.valid());
    }

    #[test]
    fn all_ref_table_degenerates_gracefully() {
        // A DTable holding only refs (pure large-value workload) behaves
        // like a compact KF-only table.
        let env = MemEnv::new();
        let f = env.new_writable("d.sst", IoClass::Flush).unwrap();
        let mut b = DTableBuilder::new(f, opts());
        let mut keys = Vec::new();
        for i in 0..100 {
            let k = make_internal_key(format!("k{i:03}").as_bytes(), i, ValueType::ValueRef);
            b.add(
                &k,
                &ValueRef {
                    file: 2,
                    size: 1 << 14,
                    offset: 0,
                }
                .encode(),
            )
            .unwrap();
            keys.push(k);
        }
        b.finish().unwrap();
        let r = open(&env, "d.sst", None);
        for k in &keys {
            assert!(r.get(k).unwrap().is_some());
        }
        let mut it = r.iter();
        it.seek_to_first();
        let mut n = 0;
        while it.valid() {
            n += 1;
            it.next();
        }
        assert_eq!(n, 100);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_dtable_roundtrip_mixed_routing(
            kinds in proptest::collection::vec(0u8..3, 1..80),
        ) {
            let env = MemEnv::new();
            let entries: Vec<(Vec<u8>, Vec<u8>)> = kinds
                .iter()
                .enumerate()
                .map(|(i, kind)| {
                    let ukey = format!("user{i:06}");
                    match kind {
                        0 => (
                            make_internal_key(ukey.as_bytes(), i as u64 + 1, ValueType::Value),
                            vec![b'v'; 50 + i % 200],
                        ),
                        1 => (
                            make_internal_key(ukey.as_bytes(), i as u64 + 1, ValueType::ValueRef),
                            ValueRef { file: 3, size: 1 << 14, offset: i as u64 }.encode(),
                        ),
                        _ => (
                            make_internal_key(ukey.as_bytes(), i as u64 + 1, ValueType::Deletion),
                            Vec::new(),
                        ),
                    }
                })
                .collect();
            let f = env.new_writable("p.sst", IoClass::Flush).unwrap();
            let mut b = DTableBuilder::new(f, opts());
            for (k, v) in &entries {
                b.add(k, v).unwrap();
            }
            b.finish().unwrap();
            let file = env.open_random_access("p.sst", IoClass::FgIndexRead).unwrap();
            let r = DTableReader::open(file, 1, None).unwrap();
            // Exact point lookups across all three entry kinds.
            for (k, v) in &entries {
                let (fk, fv) = r.get(k).unwrap().unwrap();
                proptest::prop_assert_eq!(&fk, k);
                proptest::prop_assert_eq!(&fv[..], v.as_slice());
            }
            // Merged iteration yields global internal-key order.
            let mut it = r.iter();
            it.seek_to_first();
            for (k, _) in &entries {
                proptest::prop_assert!(it.valid());
                proptest::prop_assert_eq!(it.key(), k.as_slice());
                it.next();
            }
            proptest::prop_assert!(!it.valid());
        }
    }

    #[test]
    fn bloom_rejects_absent_user_keys() {
        let env = MemEnv::new();
        let es = mixed_entries(1000);
        build(&env, "d.sst", &es);
        let r = open(&env, "d.sst", None);
        let before = env.io_stats().snapshot();
        for i in 0..100 {
            let t = make_internal_key(format!("absent{i}").as_bytes(), 1, ValueType::Value);
            assert!(!r
                .get(&t)
                .unwrap()
                .map(|(k, _)| {
                    parse_internal_key(&k)
                        .unwrap()
                        .user_key
                        .starts_with(b"absent")
                })
                .unwrap_or(false));
        }
        let d = env.io_stats().snapshot().delta(&before);
        assert!(
            d.class(IoClass::FgIndexRead).read_ops <= 25,
            "bloom should stop most absent lookups, got {} reads",
            d.class(IoClass::FgIndexRead).read_ops
        );
    }
}
