//! SSTable formats for the Scavenger key-value store.
//!
//! Three on-disk table formats live here, all sharing the same block,
//! filter, footer, and cache machinery:
//!
//! * [`btable`] — **BlockBasedTable**: the RocksDB-style format used by the
//!   baseline engines for both key SSTs and value SSTs. Data blocks hold
//!   multiple entries; a sparse index maps the last key of each block to its
//!   handle.
//! * [`rtable`] — **RecordBasedTable** (paper §III-B1): the Scavenger value
//!   SST. Every record gets a *dense* index entry `(key → record handle)`,
//!   organised as a partitioned two-level index, so GC can read all keys of
//!   a file ("Lazy Read") without touching a single value byte.
//! * [`dtable`] — **IndexDecoupledTable** (paper §III-B2): the Scavenger key
//!   SST. Value references (KF entries) and inline small values (KV
//!   records) are physically segregated into separate block streams with
//!   separate indexes and bloom filters, so GC-Lookup reads only tiny,
//!   hot-cacheable KF blocks.
//!
//! Supporting modules: [`block`] (prefix-compressed blocks with restart
//! points), [`filter`] (bloom), [`handle`] (handles + footer), [`cache`]
//! (sharded two-priority LRU, mirroring RocksDB's high-pri pool), [`props`]
//! (table properties incl. the value-dependency list that powers
//! compensated-size compaction), and [`blockio`] (checksummed block I/O).

pub mod block;
pub mod blockio;
pub mod btable;
pub mod cache;
pub mod dtable;
pub mod filter;
pub mod handle;
pub mod props;
pub mod rtable;

use std::cmp::Ordering;

/// How keys inside a table are compared.
///
/// Key SSTs store *internal keys* (user key + seq/type trailer) and need
/// the internal ordering; value SSTs in this workspace also use internal
/// keys, but generic tooling and tests can use plain bytewise tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCmp {
    /// Plain `memcmp` ordering.
    Bytewise,
    /// Internal-key ordering: user key ascending, then seq/type descending.
    Internal,
}

impl KeyCmp {
    /// Compare two encoded keys under this ordering.
    #[inline]
    pub fn cmp(self, a: &[u8], b: &[u8]) -> Ordering {
        match self {
            KeyCmp::Bytewise => a.cmp(b),
            KeyCmp::Internal => scavenger_util::ikey::cmp_internal(a, b),
        }
    }
}

/// Identifies which logical stream of a table a block belongs to.
/// Used as part of the block-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Ordinary data / record block.
    Data,
    /// Index block or index partition.
    Index,
    /// DTable KF (key-file index entry) block.
    KeyFile,
}
