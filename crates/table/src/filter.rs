//! Bloom filter (LevelDB-style double hashing), 10 bits/key by default.
//!
//! One filter per table (or per DTable stream) over *user keys*, so point
//! lookups and GC-Lookups can skip files — and, for the DTable, skip whole
//! entry streams — that cannot contain the key.

/// Murmur-inspired hash used by the bloom filter (LevelDB's `Hash`).
pub fn bloom_hash(data: &[u8]) -> u32 {
    const SEED: u32 = 0xbc9f1d34;
    const M: u32 = 0xc6a4a793;
    let mut h = SEED ^ (data.len() as u32).wrapping_mul(M);
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        let w = u32::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut w = 0u32;
        for (i, &b) in rest.iter().enumerate() {
            w |= u32::from(b) << (8 * i);
        }
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 24;
    }
    h
}

/// Builds a bloom filter from a set of key hashes.
pub struct BloomBuilder {
    bits_per_key: usize,
    hashes: Vec<u32>,
}

impl BloomBuilder {
    /// `bits_per_key` controls the false-positive rate (10 ≈ 1%).
    pub fn new(bits_per_key: usize) -> Self {
        BloomBuilder {
            bits_per_key: bits_per_key.max(1),
            hashes: Vec::new(),
        }
    }

    /// Add a key.
    pub fn add_key(&mut self, key: &[u8]) {
        self.hashes.push(bloom_hash(key));
    }

    /// Number of keys added so far.
    pub fn num_keys(&self) -> usize {
        self.hashes.len()
    }

    /// Serialize the filter: bit array followed by a one-byte probe count.
    pub fn finish(&self) -> Vec<u8> {
        // k = bits_per_key * ln(2), clamped to [1, 30].
        let k = ((self.bits_per_key as f64 * 0.69) as usize).clamp(1, 30);
        let bits = (self.hashes.len() * self.bits_per_key).max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let mut out = vec![0u8; bytes + 1];
        out[bytes] = k as u8;
        for &h in &self.hashes {
            let mut h = h;
            let delta = h.rotate_right(17);
            for _ in 0..k {
                let pos = (h as usize) % bits;
                out[pos / 8] |= 1 << (pos % 8);
                h = h.wrapping_add(delta);
            }
        }
        out
    }
}

/// Query interface over a serialized bloom filter.
pub struct BloomReader<'a> {
    data: &'a [u8],
}

impl<'a> BloomReader<'a> {
    /// Wrap serialized filter bytes.
    pub fn new(data: &'a [u8]) -> Self {
        BloomReader { data }
    }

    /// May the filter contain `key`? False means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_hash(bloom_hash(key))
    }

    /// Same as [`may_contain`](Self::may_contain) given a precomputed hash.
    pub fn may_contain_hash(&self, mut h: u32) -> bool {
        if self.data.len() < 2 {
            return true; // degenerate filter: claim maybe
        }
        let bytes = self.data.len() - 1;
        let bits = bytes * 8;
        let k = self.data[bytes] as usize;
        if k > 30 {
            return true; // reserved for future encodings
        }
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let pos = (h as usize) % bits;
            if self.data[pos / 8] & (1 << (pos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn empty_filter_rejects_most_keys() {
        let b = BloomBuilder::new(10);
        let f = b.finish();
        let r = BloomReader::new(&f);
        let misses = (0..100).filter(|&i| !r.may_contain(&key(i))).count();
        assert!(misses > 90, "empty filter should reject nearly everything");
    }

    #[test]
    fn no_false_negatives() {
        for n in [1usize, 10, 100, 5000] {
            let mut b = BloomBuilder::new(10);
            for i in 0..n {
                b.add_key(&key(i as u64));
            }
            let f = b.finish();
            let r = BloomReader::new(&f);
            for i in 0..n {
                assert!(r.may_contain(&key(i as u64)), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let n = 10_000u64;
        let mut b = BloomBuilder::new(10);
        for i in 0..n {
            b.add_key(&key(i));
        }
        let f = b.finish();
        let r = BloomReader::new(&f);
        let fps = (n..2 * n).filter(|&i| r.may_contain(&key(i))).count();
        let rate = fps as f64 / n as f64;
        assert!(rate < 0.03, "false positive rate {rate} too high");
    }

    #[test]
    fn fewer_bits_means_more_false_positives() {
        let n = 5_000u64;
        let rate_for = |bits: usize| {
            let mut b = BloomBuilder::new(bits);
            for i in 0..n {
                b.add_key(&key(i));
            }
            let f = b.finish();
            let r = BloomReader::new(&f);
            (n..2 * n).filter(|&i| r.may_contain(&key(i))).count() as f64 / n as f64
        };
        assert!(rate_for(4) > rate_for(12));
    }

    #[test]
    fn hash_distributes_distinct_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(bloom_hash(&key(i)));
        }
        assert!(
            seen.len() > 995,
            "hash collisions too frequent: {}",
            seen.len()
        );
    }
}
