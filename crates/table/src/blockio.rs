//! Checksummed block I/O: every block (and every RTable record) is written
//! as `payload ++ type_byte ++ masked_crc32c`, and verified on read.

use crate::handle::BlockHandle;
use bytes::Bytes;
use scavenger_env::{RandomAccessFile, WritableFile};
use scavenger_util::{crc32c, Error, Result};

/// Size of the per-block trailer: 1 type byte + 4 CRC bytes.
pub const BLOCK_TRAILER_LEN: usize = 5;

/// Block payload type byte. Only `0` (uncompressed) is currently produced;
/// the byte exists so compression can be added without a format break.
pub const BLOCK_TYPE_RAW: u8 = 0;

/// Append a block to `file`, returning its handle.
pub fn write_block(file: &mut dyn WritableFile, payload: &[u8]) -> Result<BlockHandle> {
    let mut buf = Vec::with_capacity(payload.len() + BLOCK_TRAILER_LEN);
    let handle = stage_block(&mut buf, file.len(), payload);
    file.append(&buf)?;
    Ok(handle)
}

/// Encode a block (`payload ++ trailer`) into `buf` without touching the
/// file, returning the handle the block will have once `buf` is appended
/// to a file whose current length is `base`. Batched writers stage many
/// blocks this way and issue one `append` per batch instead of one (or
/// two) per block; the resulting file bytes are identical to repeated
/// [`write_block`] calls.
pub fn stage_block(buf: &mut Vec<u8>, base: u64, payload: &[u8]) -> BlockHandle {
    let offset = base + buf.len() as u64;
    let mut trailer = [0u8; BLOCK_TRAILER_LEN];
    trailer[0] = BLOCK_TYPE_RAW;
    let crc = crc32c::extend(crc32c::value(payload), &trailer[..1]);
    trailer[1..].copy_from_slice(&crc32c::mask(crc).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&trailer);
    BlockHandle::new(offset, payload.len() as u64)
}

/// Read and verify the block at `handle`.
pub fn read_block(file: &dyn RandomAccessFile, handle: BlockHandle) -> Result<Bytes> {
    let raw = file.read_at(handle.offset, handle.size as usize + BLOCK_TRAILER_LEN)?;
    verify_block(&raw, handle)
}

/// Verify an already-fetched `payload ++ trailer` buffer.
pub fn verify_block(raw: &Bytes, handle: BlockHandle) -> Result<Bytes> {
    let n = handle.size as usize;
    if raw.len() != n + BLOCK_TRAILER_LEN {
        return Err(Error::corruption("short block read"));
    }
    let block_type = raw[n];
    if block_type != BLOCK_TYPE_RAW {
        return Err(Error::corruption(format!(
            "unknown block type {block_type}"
        )));
    }
    let stored = u32::from_le_bytes(raw[n + 1..n + 5].try_into().unwrap());
    let actual = crc32c::extend(crc32c::value(&raw[..n]), &raw[n..n + 1]);
    if crc32c::unmask(stored) != actual {
        return Err(Error::corruption(format!(
            "block checksum mismatch at offset {}",
            handle.offset
        )));
    }
    Ok(raw.slice(0..n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::{Env, IoClass, MemEnv};

    #[test]
    fn write_read_roundtrip() {
        let env = MemEnv::new();
        let mut w = env.new_writable("f", IoClass::Flush).unwrap();
        let h1 = write_block(w.as_mut(), b"first block").unwrap();
        let h2 = write_block(w.as_mut(), b"second").unwrap();
        drop(w);
        let r = env.open_random_access("f", IoClass::FgIndexRead).unwrap();
        assert_eq!(&read_block(r.as_ref(), h1).unwrap()[..], b"first block");
        assert_eq!(&read_block(r.as_ref(), h2).unwrap()[..], b"second");
        assert_eq!(h2.offset, h1.size + BLOCK_TRAILER_LEN as u64);
    }

    #[test]
    fn corruption_detected() {
        let env = MemEnv::new();
        let mut w = env.new_writable("f", IoClass::Flush).unwrap();
        let h = write_block(w.as_mut(), b"data to protect").unwrap();
        drop(w);
        env.corrupt_byte("f", 3).unwrap();
        let r = env.open_random_access("f", IoClass::FgIndexRead).unwrap();
        let err = read_block(r.as_ref(), h).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "{err}");
    }

    #[test]
    fn corrupted_crc_itself_detected() {
        let env = MemEnv::new();
        let mut w = env.new_writable("f", IoClass::Flush).unwrap();
        let h = write_block(w.as_mut(), b"payload").unwrap();
        drop(w);
        env.corrupt_byte("f", h.size + 2).unwrap(); // inside the crc field
        let r = env.open_random_access("f", IoClass::FgIndexRead).unwrap();
        assert!(read_block(r.as_ref(), h).is_err());
    }

    #[test]
    fn empty_block_roundtrip() {
        let env = MemEnv::new();
        let mut w = env.new_writable("f", IoClass::Flush).unwrap();
        let h = write_block(w.as_mut(), b"").unwrap();
        drop(w);
        let r = env.open_random_access("f", IoClass::FgIndexRead).unwrap();
        assert_eq!(read_block(r.as_ref(), h).unwrap().len(), 0);
    }
}
