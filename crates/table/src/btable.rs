//! BlockBasedTable: the RocksDB-style SST format used by baseline engines.
//!
//! Layout:
//!
//! ```text
//! [data block]*  [filter block]  [props block]  [metaindex]  [index block]  [footer]
//! ```
//!
//! Data blocks hold many entries; the index block maps the *last key* of
//! each data block to its handle (a sparse index — which is precisely the
//! property that makes GC reads expensive and motivates the RTable's dense
//! index, paper §III-B1).

use crate::block::{Block, BlockBuilder, BlockIter};
use crate::blockio::{read_block, stage_block, write_block};
use crate::cache::{CacheKey, CachePriority, LruCache};
use crate::filter::{BloomBuilder, BloomReader};
use crate::handle::{BlockHandle, Footer, FOOTER_LEN};
use crate::props::{meta_keys, metaindex, TableProps, TableType, ValueDep};
use crate::{BlockKind, KeyCmp};
use bytes::Bytes;
use scavenger_env::{RandomAccessFile, WritableFile};
use scavenger_util::ikey::{extract_user_key, parse_internal_key, ValueRef, ValueType};
use scavenger_util::{Error, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared block cache over parsed [`Block`]s.
pub type BlockCache = LruCache<Block>;

/// Build-time options common to all table formats.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Restart interval for data blocks.
    pub restart_interval: usize,
    /// Bloom filter bits per key (0 disables the filter).
    pub bloom_bits_per_key: usize,
    /// Key ordering.
    pub cmp: KeyCmp,
    /// RTable: target size of one index partition.
    pub index_partition_size: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_size: 4096,
            restart_interval: 16,
            bloom_bits_per_key: 10,
            cmp: KeyCmp::Internal,
            index_partition_size: 2048,
        }
    }
}

/// Tracks [`TableProps`] as entries stream through a builder.
pub(crate) struct PropsTracker {
    props: TableProps,
    deps: BTreeMap<u64, (u64, u64)>,
    cmp: KeyCmp,
}

impl PropsTracker {
    pub(crate) fn new(table_type: TableType, cmp: KeyCmp) -> Self {
        PropsTracker {
            props: TableProps {
                table_type,
                ..TableProps::default()
            },
            deps: BTreeMap::new(),
            cmp,
        }
    }

    pub(crate) fn observe(&mut self, key: &[u8], value: &[u8]) {
        self.props.num_entries += 1;
        self.props.raw_key_bytes += key.len() as u64;
        self.props.raw_value_bytes += value.len() as u64;
        if self.cmp == KeyCmp::Internal {
            if let Ok(parsed) = parse_internal_key(key) {
                match parsed.vtype {
                    ValueType::Deletion => self.props.num_deletions += 1,
                    ValueType::Value => self.props.num_inline += 1,
                    ValueType::ValueRef => {
                        self.props.num_refs += 1;
                        if let Ok(r) = ValueRef::decode(value) {
                            let e = self.deps.entry(r.file).or_insert((0, 0));
                            e.0 += 1;
                            e.1 += u64::from(r.size);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn finish(mut self) -> TableProps {
        self.props.deps = self
            .deps
            .into_iter()
            .map(|(file, (entries, ref_bytes))| ValueDep {
                file,
                entries,
                ref_bytes,
            })
            .collect();
        self.props
    }
}

/// Streaming builder for a BlockBasedTable.
pub struct BTableBuilder {
    file: Box<dyn WritableFile>,
    opts: TableOptions,
    data: BlockBuilder,
    index: BlockBuilder,
    bloom: BloomBuilder,
    tracker: PropsTracker,
    smallest: Option<Vec<u8>>,
    largest: Vec<u8>,
    num_entries: u64,
}

/// Result of finishing a table build.
#[derive(Debug, Clone)]
pub struct BuiltTable {
    /// Final file size in bytes.
    pub file_size: u64,
    /// Smallest key in the table (encoded form).
    pub smallest: Vec<u8>,
    /// Largest key in the table.
    pub largest: Vec<u8>,
    /// Properties as written to the props block.
    pub props: TableProps,
}

impl BTableBuilder {
    /// Start building into `file`.
    pub fn new(file: Box<dyn WritableFile>, opts: TableOptions) -> Self {
        let restart = opts.restart_interval;
        let bits = opts.bloom_bits_per_key;
        let cmp = opts.cmp;
        BTableBuilder {
            file,
            opts,
            data: BlockBuilder::new(restart),
            index: BlockBuilder::new(1),
            bloom: BloomBuilder::new(bits.max(1)),
            tracker: PropsTracker::new(TableType::BTable, cmp),
            smallest: None,
            largest: Vec::new(),
            num_entries: 0,
        }
    }

    fn user_key<'k>(&self, key: &'k [u8]) -> &'k [u8] {
        match self.opts.cmp {
            KeyCmp::Internal => extract_user_key(key),
            KeyCmp::Bytewise => key,
        }
    }

    /// Append an entry; keys must arrive in `opts.cmp` order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(
            self.data.is_empty() || self.opts.cmp.cmp(self.data.last_key(), key).is_lt(),
            "keys must be added in strictly increasing order"
        );
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest.clear();
        self.largest.extend_from_slice(key);
        self.bloom.add_key(self.user_key(key));
        self.tracker.observe(key, value);
        self.data.add(key, value);
        self.num_entries += 1;
        if self.data.size_estimate() >= self.opts.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    fn flush_data_block(&mut self) -> Result<()> {
        let mut buf = Vec::new();
        let base = self.file.len();
        self.stage_data_block(&mut buf, base);
        if buf.is_empty() {
            return Ok(());
        }
        self.file.append(&buf)
    }

    /// Stage the pending data block into `buf` (see [`stage_block`]); a
    /// no-op when the block is empty.
    fn stage_data_block(&mut self, buf: &mut Vec<u8>, base: u64) {
        if self.data.is_empty() {
            return;
        }
        let last_key = self.data.last_key().to_vec();
        let payload = self.data.finish();
        let handle = stage_block(buf, base, &payload);
        self.index.add(&last_key, &handle.encode());
    }

    /// Append a batch of entries with **one** file `append`: data blocks
    /// that fill up mid-batch are built and staged into a single buffer,
    /// amortizing the per-block I/O of [`add`](Self::add) while keeping
    /// the on-disk bytes identical to repeated `add` calls.
    ///
    /// When `target` is set, the batch stops early once the staged table
    /// size (what [`estimated_size`](Self::estimated_size) would report
    /// after that entry) reaches it, mirroring the per-record rollover
    /// check callers perform with `add`. Returns each consumed entry's
    /// informational offset (the staged size before the entry, matching
    /// `add`'s `estimated_size()` convention) plus how many input entries
    /// were consumed (always ≥ 1 for a non-empty batch).
    pub fn add_batch(
        &mut self,
        recs: &[(&[u8], &[u8])],
        target: Option<u64>,
    ) -> Result<(Vec<u64>, usize)> {
        let base = self.file.len();
        let mut buf: Vec<u8> = Vec::new();
        let mut offsets = Vec::with_capacity(recs.len());
        let mut consumed = 0usize;
        for &(key, value) in recs {
            debug_assert!(
                self.data.is_empty() || self.opts.cmp.cmp(self.data.last_key(), key).is_lt(),
                "keys must be added in strictly increasing order"
            );
            offsets.push(base + buf.len() as u64 + self.data.size_estimate() as u64);
            if self.smallest.is_none() {
                self.smallest = Some(key.to_vec());
            }
            self.largest.clear();
            self.largest.extend_from_slice(key);
            self.bloom.add_key(self.user_key(key));
            self.tracker.observe(key, value);
            self.data.add(key, value);
            self.num_entries += 1;
            if self.data.size_estimate() >= self.opts.block_size {
                self.stage_data_block(&mut buf, base);
            }
            consumed += 1;
            if let Some(t) = target {
                let staged = base + buf.len() as u64 + self.data.size_estimate() as u64;
                if staged >= t {
                    break;
                }
            }
        }
        if !buf.is_empty() {
            self.file.append(&buf)?;
        }
        Ok((offsets, consumed))
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written to the file so far (lower bound on final size).
    pub fn estimated_size(&self) -> u64 {
        self.file.len() + self.data.size_estimate() as u64
    }

    /// Finish the table: flush blocks, write filter / props / metaindex /
    /// index / footer.
    pub fn finish(mut self) -> Result<BuiltTable> {
        self.flush_data_block()?;
        let filter_handle = write_block(self.file.as_mut(), &self.bloom.finish())?;
        let props = self.tracker.finish();
        let props_handle = write_block(self.file.as_mut(), &props.encode())?;
        let meta = metaindex::encode(&[
            (meta_keys::FILTER, filter_handle),
            (meta_keys::PROPS, props_handle),
        ]);
        let metaindex_handle = write_block(self.file.as_mut(), &meta)?;
        let index_payload = self.index.finish();
        let index_handle = write_block(self.file.as_mut(), &index_payload)?;
        let footer = Footer {
            metaindex: metaindex_handle,
            index: index_handle,
        };
        self.file.append(&footer.encode())?;
        self.file.sync()?;
        Ok(BuiltTable {
            file_size: self.file.len(),
            smallest: self.smallest.unwrap_or_default(),
            largest: self.largest,
            props,
        })
    }
}

/// Fetches blocks through the (optional) block cache. Cloning is cheap
/// (two `Arc`s and an integer), which lets iterators own their fetcher and
/// carry no lifetime.
#[derive(Clone)]
pub(crate) struct BlockFetcher {
    pub(crate) file: Arc<dyn RandomAccessFile>,
    pub(crate) cache: Option<Arc<BlockCache>>,
    pub(crate) file_number: u64,
}

impl BlockFetcher {
    pub(crate) fn fetch(
        &self,
        handle: BlockHandle,
        kind: BlockKind,
        pri: CachePriority,
    ) -> Result<Block> {
        let key = CacheKey {
            file: self.file_number,
            offset: handle.offset,
            kind: kind_tag(kind),
        };
        if let Some(cache) = &self.cache {
            if let Some(b) = cache.get(&key) {
                return Ok(b);
            }
        }
        let payload = read_block(self.file.as_ref(), handle)?;
        let block = Block::new(payload)?;
        if let Some(cache) = &self.cache {
            cache.insert(key, block.clone(), block.len(), pri);
        }
        Ok(block)
    }
}

pub(crate) fn kind_tag(kind: BlockKind) -> u8 {
    match kind {
        BlockKind::Data => 0,
        BlockKind::Index => 1,
        BlockKind::KeyFile => 2,
    }
}

/// Read the footer of any table file.
pub(crate) fn read_footer(file: &dyn RandomAccessFile) -> Result<Footer> {
    let len = file.len();
    if len < FOOTER_LEN as u64 {
        return Err(Error::corruption("file too small for footer"));
    }
    let raw = file.read_at(len - FOOTER_LEN as u64, FOOTER_LEN)?;
    Footer::decode(&raw)
}

/// An open BlockBasedTable.
pub struct BTableReader {
    fetcher: BlockFetcher,
    index: Block,
    filter: Option<Bytes>,
    props: TableProps,
    cmp: KeyCmp,
}

impl BTableReader {
    /// Open a table file. The index block, filter and props are read
    /// eagerly and pinned for the life of the reader.
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        file_number: u64,
        cache: Option<Arc<BlockCache>>,
        cmp: KeyCmp,
    ) -> Result<BTableReader> {
        let footer = read_footer(file.as_ref())?;
        let fetcher = BlockFetcher {
            file,
            cache,
            file_number,
        };
        let index = Block::new(read_block(fetcher.file.as_ref(), footer.index)?)?;
        let meta = metaindex::decode(&read_block(fetcher.file.as_ref(), footer.metaindex)?)?;
        let props_handle = metaindex::find(&meta, meta_keys::PROPS)
            .ok_or_else(|| Error::corruption("missing props block"))?;
        let props = TableProps::decode(&read_block(fetcher.file.as_ref(), props_handle)?)?;
        let filter = match metaindex::find(&meta, meta_keys::FILTER) {
            Some(h) => Some(read_block(fetcher.file.as_ref(), h)?),
            None => None,
        };
        Ok(BTableReader {
            fetcher,
            index,
            filter,
            props,
            cmp,
        })
    }

    /// Table properties.
    pub fn props(&self) -> &TableProps {
        &self.props
    }

    /// Bloom check on a user key. True means "maybe present".
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        match &self.filter {
            Some(f) => BloomReader::new(f).may_contain(user_key),
            None => true,
        }
    }

    /// Point lookup: returns the first entry with key `>= target`, or
    /// `None` if the table has no such entry. The caller is responsible
    /// for checking that the user key matches.
    pub fn get(&self, target: &[u8]) -> Result<Option<(Vec<u8>, Bytes)>> {
        let ukey = match self.cmp {
            KeyCmp::Internal => extract_user_key(target),
            KeyCmp::Bytewise => target,
        };
        if !self.may_contain(ukey) {
            return Ok(None);
        }
        let mut index_iter = self.index.iter(self.cmp);
        index_iter.seek(target);
        while index_iter.valid() {
            let handle = BlockHandle::decode_exact(&index_iter.value())?;
            let block = self
                .fetcher
                .fetch(handle, BlockKind::Data, CachePriority::Low)?;
            let mut it = block.iter(self.cmp);
            it.seek(target);
            if it.valid() {
                return Ok(Some((it.key().to_vec(), it.value())));
            }
            index_iter.next();
        }
        Ok(None)
    }

    /// Iterate the whole table in key order. The iterator is self-contained
    /// (owns its fetcher), so it can outlive the reader borrow.
    pub fn iter(&self) -> BTableIter {
        TwoLevelIter::new(
            self.fetcher.clone(),
            self.index.clone(),
            self.cmp,
            BlockKind::Data,
            CachePriority::Low,
        )
    }
}

/// Two-level iterator over a [`BTableReader`].
pub type BTableIter = TwoLevelIter;

/// Generic two-level iterator: an index block whose values are handles of
/// data blocks, fetched lazily through the block cache. Shared by BTable
/// and both DTable streams.
pub struct TwoLevelIter {
    fetcher: BlockFetcher,
    cmp: KeyCmp,
    kind: BlockKind,
    pri: CachePriority,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    error: Option<Error>,
}

impl TwoLevelIter {
    pub(crate) fn new(
        fetcher: BlockFetcher,
        index: Block,
        cmp: KeyCmp,
        kind: BlockKind,
        pri: CachePriority,
    ) -> Self {
        TwoLevelIter {
            fetcher,
            cmp,
            kind,
            pri,
            index_iter: index.iter(cmp),
            data_iter: None,
            error: None,
        }
    }

    fn load_data_block(&mut self) {
        self.data_iter = None;
        if !self.index_iter.valid() {
            return;
        }
        let handle = match BlockHandle::decode_exact(&self.index_iter.value()) {
            Ok(h) => h,
            Err(e) => {
                self.error = Some(e);
                return;
            }
        };
        match self.fetcher.fetch(handle, self.kind, self.pri) {
            Ok(b) => {
                self.data_iter = Some(b.iter(self.cmp));
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn skip_empty_blocks_forward(&mut self) {
        loop {
            if self.data_iter.as_ref().map(|d| d.valid()).unwrap_or(false) {
                return;
            }
            if self.error.is_some() || !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.next();
            self.load_data_block();
            if let Some(d) = self.data_iter.as_mut() {
                d.seek_to_first();
            }
        }
    }

    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.data_iter.as_ref().map(|d| d.valid()).unwrap_or(false)
    }

    /// Position on the first entry.
    pub fn seek_to_first(&mut self) {
        self.index_iter.seek_to_first();
        self.load_data_block();
        if let Some(d) = self.data_iter.as_mut() {
            d.seek_to_first();
        }
        self.skip_empty_blocks_forward();
    }

    /// Position on the first entry `>= target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.index_iter.seek(target);
        self.load_data_block();
        if let Some(d) = self.data_iter.as_mut() {
            d.seek(target);
        }
        self.skip_empty_blocks_forward();
    }

    /// Advance.
    pub fn next(&mut self) {
        if let Some(d) = self.data_iter.as_mut() {
            d.next();
        }
        self.skip_empty_blocks_forward();
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        self.data_iter.as_ref().unwrap().key()
    }

    /// Current value (zero-copy).
    pub fn value(&self) -> Bytes {
        self.data_iter.as_ref().unwrap().value()
    }

    /// Any I/O / corruption error hit during iteration.
    pub fn status(&self) -> Result<()> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::{Env, IoClass, MemEnv};
    use scavenger_util::ikey::make_internal_key;

    fn build_table(
        env: &MemEnv,
        path: &str,
        entries: &[(Vec<u8>, Vec<u8>)],
        opts: TableOptions,
    ) -> BuiltTable {
        let f = env.new_writable(path, IoClass::Flush).unwrap();
        let mut b = BTableBuilder::new(f, opts);
        for (k, v) in entries {
            b.add(k, v).unwrap();
        }
        b.finish().unwrap()
    }

    fn open(env: &MemEnv, path: &str, cmp: KeyCmp) -> BTableReader {
        let file = env.open_random_access(path, IoClass::FgIndexRead).unwrap();
        BTableReader::open(file, 1, None, cmp).unwrap()
    }

    fn bytewise_opts() -> TableOptions {
        TableOptions {
            cmp: KeyCmp::Bytewise,
            block_size: 256,
            ..TableOptions::default()
        }
    }

    fn sample_entries(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key{i:05}").into_bytes(),
                    format!("value-{i}").repeat(3).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn build_and_get_every_key() {
        let env = MemEnv::new();
        let entries = sample_entries(500);
        let built = build_table(&env, "t.sst", &entries, bytewise_opts());
        assert_eq!(built.props.num_entries, 500);
        assert_eq!(built.smallest, b"key00000".to_vec());
        assert_eq!(built.largest, b"key00499".to_vec());

        let reader = open(&env, "t.sst", KeyCmp::Bytewise);
        for (k, v) in &entries {
            let (fk, fv) = reader.get(k).unwrap().expect("found");
            assert_eq!(&fk, k);
            assert_eq!(&fv[..], v.as_slice());
        }
    }

    #[test]
    fn get_missing_key_returns_successor_or_none() {
        let env = MemEnv::new();
        let entries = sample_entries(100);
        build_table(&env, "t.sst", &entries, bytewise_opts());
        let reader = open(&env, "t.sst", KeyCmp::Bytewise);
        // Key between key00010 and key00011.
        let got = reader.get(b"key000105").unwrap();
        if let Some((k, _)) = got {
            assert_eq!(k, b"key00011".to_vec());
        }
        // Past the end.
        assert!(reader.get(b"zzz").unwrap().is_none());
    }

    #[test]
    fn bloom_filter_blocks_absent_keys_without_io() {
        let env = MemEnv::new();
        let entries = sample_entries(1000);
        build_table(&env, "t.sst", &entries, bytewise_opts());
        let reader = open(&env, "t.sst", KeyCmp::Bytewise);
        let before = env.io_stats().snapshot();
        let mut found = 0;
        for i in 0..200 {
            if reader
                .get(format!("absent{i}").as_bytes())
                .unwrap()
                .is_some()
            {
                found += 1;
            }
        }
        let after = env.io_stats().snapshot();
        let d = after.delta(&before);
        // Nearly all lookups should have been stopped by the bloom filter:
        // only the rare false positive costs a block read.
        assert!(found <= 200);
        assert!(
            d.class(IoClass::FgIndexRead).read_ops <= 20,
            "too many reads: {}",
            d.class(IoClass::FgIndexRead).read_ops
        );
    }

    #[test]
    fn iterator_sees_all_entries_in_order() {
        let env = MemEnv::new();
        let entries = sample_entries(321);
        build_table(&env, "t.sst", &entries, bytewise_opts());
        let reader = open(&env, "t.sst", KeyCmp::Bytewise);
        let mut it = reader.iter();
        it.seek_to_first();
        for (k, v) in &entries {
            assert!(it.valid());
            assert_eq!(it.key(), k.as_slice());
            assert_eq!(&it.value()[..], v.as_slice());
            it.next();
        }
        assert!(!it.valid());
        it.status().unwrap();
    }

    #[test]
    fn iterator_seek_lands_on_successor() {
        let env = MemEnv::new();
        let entries = sample_entries(100);
        build_table(&env, "t.sst", &entries, bytewise_opts());
        let reader = open(&env, "t.sst", KeyCmp::Bytewise);
        let mut it = reader.iter();
        it.seek(b"key00050");
        assert!(it.valid());
        assert_eq!(it.key(), b"key00050");
        it.seek(b"key000505");
        assert!(it.valid());
        assert_eq!(it.key(), b"key00051");
        it.seek(b"zzzz");
        assert!(!it.valid());
    }

    #[test]
    fn internal_keys_track_props_and_deps() {
        let env = MemEnv::new();
        let f = env.new_writable("t.sst", IoClass::Flush).unwrap();
        let mut b = BTableBuilder::new(f, TableOptions::default());
        let r1 = ValueRef {
            file: 9,
            size: 4096,
            offset: 0,
        };
        let r2 = ValueRef {
            file: 9,
            size: 8192,
            offset: 4096,
        };
        let r3 = ValueRef {
            file: 11,
            size: 100,
            offset: 0,
        };
        b.add(
            &make_internal_key(b"a", 3, ValueType::ValueRef),
            &r1.encode(),
        )
        .unwrap();
        b.add(&make_internal_key(b"b", 2, ValueType::Value), b"inline")
            .unwrap();
        b.add(
            &make_internal_key(b"c", 4, ValueType::ValueRef),
            &r2.encode(),
        )
        .unwrap();
        b.add(&make_internal_key(b"d", 5, ValueType::Deletion), b"")
            .unwrap();
        b.add(
            &make_internal_key(b"e", 6, ValueType::ValueRef),
            &r3.encode(),
        )
        .unwrap();
        let built = b.finish().unwrap();
        assert_eq!(built.props.num_entries, 5);
        assert_eq!(built.props.num_refs, 3);
        assert_eq!(built.props.num_inline, 1);
        assert_eq!(built.props.num_deletions, 1);
        assert_eq!(built.props.deps.len(), 2);
        let d9 = built.props.deps.iter().find(|d| d.file == 9).unwrap();
        assert_eq!(d9.entries, 2);
        assert_eq!(d9.ref_bytes, 4096 + 8192);
        assert_eq!(built.props.total_ref_bytes(), 4096 + 8192 + 100);

        // Reader sees the same props.
        let file = env
            .open_random_access("t.sst", IoClass::FgIndexRead)
            .unwrap();
        let reader = BTableReader::open(file, 1, None, KeyCmp::Internal).unwrap();
        assert_eq!(reader.props().total_ref_bytes(), 4096 + 8192 + 100);
    }

    #[test]
    fn internal_key_get_finds_visible_version() {
        let env = MemEnv::new();
        let f = env.new_writable("t.sst", IoClass::Flush).unwrap();
        let mut b = BTableBuilder::new(f, TableOptions::default());
        b.add(&make_internal_key(b"k", 9, ValueType::Value), b"v9")
            .unwrap();
        b.add(&make_internal_key(b"k", 5, ValueType::Value), b"v5")
            .unwrap();
        b.finish().unwrap();
        let file = env
            .open_random_access("t.sst", IoClass::FgIndexRead)
            .unwrap();
        let reader = BTableReader::open(file, 1, None, KeyCmp::Internal).unwrap();

        // Snapshot at seq 100 sees v9.
        let t = make_internal_key(b"k", 100, ValueType::ValueRef);
        let (k, v) = reader.get(&t).unwrap().unwrap();
        assert_eq!(parse_internal_key(&k).unwrap().seq, 9);
        assert_eq!(&v[..], b"v9");

        // Snapshot at seq 7 sees v5.
        let t = make_internal_key(b"k", 7, ValueType::ValueRef);
        let (k, v) = reader.get(&t).unwrap().unwrap();
        assert_eq!(parse_internal_key(&k).unwrap().seq, 5);
        assert_eq!(&v[..], b"v5");
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let env = MemEnv::new();
        let entries = sample_entries(2000);
        build_table(&env, "t.sst", &entries, bytewise_opts());
        let cache = Arc::new(BlockCache::with_capacity(1 << 20));
        let file = env
            .open_random_access("t.sst", IoClass::FgIndexRead)
            .unwrap();
        let reader = BTableReader::open(file, 42, Some(cache.clone()), KeyCmp::Bytewise).unwrap();

        reader.get(b"key00100").unwrap().unwrap();
        let before = env.io_stats().snapshot();
        reader.get(b"key00100").unwrap().unwrap();
        let d = env.io_stats().snapshot().delta(&before);
        assert_eq!(
            d.class(IoClass::FgIndexRead).read_ops,
            0,
            "second read must be cached"
        );
        let (hits, _, _) = cache.stats();
        assert!(hits >= 1);
    }

    #[test]
    fn corrupted_data_block_reported() {
        let env = MemEnv::new();
        let entries = sample_entries(50);
        build_table(&env, "t.sst", &entries, bytewise_opts());
        env.corrupt_byte("t.sst", 10).unwrap();
        let file = env
            .open_random_access("t.sst", IoClass::FgIndexRead)
            .unwrap();
        let reader = BTableReader::open(file, 1, None, KeyCmp::Bytewise).unwrap();
        let err = reader.get(b"key00000").unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn empty_table_roundtrip() {
        let env = MemEnv::new();
        let built = build_table(&env, "t.sst", &[], bytewise_opts());
        assert_eq!(built.props.num_entries, 0);
        let reader = open(&env, "t.sst", KeyCmp::Bytewise);
        assert!(reader.get(b"anything").unwrap().is_none());
        let mut it = reader.iter();
        it.seek_to_first();
        assert!(!it.valid());
    }
}
