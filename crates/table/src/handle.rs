//! Block handles and the fixed-size table footer.

use scavenger_util::coding::{get_varint64, put_varint64};
use scavenger_util::{Error, Result};

/// Location of a block (or record) within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block payload.
    pub offset: u64,
    /// Payload size in bytes (excluding the 5-byte checksum trailer).
    pub size: u64,
}

impl BlockHandle {
    /// Create a handle.
    pub fn new(offset: u64, size: u64) -> Self {
        BlockHandle { offset, size }
    }

    /// Append the varint encoding to `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(20);
        self.encode_to(&mut v);
        v
    }

    /// Decode from the front of `src`, advancing it.
    pub fn decode_from(src: &mut &[u8]) -> Result<BlockHandle> {
        let offset = get_varint64(src)?;
        let size = get_varint64(src)?;
        Ok(BlockHandle { offset, size })
    }

    /// Decode from a slice that must contain exactly one handle.
    pub fn decode_exact(mut src: &[u8]) -> Result<BlockHandle> {
        let h = Self::decode_from(&mut src)?;
        if !src.is_empty() {
            return Err(Error::corruption("trailing bytes after BlockHandle"));
        }
        Ok(h)
    }
}

/// Magic number identifying Scavenger tables ("SCVNGR01" as hex-ish).
pub const TABLE_MAGIC: u64 = 0x5343_564e_4752_3031;

/// Fixed footer length: two max-length handles (2 × 20) + magic.
pub const FOOTER_LEN: usize = 48;

/// The fixed-size footer at the end of every table file.
///
/// Holds handles to the metaindex block (filter, properties, auxiliary
/// indexes) and the top-level index block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the metaindex block.
    pub metaindex: BlockHandle,
    /// Handle of the (top-level) index block.
    pub index: BlockHandle,
}

impl Footer {
    /// Encode to exactly [`FOOTER_LEN`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(FOOTER_LEN);
        self.metaindex.encode_to(&mut v);
        self.index.encode_to(&mut v);
        v.resize(FOOTER_LEN - 8, 0);
        v.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        v
    }

    /// Decode from the last [`FOOTER_LEN`] bytes of a file.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() != FOOTER_LEN {
            return Err(Error::corruption(format!(
                "footer must be {FOOTER_LEN} bytes, got {}",
                src.len()
            )));
        }
        let magic = u64::from_le_bytes(src[FOOTER_LEN - 8..].try_into().unwrap());
        if magic != TABLE_MAGIC {
            return Err(Error::corruption("bad table magic number"));
        }
        let mut cur = &src[..FOOTER_LEN - 8];
        let metaindex = BlockHandle::decode_from(&mut cur)?;
        let index = BlockHandle::decode_from(&mut cur)?;
        Ok(Footer { metaindex, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        let h = BlockHandle::new(1 << 40, 4096);
        assert_eq!(BlockHandle::decode_exact(&h.encode()).unwrap(), h);
    }

    #[test]
    fn handle_rejects_trailing_garbage() {
        let mut enc = BlockHandle::new(1, 2).encode();
        enc.push(7);
        assert!(BlockHandle::decode_exact(&enc).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            metaindex: BlockHandle::new(100, 64),
            index: BlockHandle::new(164, 1 << 20),
        };
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_LEN);
        assert_eq!(Footer::decode(&enc).unwrap(), f);
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let f = Footer {
            metaindex: BlockHandle::new(0, 0),
            index: BlockHandle::new(0, 0),
        };
        let mut enc = f.encode();
        let n = enc.len();
        enc[n - 1] ^= 1;
        assert!(Footer::decode(&enc).is_err());
    }

    #[test]
    fn footer_rejects_wrong_length() {
        assert!(Footer::decode(&[0u8; 47]).is_err());
        assert!(Footer::decode(&[0u8; 49]).is_err());
    }
}
