//! RecordBasedTable (RTable) — the Scavenger value SST (paper §III-B1).
//!
//! Unlike a BTable, which packs many entries into shared data blocks and
//! keeps a *sparse* index (one entry per block), the RTable stores each
//! key-value pair as an individually checksummed **record** and keeps a
//! *dense* index: one `(key → record handle)` entry per record, organised
//! as a partitioned two-level index.
//!
//! ```text
//! [record | index partition]*  [top index]  [filter]  [props]  [metaindex]  [footer]
//! record := varint klen ++ key ++ varint vlen ++ value   (+ 5B crc trailer)
//! ```
//!
//! This buys the GC's **Lazy Read**: reading *only* the index partitions
//! yields every key in the file plus the exact location of its value, so
//! validity checks (GC-Lookup) run before a single value byte is fetched,
//! and only surviving values are ever read. Foreground point reads also
//! benefit: the dense index points directly at the record, so there is no
//! in-block search.

use crate::block::{Block, BlockBuilder};
use crate::blockio::{read_block, stage_block, write_block, BLOCK_TRAILER_LEN};
use crate::btable::{
    read_footer, BlockCache, BlockFetcher, BuiltTable, PropsTracker, TableOptions,
};
use crate::cache::CachePriority;
use crate::filter::{BloomBuilder, BloomReader};
use crate::handle::{BlockHandle, Footer};
use crate::props::{meta_keys, metaindex, TableProps, TableType};
use crate::{BlockKind, KeyCmp};
use bytes::Bytes;
use scavenger_env::{RandomAccessFile, WritableFile};
use scavenger_util::coding::{get_length_prefixed_slice, put_length_prefixed_slice};
use scavenger_util::ikey::extract_user_key;
use scavenger_util::{Error, Result};
use std::sync::Arc;

/// Streaming builder for a RecordBasedTable.
pub struct RTableBuilder {
    file: Box<dyn WritableFile>,
    opts: TableOptions,
    partition: BlockBuilder,
    top_index: BlockBuilder,
    bloom: BloomBuilder,
    tracker: PropsTracker,
    smallest: Option<Vec<u8>>,
    largest: Vec<u8>,
    num_entries: u64,
    index_bytes: u64,
}

impl RTableBuilder {
    /// Start building into `file`.
    pub fn new(file: Box<dyn WritableFile>, opts: TableOptions) -> Self {
        let bits = opts.bloom_bits_per_key;
        let cmp = opts.cmp;
        RTableBuilder {
            file,
            opts,
            partition: BlockBuilder::new(8),
            top_index: BlockBuilder::new(1),
            bloom: BloomBuilder::new(bits.max(1)),
            tracker: PropsTracker::new(TableType::RTable, cmp),
            smallest: None,
            largest: Vec::new(),
            num_entries: 0,
            index_bytes: 0,
        }
    }

    fn user_key<'k>(&self, key: &'k [u8]) -> &'k [u8] {
        match self.opts.cmp {
            KeyCmp::Internal => extract_user_key(key),
            KeyCmp::Bytewise => key,
        }
    }

    /// Append a record; keys must arrive in `opts.cmp` order.
    /// Returns the record's handle (useful for address-based callers).
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<BlockHandle> {
        debug_assert!(
            self.partition.is_empty() || self.opts.cmp.cmp(self.partition.last_key(), key).is_lt(),
            "keys must be added in strictly increasing order"
        );
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest.clear();
        self.largest.extend_from_slice(key);
        self.bloom.add_key(self.user_key(key));
        self.tracker.observe(key, value);

        let mut record = Vec::with_capacity(key.len() + value.len() + 8);
        put_length_prefixed_slice(&mut record, key);
        put_length_prefixed_slice(&mut record, value);
        let handle = write_block(self.file.as_mut(), &record)?;

        self.partition.add(key, &handle.encode());
        self.num_entries += 1;
        if self.partition.size_estimate() >= self.opts.index_partition_size {
            self.flush_partition()?;
        }
        Ok(handle)
    }

    fn flush_partition(&mut self) -> Result<()> {
        let mut buf = Vec::new();
        let base = self.file.len();
        self.stage_partition(&mut buf, base);
        if buf.is_empty() {
            return Ok(());
        }
        self.file.append(&buf)
    }

    /// Stage the pending index partition into `buf` (see
    /// [`stage_block`]); a no-op when the partition is empty.
    fn stage_partition(&mut self, buf: &mut Vec<u8>, base: u64) {
        if self.partition.is_empty() {
            return;
        }
        let last_key = self.partition.last_key().to_vec();
        let payload = self.partition.finish();
        self.index_bytes += (payload.len() + BLOCK_TRAILER_LEN) as u64;
        let handle = stage_block(buf, base, &payload);
        self.top_index.add(&last_key, &handle.encode());
    }

    /// Append a batch of records with **one** file `append`: every record
    /// block (and any index partition that fills up mid-batch) is staged
    /// into a single buffer, so the per-record I/O of [`add`](Self::add)
    /// is amortized across the batch while the on-disk bytes stay
    /// identical to repeated `add` calls.
    ///
    /// When `target` is set, the batch stops early once the staged table
    /// size (the exact value [`estimated_size`](Self::estimated_size)
    /// would report after that record) reaches it — mirroring the
    /// per-record rollover check callers perform with `add`. Returns the
    /// record handles plus how many input records were consumed (always
    /// ≥ 1 for a non-empty batch).
    pub fn add_batch(
        &mut self,
        recs: &[(&[u8], &[u8])],
        target: Option<u64>,
    ) -> Result<(Vec<BlockHandle>, usize)> {
        let base = self.file.len();
        let mut buf: Vec<u8> = Vec::new();
        let mut handles = Vec::with_capacity(recs.len());
        let mut consumed = 0usize;
        for &(key, value) in recs {
            debug_assert!(
                self.partition.is_empty()
                    || self.opts.cmp.cmp(self.partition.last_key(), key).is_lt(),
                "keys must be added in strictly increasing order"
            );
            if self.smallest.is_none() {
                self.smallest = Some(key.to_vec());
            }
            self.largest.clear();
            self.largest.extend_from_slice(key);
            self.bloom.add_key(self.user_key(key));
            self.tracker.observe(key, value);

            let mut record = Vec::with_capacity(key.len() + value.len() + 8);
            put_length_prefixed_slice(&mut record, key);
            put_length_prefixed_slice(&mut record, value);
            let handle = stage_block(&mut buf, base, &record);

            self.partition.add(key, &handle.encode());
            self.num_entries += 1;
            if self.partition.size_estimate() >= self.opts.index_partition_size {
                self.stage_partition(&mut buf, base);
            }
            handles.push(handle);
            consumed += 1;
            if let Some(t) = target {
                let staged = base + buf.len() as u64 + self.partition.size_estimate() as u64;
                if staged >= t {
                    break;
                }
            }
        }
        if !buf.is_empty() {
            self.file.append(&buf)?;
        }
        Ok((handles, consumed))
    }

    /// Number of records added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written so far (lower bound on final size).
    pub fn estimated_size(&self) -> u64 {
        self.file.len() + self.partition.size_estimate() as u64
    }

    /// Finish the table.
    pub fn finish(mut self) -> Result<BuiltTable> {
        self.flush_partition()?;
        let filter_handle = write_block(self.file.as_mut(), &self.bloom.finish())?;
        let props = self.tracker.finish();
        let props_handle = write_block(self.file.as_mut(), &props.encode())?;
        let meta = metaindex::encode(&[
            (meta_keys::FILTER, filter_handle),
            (meta_keys::PROPS, props_handle),
        ]);
        let metaindex_handle = write_block(self.file.as_mut(), &meta)?;
        let top_payload = self.top_index.finish();
        self.index_bytes += (top_payload.len() + BLOCK_TRAILER_LEN) as u64;
        let index_handle = write_block(self.file.as_mut(), &top_payload)?;
        let footer = Footer {
            metaindex: metaindex_handle,
            index: index_handle,
        };
        self.file.append(&footer.encode())?;
        self.file.sync()?;
        Ok(BuiltTable {
            file_size: self.file.len(),
            smallest: self.smallest.unwrap_or_default(),
            largest: self.largest,
            props,
        })
    }

    /// Bytes spent on index partitions so far — the dense-index overhead
    /// the paper measures in Table I.
    pub fn index_bytes(&self) -> u64 {
        self.index_bytes
    }
}

/// Walk all index partitions of an RTable and collect the dense index.
fn read_dense_index(
    fetcher: &BlockFetcher,
    top_index: &Block,
    cmp: KeyCmp,
    size_hint: usize,
) -> Result<Vec<(Vec<u8>, BlockHandle)>> {
    let mut out = Vec::with_capacity(size_hint);
    let mut top = top_index.iter(cmp);
    top.seek_to_first();
    while top.valid() {
        let part_handle = BlockHandle::decode_exact(&top.value())?;
        let part = fetcher.fetch(part_handle, BlockKind::Index, CachePriority::High)?;
        let mut it = part.iter(cmp);
        it.seek_to_first();
        while it.valid() {
            out.push((it.key().to_vec(), BlockHandle::decode_exact(&it.value())?));
            it.next();
        }
        top.next();
    }
    Ok(out)
}

/// Decode a record payload into `(key, value)`.
pub fn decode_record(payload: &Bytes) -> Result<(Vec<u8>, Bytes)> {
    let mut cur = &payload[..];
    let key = get_length_prefixed_slice(&mut cur)?.to_vec();
    let value = get_length_prefixed_slice(&mut cur)?;
    let vlen = value.len();
    if !cur.is_empty() {
        return Err(Error::corruption("trailing bytes in rtable record"));
    }
    // `cur` is empty, so the value is exactly the payload's last `vlen` bytes;
    // slice it zero-copy instead of copying.
    let value_off = payload.len() - vlen;
    Ok((key, payload.slice(value_off..)))
}

/// An open RecordBasedTable.
pub struct RTableReader {
    fetcher: BlockFetcher,
    top_index: Block,
    filter: Option<Bytes>,
    props: TableProps,
    cmp: KeyCmp,
}

impl RTableReader {
    /// Open an RTable file; top index, filter, and props are pinned.
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        file_number: u64,
        cache: Option<Arc<BlockCache>>,
        cmp: KeyCmp,
    ) -> Result<RTableReader> {
        let footer = read_footer(file.as_ref())?;
        let fetcher = BlockFetcher {
            file,
            cache,
            file_number,
        };
        let top_index = Block::new(read_block(fetcher.file.as_ref(), footer.index)?)?;
        let meta = metaindex::decode(&read_block(fetcher.file.as_ref(), footer.metaindex)?)?;
        let props_handle = metaindex::find(&meta, meta_keys::PROPS)
            .ok_or_else(|| Error::corruption("missing props block"))?;
        let props = TableProps::decode(&read_block(fetcher.file.as_ref(), props_handle)?)?;
        let filter = match metaindex::find(&meta, meta_keys::FILTER) {
            Some(h) => Some(read_block(fetcher.file.as_ref(), h)?),
            None => None,
        };
        if props.table_type != TableType::RTable {
            return Err(Error::corruption("not an RTable file"));
        }
        Ok(RTableReader {
            fetcher,
            top_index,
            filter,
            props,
            cmp,
        })
    }

    /// Table properties.
    pub fn props(&self) -> &TableProps {
        &self.props
    }

    /// Bloom check on a user key.
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        match &self.filter {
            Some(f) => BloomReader::new(f).may_contain(user_key),
            None => true,
        }
    }

    /// Find the record handle of the first index entry with key
    /// `>= target`, without reading any record bytes.
    pub fn find_record(&self, target: &[u8]) -> Result<Option<(Vec<u8>, BlockHandle)>> {
        let mut top = self.top_index.iter(self.cmp);
        top.seek(target);
        while top.valid() {
            let part_handle = BlockHandle::decode_exact(&top.value())?;
            let part = self
                .fetcher
                .fetch(part_handle, BlockKind::Index, CachePriority::High)?;
            let mut it = part.iter(self.cmp);
            it.seek(target);
            if it.valid() {
                let rec = BlockHandle::decode_exact(&it.value())?;
                return Ok(Some((it.key().to_vec(), rec)));
            }
            top.next();
        }
        Ok(None)
    }

    /// Read and decode the record at `handle`.
    pub fn read_record(&self, handle: BlockHandle) -> Result<(Vec<u8>, Bytes)> {
        let payload = read_block(self.fetcher.file.as_ref(), handle)?;
        decode_record(&payload)
    }

    /// Point lookup: first record with key `>= target` (bloom-guarded).
    pub fn get(&self, target: &[u8]) -> Result<Option<(Vec<u8>, Bytes)>> {
        let ukey = match self.cmp {
            KeyCmp::Internal => extract_user_key(target),
            KeyCmp::Bytewise => target,
        };
        if !self.may_contain(ukey) {
            return Ok(None);
        }
        match self.find_record(target)? {
            Some((_, handle)) => self.read_record(handle).map(Some),
            None => Ok(None),
        }
    }

    /// **Lazy Read** (paper Fig. 8 step ①): return every key in the file
    /// with its record handle, reading only index partitions. Partitions
    /// are inserted into the block cache with high priority so subsequent
    /// GC value fetches and foreground reads hit memory.
    pub fn read_index(&self) -> Result<Vec<(Vec<u8>, BlockHandle)>> {
        read_dense_index(
            &self.fetcher,
            &self.top_index,
            self.cmp,
            self.props.num_entries as usize,
        )
    }

    /// Fetch many records by handle. With `coalesce`, handles within
    /// `COALESCE_SPAN` of each other are fetched in one I/O (the paper's
    /// GC readahead, S-RH); records are verified individually either way.
    /// Handles must be sorted by offset for coalescing to help.
    pub fn read_records(
        &self,
        handles: &[BlockHandle],
        coalesce: bool,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let mut out = Vec::with_capacity(handles.len());
        if !coalesce {
            for h in handles {
                out.push(self.read_record(*h)?);
            }
            return Ok(out);
        }
        let mut i = 0;
        while i < handles.len() {
            // Grow a span of nearby records.
            let start = handles[i].offset;
            let mut j = i;
            let mut end = handles[i].offset + handles[i].size + BLOCK_TRAILER_LEN as u64;
            while j + 1 < handles.len() {
                let next = handles[j + 1];
                let next_end = next.offset + next.size + BLOCK_TRAILER_LEN as u64;
                if next.offset >= end && next_end - start <= COALESCE_SPAN {
                    end = next_end;
                    j += 1;
                } else if next.offset < end {
                    // Overlapping/duplicate handle: keep within span.
                    j += 1;
                } else {
                    break;
                }
            }
            let buf = self.fetcher.file.read_at(start, (end - start) as usize)?;
            for h in &handles[i..=j] {
                let off = (h.offset - start) as usize;
                let raw = buf.slice(off..off + h.size as usize + BLOCK_TRAILER_LEN);
                let payload = crate::blockio::verify_block(&raw, *h)?;
                out.push(decode_record(&payload)?);
            }
            i = j + 1;
        }
        Ok(out)
    }

    /// Full scan in key order. Reads the dense index lazily and fetches
    /// each record. `coalesce` hands adjacent records to the reader in one
    /// I/O (the paper's readahead toggle, S-RH). The iterator owns its
    /// fetcher, so it carries no lifetime.
    pub fn iter(&self, coalesce: bool) -> RTableIter {
        RTableIter {
            fetcher: self.fetcher.clone(),
            top_index: self.top_index.clone(),
            cmp: self.cmp,
            entries: None,
            pos: 0,
            current: None,
            coalesce,
            buffer: None,
            error: None,
        }
    }
}

/// Iterator over an RTable's records.
pub struct RTableIter {
    fetcher: BlockFetcher,
    top_index: Block,
    cmp: KeyCmp,
    entries: Option<Vec<(Vec<u8>, BlockHandle)>>,
    pos: usize,
    current: Option<(Vec<u8>, Bytes)>,
    coalesce: bool,
    /// `(file_offset, bytes)` of a read-ahead span covering ≥1 records.
    buffer: Option<(u64, Bytes)>,
    error: Option<Error>,
}

/// Max bytes fetched per coalesced read.
const COALESCE_SPAN: u64 = 256 * 1024;

impl RTableIter {
    fn ensure_index(&mut self) {
        if self.entries.is_none() {
            match read_dense_index(&self.fetcher, &self.top_index, self.cmp, 0) {
                Ok(e) => self.entries = Some(e),
                Err(e) => {
                    self.error = Some(e);
                    self.entries = Some(Vec::new());
                }
            }
        }
    }

    fn fetch_current(&mut self) {
        self.current = None;
        let entries = self.entries.as_ref().unwrap();
        if self.pos >= entries.len() {
            return;
        }
        let (key, handle) = entries[self.pos].clone();
        let total = handle.size + BLOCK_TRAILER_LEN as u64;
        let payload = if self.coalesce {
            // Serve from the readahead buffer, refilling as needed.
            let hit = self
                .buffer
                .as_ref()
                .map(|(off, buf)| {
                    handle.offset >= *off && handle.offset + total <= *off + buf.len() as u64
                })
                .unwrap_or(false);
            if !hit {
                let span_end = (handle.offset + COALESCE_SPAN).min(self.fetcher.file.len());
                let len = (span_end - handle.offset).max(total) as usize;
                match self.fetcher.file.read_at(handle.offset, len) {
                    Ok(buf) => self.buffer = Some((handle.offset, buf)),
                    Err(e) => {
                        self.error = Some(e);
                        return;
                    }
                }
            }
            let (off, buf) = self.buffer.as_ref().unwrap();
            let start = (handle.offset - off) as usize;
            let raw = buf.slice(start..start + total as usize);
            match crate::blockio::verify_block(&raw, handle) {
                Ok(p) => p,
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        } else {
            match read_block(self.fetcher.file.as_ref(), handle) {
                Ok(p) => p,
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        };
        match decode_record(&payload) {
            Ok((k, v)) => {
                debug_assert_eq!(k, key);
                self.current = Some((k, v));
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// True if positioned on a record.
    pub fn valid(&self) -> bool {
        self.current.is_some()
    }

    /// Position on the first record.
    pub fn seek_to_first(&mut self) {
        self.ensure_index();
        self.pos = 0;
        self.fetch_current();
    }

    /// Position on the first record with key `>= target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.ensure_index();
        let entries = self.entries.as_ref().unwrap();
        let cmp = self.cmp;
        self.pos = entries.partition_point(|(k, _)| cmp.cmp(k, target).is_lt());
        self.fetch_current();
    }

    /// Advance.
    pub fn next(&mut self) {
        if self.current.is_some() {
            self.pos += 1;
            self.fetch_current();
        }
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        &self.current.as_ref().unwrap().0
    }

    /// Current value.
    pub fn value(&self) -> Bytes {
        self.current.as_ref().unwrap().1.clone()
    }

    /// Any error hit while iterating.
    pub fn status(&self) -> Result<()> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::{Env, IoClass, MemEnv};

    fn opts() -> TableOptions {
        TableOptions {
            cmp: KeyCmp::Bytewise,
            index_partition_size: 256,
            ..TableOptions::default()
        }
    }

    fn entries(n: usize, vlen: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("user{i:06}").into_bytes(),
                    vec![(i % 251) as u8; vlen],
                )
            })
            .collect()
    }

    fn build(env: &MemEnv, path: &str, es: &[(Vec<u8>, Vec<u8>)]) -> BuiltTable {
        let f = env.new_writable(path, IoClass::Flush).unwrap();
        let mut b = RTableBuilder::new(f, opts());
        for (k, v) in es {
            b.add(k, v).unwrap();
        }
        b.finish().unwrap()
    }

    fn open(env: &MemEnv, path: &str) -> RTableReader {
        let file = env.open_random_access(path, IoClass::FgValueRead).unwrap();
        RTableReader::open(file, 7, None, KeyCmp::Bytewise).unwrap()
    }

    #[test]
    fn build_get_roundtrip() {
        let env = MemEnv::new();
        let es = entries(300, 64);
        let built = build(&env, "v.vsst", &es);
        assert_eq!(built.props.num_entries, 300);
        assert_eq!(built.props.table_type, TableType::RTable);
        let r = open(&env, "v.vsst");
        for (k, v) in &es {
            let (fk, fv) = r.get(k).unwrap().expect("record");
            assert_eq!(&fk, k);
            assert_eq!(&fv[..], v.as_slice());
        }
        assert!(r.get(b"zzzz").unwrap().is_none());
    }

    #[test]
    fn read_index_returns_all_keys_without_touching_values() {
        let env = MemEnv::new();
        let es = entries(200, 4096); // 800 KB of values
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");
        let before = env.io_stats().snapshot();
        let index = r.read_index().unwrap();
        let d = env.io_stats().snapshot().delta(&before);
        assert_eq!(index.len(), 200);
        for ((k, _), (ek, _)) in index.iter().zip(es.iter()) {
            assert_eq!(k, ek);
        }
        // Lazy read must cost a tiny fraction of the value bytes.
        let value_bytes: u64 = es.iter().map(|(_, v)| v.len() as u64).sum();
        assert!(
            d.class(IoClass::FgValueRead).read_bytes < value_bytes / 20,
            "lazy read cost {} vs values {}",
            d.class(IoClass::FgValueRead).read_bytes,
            value_bytes
        );
    }

    #[test]
    fn record_handles_fetch_exact_values() {
        let env = MemEnv::new();
        let es = entries(50, 128);
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");
        let index = r.read_index().unwrap();
        for (i, (k, h)) in index.iter().enumerate() {
            let (rk, rv) = r.read_record(*h).unwrap();
            assert_eq!(&rk, k);
            assert_eq!(&rv[..], es[i].1.as_slice());
        }
    }

    #[test]
    fn dense_index_overhead_is_small_for_large_values() {
        let env = MemEnv::new();
        let es = entries(100, 16 * 1024);
        let f = env.new_writable("v.vsst", IoClass::Flush).unwrap();
        let mut b = RTableBuilder::new(f, opts());
        for (k, v) in &es {
            b.add(k, v).unwrap();
        }
        let index_bytes = b.index_bytes();
        let built = b.finish().unwrap();
        // Paper Table I: ~0.04% extra space at 16K values. Give slack.
        assert!(
            (index_bytes as f64) < 0.01 * built.file_size as f64,
            "index {} of file {}",
            index_bytes,
            built.file_size
        );
    }

    #[test]
    fn iter_scans_in_order_both_modes() {
        let env = MemEnv::new();
        let es = entries(150, 512);
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");
        for coalesce in [false, true] {
            let mut it = r.iter(coalesce);
            it.seek_to_first();
            for (k, v) in &es {
                assert!(it.valid(), "coalesce={coalesce}");
                assert_eq!(it.key(), k.as_slice());
                assert_eq!(&it.value()[..], v.as_slice());
                it.next();
            }
            assert!(!it.valid());
            it.status().unwrap();
        }
    }

    #[test]
    fn coalesced_iteration_uses_fewer_read_ops() {
        let env = MemEnv::new();
        let es = entries(400, 256);
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");

        let before = env.io_stats().snapshot();
        let mut it = r.iter(false);
        it.seek_to_first();
        while it.valid() {
            it.next();
        }
        let per_record = env.io_stats().snapshot().delta(&before);

        let before = env.io_stats().snapshot();
        let mut it = r.iter(true);
        it.seek_to_first();
        while it.valid() {
            it.next();
        }
        let coalesced = env.io_stats().snapshot().delta(&before);

        assert!(
            coalesced.class(IoClass::FgValueRead).read_ops * 4
                < per_record.class(IoClass::FgValueRead).read_ops,
            "coalesced {} vs per-record {}",
            coalesced.class(IoClass::FgValueRead).read_ops,
            per_record.class(IoClass::FgValueRead).read_ops
        );
    }

    #[test]
    fn seek_in_iter() {
        let env = MemEnv::new();
        let es = entries(100, 32);
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");
        let mut it = r.iter(false);
        it.seek(b"user000050");
        assert!(it.valid());
        assert_eq!(it.key(), b"user000050");
        it.seek(b"user0000505");
        assert_eq!(it.key(), b"user000051");
    }

    #[test]
    fn corrupt_record_detected() {
        let env = MemEnv::new();
        let es = entries(10, 64);
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");
        let index = r.read_index().unwrap();
        // Corrupt the first record's payload.
        env.corrupt_byte("v.vsst", index[0].1.offset + 3).unwrap();
        assert!(r.read_record(index[0].1).is_err());
    }

    #[test]
    fn btable_reader_rejects_rtable_semantics() {
        let env = MemEnv::new();
        let es = entries(10, 64);
        build(&env, "v.vsst", &es);
        // RTableReader::open on a proper RTable works; a BTable opened as
        // RTable must be rejected via the props type check.
        let f = env.new_writable("b.sst", IoClass::Flush).unwrap();
        let mut b = crate::btable::BTableBuilder::new(
            f,
            TableOptions {
                cmp: KeyCmp::Bytewise,
                ..TableOptions::default()
            },
        );
        b.add(b"a", b"1").unwrap();
        b.finish().unwrap();
        let file = env
            .open_random_access("b.sst", IoClass::FgValueRead)
            .unwrap();
        assert!(RTableReader::open(file, 1, None, KeyCmp::Bytewise).is_err());
    }

    #[test]
    fn read_records_coalesced_equals_individual() {
        let env = MemEnv::new();
        let es = entries(300, 700);
        build(&env, "v.vsst", &es);
        let r = open(&env, "v.vsst");
        let index = r.read_index().unwrap();
        // Every third record, sorted by offset (as GC does).
        let mut handles: Vec<BlockHandle> = index.iter().step_by(3).map(|(_, h)| *h).collect();
        handles.sort_by_key(|h| h.offset);
        let a = &r;
        let individual = a.read_records(&handles, false).unwrap();
        let coalesced = a.read_records(&handles, true).unwrap();
        assert_eq!(individual.len(), coalesced.len());
        for (x, y) in individual.iter().zip(coalesced.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
        // Coalescing must use strictly fewer read ops.
        let before = env.io_stats().snapshot();
        a.read_records(&handles, false).unwrap();
        let mid = env.io_stats().snapshot();
        a.read_records(&handles, true).unwrap();
        let after = env.io_stats().snapshot();
        let ind_ops = mid.delta(&before).total_read_ops();
        let coa_ops = after.delta(&mid).total_read_ops();
        assert!(
            coa_ops < ind_ops,
            "coalesced {coa_ops} vs individual {ind_ops}"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_rtable_roundtrip(
            lens in proptest::collection::vec(1usize..2000, 1..60),
        ) {
            let env = MemEnv::new();
            let es: Vec<(Vec<u8>, Vec<u8>)> = lens
                .iter()
                .enumerate()
                .map(|(i, l)| (format!("user{i:06}").into_bytes(), vec![(i % 251) as u8; *l]))
                .collect();
            let f = env.new_writable("p.vsst", IoClass::Flush).unwrap();
            let mut b = RTableBuilder::new(f, opts());
            for (k, v) in &es {
                b.add(k, v).unwrap();
            }
            let built = b.finish().unwrap();
            proptest::prop_assert_eq!(built.props.num_entries as usize, es.len());
            let file = env.open_random_access("p.vsst", IoClass::FgValueRead).unwrap();
            let r = RTableReader::open(file, 1, None, KeyCmp::Bytewise).unwrap();
            for (k, v) in &es {
                let (fk, fv) = r.get(k).unwrap().unwrap();
                proptest::prop_assert_eq!(&fk, k);
                proptest::prop_assert_eq!(&fv[..], v.as_slice());
            }
            let idx = r.read_index().unwrap();
            proptest::prop_assert_eq!(idx.len(), es.len());
        }
    }

    #[test]
    fn empty_rtable() {
        let env = MemEnv::new();
        build(&env, "v.vsst", &[]);
        let r = open(&env, "v.vsst");
        assert!(r.read_index().unwrap().is_empty());
        assert!(r.get(b"x").unwrap().is_none());
        let mut it = r.iter(false);
        it.seek_to_first();
        assert!(!it.valid());
    }
}
