//! Table properties block.
//!
//! Every table records counts and byte totals, and — crucially for the
//! paper's space-aware compaction (§III-C) — key SSTs record their
//! **value dependencies**: for each referenced value-store file, how many
//! entries point into it and how many value bytes those references cover.
//! `file_size + Σ dep.ref_bytes` is exactly the paper's *compensated size*:
//! the size the file would have had in a non-separated LSM-tree.

use scavenger_util::coding::{
    get_length_prefixed_slice, get_varint32, get_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use scavenger_util::{Error, Result};

/// What kind of table a file is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TableType {
    /// BlockBasedTable (baseline format).
    BTable = 0,
    /// RecordBasedTable (Scavenger value SST).
    RTable = 1,
    /// IndexDecoupledTable (Scavenger key SST).
    DTable = 2,
    /// Append-ordered blob log (BlobDB/Titan value file).
    BlobLog = 3,
}

impl TableType {
    fn from_u8(v: u8) -> Result<TableType> {
        match v {
            0 => Ok(TableType::BTable),
            1 => Ok(TableType::RTable),
            2 => Ok(TableType::DTable),
            3 => Ok(TableType::BlobLog),
            other => Err(Error::corruption(format!("bad table type {other}"))),
        }
    }
}

/// One value-store dependency of a key SST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueDep {
    /// Value-store file number referenced.
    pub file: u64,
    /// Number of references into that file.
    pub entries: u64,
    /// Total bytes of value data those references cover.
    pub ref_bytes: u64,
}

/// Properties stored in every table file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProps {
    /// Format of this table.
    pub table_type: TableType,
    /// Total entries (KV + KF + tombstones).
    pub num_entries: u64,
    /// Entries that are value references (KF).
    pub num_refs: u64,
    /// Entries with inline values.
    pub num_inline: u64,
    /// Tombstones.
    pub num_deletions: u64,
    /// Raw (uncompressed) key bytes.
    pub raw_key_bytes: u64,
    /// Raw value bytes stored in this file (inline values / records).
    pub raw_value_bytes: u64,
    /// For key SSTs: per-value-file dependency stats.
    pub deps: Vec<ValueDep>,
}

impl Default for TableProps {
    fn default() -> Self {
        TableProps {
            table_type: TableType::BTable,
            num_entries: 0,
            num_refs: 0,
            num_inline: 0,
            num_deletions: 0,
            raw_key_bytes: 0,
            raw_value_bytes: 0,
            deps: Vec::new(),
        }
    }
}

impl TableProps {
    /// Sum of `ref_bytes` over all dependencies — the compensation term of
    /// the paper's compensated file size.
    pub fn total_ref_bytes(&self) -> u64 {
        self.deps.iter().map(|d| d.ref_bytes).sum()
    }

    /// Serialize to a properties block payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64 + self.deps.len() * 12);
        v.push(self.table_type as u8);
        put_varint64(&mut v, self.num_entries);
        put_varint64(&mut v, self.num_refs);
        put_varint64(&mut v, self.num_inline);
        put_varint64(&mut v, self.num_deletions);
        put_varint64(&mut v, self.raw_key_bytes);
        put_varint64(&mut v, self.raw_value_bytes);
        put_varint32(&mut v, self.deps.len() as u32);
        for d in &self.deps {
            put_varint64(&mut v, d.file);
            put_varint64(&mut v, d.entries);
            put_varint64(&mut v, d.ref_bytes);
        }
        v
    }

    /// Parse a properties block payload.
    pub fn decode(mut src: &[u8]) -> Result<TableProps> {
        if src.is_empty() {
            return Err(Error::corruption("empty properties block"));
        }
        let table_type = TableType::from_u8(src[0])?;
        src = &src[1..];
        let num_entries = get_varint64(&mut src)?;
        let num_refs = get_varint64(&mut src)?;
        let num_inline = get_varint64(&mut src)?;
        let num_deletions = get_varint64(&mut src)?;
        let raw_key_bytes = get_varint64(&mut src)?;
        let raw_value_bytes = get_varint64(&mut src)?;
        let ndeps = get_varint32(&mut src)? as usize;
        let mut deps = Vec::with_capacity(ndeps.min(1024));
        for _ in 0..ndeps {
            deps.push(ValueDep {
                file: get_varint64(&mut src)?,
                entries: get_varint64(&mut src)?,
                ref_bytes: get_varint64(&mut src)?,
            });
        }
        if !src.is_empty() {
            return Err(Error::corruption("trailing bytes in properties block"));
        }
        Ok(TableProps {
            table_type,
            num_entries,
            num_refs,
            num_inline,
            num_deletions,
            raw_key_bytes,
            raw_value_bytes,
            deps,
        })
    }
}

/// Keys used in the metaindex block to locate auxiliary blocks.
pub mod meta_keys {
    /// Bloom filter over all user keys.
    pub const FILTER: &str = "scavenger.filter";
    /// Bloom filter over DTable KF-stream user keys.
    pub const FILTER_KF: &str = "scavenger.filter.kf";
    /// Bloom filter over DTable KV-stream user keys.
    pub const FILTER_KV: &str = "scavenger.filter.kv";
    /// Table properties.
    pub const PROPS: &str = "scavenger.props";
    /// DTable KF-stream index block.
    pub const KF_INDEX: &str = "scavenger.index.kf";
}

/// A tiny helper to build / parse metaindex blocks (name → handle).
pub mod metaindex {
    use super::*;
    use crate::handle::BlockHandle;

    /// Serialize `(name, handle)` pairs.
    pub fn encode(entries: &[(&str, BlockHandle)]) -> Vec<u8> {
        let mut v = Vec::new();
        put_varint32(&mut v, entries.len() as u32);
        for (name, handle) in entries {
            put_length_prefixed_slice(&mut v, name.as_bytes());
            handle.encode_to(&mut v);
        }
        v
    }

    /// Parse into a name → handle map.
    pub fn decode(mut src: &[u8]) -> Result<Vec<(String, BlockHandle)>> {
        let n = get_varint32(&mut src)? as usize;
        let mut out = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let name = get_length_prefixed_slice(&mut src)?;
            let handle = BlockHandle::decode_from(&mut src)?;
            out.push((
                String::from_utf8(name.to_vec())
                    .map_err(|_| Error::corruption("non-utf8 metaindex key"))?,
                handle,
            ));
        }
        Ok(out)
    }

    /// Find a handle by name.
    pub fn find(entries: &[(String, BlockHandle)], name: &str) -> Option<BlockHandle> {
        entries.iter().find(|(n, _)| n == name).map(|(_, h)| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::BlockHandle;

    #[test]
    fn props_roundtrip() {
        let p = TableProps {
            table_type: TableType::DTable,
            num_entries: 100,
            num_refs: 60,
            num_inline: 30,
            num_deletions: 10,
            raw_key_bytes: 2400,
            raw_value_bytes: 9000,
            deps: vec![
                ValueDep {
                    file: 7,
                    entries: 40,
                    ref_bytes: 640_000,
                },
                ValueDep {
                    file: 9,
                    entries: 20,
                    ref_bytes: 320_000,
                },
            ],
        };
        let decoded = TableProps::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.total_ref_bytes(), 960_000);
    }

    #[test]
    fn props_reject_trailing_bytes() {
        let mut enc = TableProps::default().encode();
        enc.push(1);
        assert!(TableProps::decode(&enc).is_err());
    }

    #[test]
    fn props_reject_empty() {
        assert!(TableProps::decode(&[]).is_err());
    }

    #[test]
    fn metaindex_roundtrip() {
        let entries = [
            (meta_keys::FILTER, BlockHandle::new(10, 20)),
            (meta_keys::PROPS, BlockHandle::new(30, 40)),
        ];
        let enc = metaindex::encode(&entries);
        let dec = metaindex::decode(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(
            metaindex::find(&dec, meta_keys::PROPS),
            Some(BlockHandle::new(30, 40))
        );
        assert_eq!(metaindex::find(&dec, "missing"), None);
    }

    #[test]
    fn table_type_codes_stable() {
        // On-disk format stability: these numbers must never change.
        assert_eq!(TableType::BTable as u8, 0);
        assert_eq!(TableType::RTable as u8, 1);
        assert_eq!(TableType::DTable as u8, 2);
        assert_eq!(TableType::BlobLog as u8, 3);
    }
}
