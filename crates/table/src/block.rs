//! Prefix-compressed key-value blocks with restart points.
//!
//! The classic LevelDB block layout:
//!
//! ```text
//! entry*   := varint32 shared | varint32 non_shared | varint32 value_len
//!             | key_delta bytes | value bytes
//! trailer  := fixed32 restart_offset * num_restarts | fixed32 num_restarts
//! ```
//!
//! Every `restart_interval` entries the shared prefix resets to zero, and
//! the entry's offset is recorded in the restart array, enabling binary
//! search by key without decoding the whole block.

use crate::KeyCmp;
use bytes::Bytes;
use scavenger_util::coding::{get_varint32, put_fixed32, put_varint32};
use scavenger_util::{Error, Result};
use std::cmp::Ordering;

/// Builds a block from keys added in strictly increasing order.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    num_entries: usize,
}

impl BlockBuilder {
    /// Create a builder with the given restart interval (LevelDB uses 16;
    /// index blocks typically use 1 for exact binary search).
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Append an entry. Keys must arrive in increasing order (the caller's
    /// comparator); this is debug-asserted bytewise at restart boundaries
    /// only, since ordering is the caller's contract.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        let shared = if self.count_since_restart < self.restart_interval {
            common_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        };
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, non_shared as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count_since_restart += 1;
        self.num_entries += 1;
    }

    /// Estimated size of the finished block in bytes.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Last key added (empty before the first `add`).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finish the block, returning its serialized bytes and resetting the
    /// builder for reuse.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for &r in &self.restarts {
            put_fixed32(&mut out, r);
        }
        put_fixed32(&mut out, self.restarts.len() as u32);
        self.restarts.clear();
        self.restarts.push(0);
        self.count_since_restart = 0;
        self.last_key.clear();
        self.num_entries = 0;
        out
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// An immutable, parsed block ready for iteration.
#[derive(Clone)]
pub struct Block {
    data: Bytes,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Parse a serialized block.
    pub fn new(data: Bytes) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corruption("block too small"));
        }
        let num_restarts = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap()) as usize;
        let trailer = num_restarts
            .checked_mul(4)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| Error::corruption("restart count overflow"))?;
        if trailer > data.len() {
            return Err(Error::corruption("restart array overruns block"));
        }
        Ok(Block {
            restarts_offset: data.len() - trailer,
            num_restarts,
            data,
        })
    }

    /// Size of the underlying serialized block.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.num_restarts == 0 || self.restarts_offset == 0
    }

    fn restart_point(&self, i: usize) -> usize {
        let off = self.restarts_offset + i * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap()) as usize
    }

    /// Create an iterator over this block.
    pub fn iter(&self, cmp: KeyCmp) -> BlockIter {
        BlockIter {
            block: self.clone(),
            cmp,
            offset: 0,
            next_offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }
}

/// Iterator over a [`Block`]'s entries.
pub struct BlockIter {
    block: Block,
    cmp: KeyCmp,
    /// Offset of the current entry.
    offset: usize,
    /// Offset just past the current entry (start of the next one).
    next_offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl BlockIter {
    /// True if the iterator is positioned on an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Current key. Only meaningful while [`valid`](Self::valid).
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// Current value as a zero-copy slice of the block.
    pub fn value(&self) -> Bytes {
        debug_assert!(self.valid);
        self.block
            .data
            .slice(self.value_range.0..self.value_range.1)
    }

    /// Byte offset of the current entry within the block (used by
    /// two-level iterators for cache bookkeeping).
    pub fn entry_offset(&self) -> usize {
        self.offset
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.key.clear();
        self.next_offset = 0;
        self.valid = false;
        self.parse_next();
    }

    /// Position at the first entry whose key is `>= target` under the
    /// iterator's comparator.
    pub fn seek(&mut self, target: &[u8]) {
        // Binary search restart points for the last restart with key < target.
        let (mut lo, mut hi) = (0usize, self.block.num_restarts.saturating_sub(1));
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let off = self.block.restart_point(mid);
            match self.key_at_restart(off) {
                Some(k) if self.cmp.cmp(&k, target) == Ordering::Less => lo = mid,
                _ => hi = mid - 1,
            }
        }
        // Linear scan from that restart.
        self.key.clear();
        self.next_offset = if self.block.num_restarts == 0 {
            self.block.restarts_offset
        } else {
            self.block.restart_point(lo)
        };
        self.valid = false;
        loop {
            if !self.parse_next() {
                return;
            }
            if self.cmp.cmp(&self.key, target) != Ordering::Less {
                return;
            }
        }
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        if self.valid {
            self.parse_next();
        }
    }

    fn key_at_restart(&self, offset: usize) -> Option<Vec<u8>> {
        let data = &self.block.data[..self.block.restarts_offset];
        let mut cur = &data[offset..];
        let shared = get_varint32(&mut cur).ok()?;
        if shared != 0 {
            return None; // corrupt: restart entries must have shared == 0
        }
        let non_shared = get_varint32(&mut cur).ok()? as usize;
        let _vlen = get_varint32(&mut cur).ok()?;
        if cur.len() < non_shared {
            return None;
        }
        Some(cur[..non_shared].to_vec())
    }

    /// Decode the entry at `next_offset` into the iterator state.
    /// Returns false (and invalidates) at end of block or on corruption.
    fn parse_next(&mut self) -> bool {
        let limit = self.block.restarts_offset;
        if self.next_offset >= limit {
            self.valid = false;
            return false;
        }
        self.offset = self.next_offset;
        let data = &self.block.data[..limit];
        let mut cur = &data[self.next_offset..];
        let before = cur.len();
        let (shared, non_shared, vlen) = match (
            get_varint32(&mut cur),
            get_varint32(&mut cur),
            get_varint32(&mut cur),
        ) {
            (Ok(a), Ok(b), Ok(c)) => (a as usize, b as usize, c as usize),
            _ => {
                self.valid = false;
                return false;
            }
        };
        let header = before - cur.len();
        if shared > self.key.len() || cur.len() < non_shared + vlen {
            self.valid = false;
            return false;
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&cur[..non_shared]);
        let vstart = self.next_offset + header + non_shared;
        self.value_range = (vstart, vstart + vlen);
        self.next_offset = vstart + vlen;
        self.valid = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(entries: &[(&[u8], &[u8])], interval: usize) -> Block {
        let mut b = BlockBuilder::new(interval);
        for (k, v) in entries {
            b.add(k, v);
        }
        Block::new(Bytes::from(b.finish())).unwrap()
    }

    #[test]
    fn empty_block_iterates_nothing() {
        let block = build(&[], 16);
        let mut it = block.iter(KeyCmp::Bytewise);
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(b"anything");
        assert!(!it.valid());
    }

    #[test]
    fn iterate_in_order() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..100)
            .map(|i| {
                (
                    format!("key{i:04}").into_bytes(),
                    format!("val{i}").into_bytes(),
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        for interval in [1, 2, 16, 1000] {
            let block = build(&refs, interval);
            let mut it = block.iter(KeyCmp::Bytewise);
            it.seek_to_first();
            for (k, v) in &entries {
                assert!(it.valid(), "interval {interval}");
                assert_eq!(it.key(), k.as_slice());
                assert_eq!(&it.value()[..], v.as_slice());
                it.next();
            }
            assert!(!it.valid());
        }
    }

    #[test]
    fn seek_finds_exact_and_successor() {
        let refs: Vec<(Vec<u8>, Vec<u8>)> = (0..50)
            .map(|i| (format!("k{:03}", i * 2).into_bytes(), vec![i as u8]))
            .collect();
        let entries: Vec<(&[u8], &[u8])> = refs
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let block = build(&entries, 4);
        let mut it = block.iter(KeyCmp::Bytewise);

        it.seek(b"k010");
        assert!(it.valid());
        assert_eq!(it.key(), b"k010");

        it.seek(b"k011"); // between entries -> successor k012
        assert!(it.valid());
        assert_eq!(it.key(), b"k012");

        it.seek(b"k000");
        assert_eq!(it.key(), b"k000");

        it.seek(b"zzz");
        assert!(!it.valid());
    }

    #[test]
    fn prefix_compression_shrinks_blocks() {
        let long_prefix: Vec<(Vec<u8>, Vec<u8>)> = (0..64)
            .map(|i| {
                (
                    format!("common/long/prefix/{i:04}").into_bytes(),
                    vec![0u8; 4],
                )
            })
            .collect();
        let entries: Vec<(&[u8], &[u8])> = long_prefix
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let compressed = build(&entries, 16);
        let uncompressed = build(&entries, 1);
        assert!(compressed.len() < uncompressed.len());
    }

    #[test]
    fn value_is_zero_copy_slice() {
        let block = build(&[(b"a", b"hello")], 16);
        let mut it = block.iter(KeyCmp::Bytewise);
        it.seek_to_first();
        let v = it.value();
        assert_eq!(&v[..], b"hello");
    }

    #[test]
    fn corrupt_restart_count_is_rejected() {
        let mut b = BlockBuilder::new(16);
        b.add(b"a", b"1");
        let mut data = b.finish();
        let n = data.len();
        data[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Block::new(Bytes::from(data)).is_err());
    }

    #[test]
    fn internal_key_ordering_seek() {
        use scavenger_util::ikey::{make_internal_key, ValueType};
        let mut b = BlockBuilder::new(4);
        // Same user key, descending seq = ascending internal order.
        let k_new = make_internal_key(b"k", 9, ValueType::Value);
        let k_old = make_internal_key(b"k", 3, ValueType::Value);
        b.add(&k_new, b"new");
        b.add(&k_old, b"old");
        let block = Block::new(Bytes::from(b.finish())).unwrap();
        let mut it = block.iter(KeyCmp::Internal);
        // Seek to seq 100 (higher than anything) -> lands on seq 9 entry.
        let target = make_internal_key(b"k", 100, ValueType::Value);
        it.seek(&target);
        assert!(it.valid());
        assert_eq!(&it.value()[..], b"new");
        // Seek to seq 5 -> first entry with seq <= 5 is the seq-3 one.
        let target = make_internal_key(b"k", 5, ValueType::Value);
        it.seek(&target);
        assert!(it.valid());
        assert_eq!(&it.value()[..], b"old");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_block_roundtrip(
            mut keys in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 1..24), 1..120),
            interval in 1usize..32,
        ) {
            let keys: Vec<Vec<u8>> = std::mem::take(&mut keys).into_iter().collect();
            let mut b = BlockBuilder::new(interval);
            for (i, k) in keys.iter().enumerate() {
                b.add(k, &i.to_le_bytes());
            }
            let block = Block::new(Bytes::from(b.finish())).unwrap();
            let mut it = block.iter(KeyCmp::Bytewise);
            it.seek_to_first();
            for (i, k) in keys.iter().enumerate() {
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), k.as_slice());
                let expected = i.to_le_bytes();
                prop_assert_eq!(&it.value()[..], expected.as_slice());
                it.next();
            }
            prop_assert!(!it.valid());
            // Seeking to each key finds it.
            for k in keys.iter() {
                it.seek(k);
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), k.as_slice());
            }
        }
    }
}
