//! Sharded LRU block cache with a high-priority pool.
//!
//! Mirrors RocksDB's `LRUCache` with `high_pri_pool_ratio`: entries are
//! inserted into either the high- or low-priority LRU list; eviction drains
//! the low-priority list first, and the high-priority pool overflows into
//! the low list when it exceeds its share of capacity.
//!
//! Scavenger leans on the priority split (paper §III-B2): DTable KF blocks
//! and RTable index partitions are inserted high-priority so GC-Lookups and
//! Lazy Reads stay cache-resident while bulky value/data blocks churn
//! through the low-priority pool.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Priority class of a cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePriority {
    /// Evicted last (index / KF blocks).
    High,
    /// Evicted first (data / record blocks).
    Low,
}

/// Cache key: `(file_id, block_offset, kind_tag)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owning file id: the file number, optionally namespaced with
    /// [`cache_file_id`] when several stores share one cache.
    pub file: u64,
    /// Block offset within the file.
    pub offset: u64,
    /// Stream tag (data / index / KF) so different streams never collide.
    pub kind: u8,
}

/// Bits of [`CacheKey::file`] carrying the real file number; the bits
/// above hold the store's cache namespace.
const CACHE_FILE_BITS: u32 = 40;

static NAMESPACES: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique cache namespace. Stores that share one
/// [`LruCache`] (e.g. the shards of a `DbShards`) each take a namespace
/// and open their readers with [`cache_file_id`]-mixed ids; without it,
/// two stores' file numbers collide (both allocate from 1) and one
/// store would serve the other's cached blocks.
pub fn new_cache_namespace() -> u64 {
    NAMESPACES.fetch_add(1, Ordering::Relaxed) << CACHE_FILE_BITS
}

/// Mix a store's cache `namespace` into `file_number`, yielding the
/// [`CacheKey::file`] id. Namespace `0` (the default for a store with a
/// private cache) leaves the number unchanged.
pub fn cache_file_id(namespace: u64, file_number: u64) -> u64 {
    debug_assert_eq!(
        file_number >> CACHE_FILE_BITS,
        0,
        "file number overflows the cache-id namespace split"
    );
    namespace | file_number
}

const NIL: u32 = u32::MAX;

struct Node<V> {
    key: CacheKey,
    value: V,
    charge: usize,
    pri: CachePriority,
    prev: u32,
    next: u32,
}

#[derive(Clone, Copy, Default)]
struct ListEnds {
    head: u32, // MRU
    tail: u32, // LRU
}

struct Shard<V> {
    map: HashMap<CacheKey, u32>,
    nodes: Vec<Option<Node<V>>>,
    free: Vec<u32>,
    lists: [ListEnds; 2], // [high, low]
    usage: usize,
    high_usage: usize,
    capacity: usize,
    high_capacity: usize,
}

fn list_index(p: CachePriority) -> usize {
    match p {
        CachePriority::High => 0,
        CachePriority::Low => 1,
    }
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize, high_ratio: f64) -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            lists: [ListEnds {
                head: NIL,
                tail: NIL,
            }; 2],
            usage: 0,
            high_usage: 0,
            capacity,
            high_capacity: (capacity as f64 * high_ratio) as usize,
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next, pri) = {
            let n = self.nodes[idx as usize].as_ref().unwrap();
            (n.prev, n.next, n.pri)
        };
        let list = &mut self.lists[list_index(pri)];
        if prev != NIL {
            self.nodes[prev as usize].as_mut().unwrap().next = next;
        } else {
            list.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].as_mut().unwrap().prev = prev;
        } else {
            list.tail = prev;
        }
    }

    fn push_mru(&mut self, idx: u32, pri: CachePriority) {
        let list = &mut self.lists[list_index(pri)];
        let old_head = list.head;
        list.head = idx;
        if list.tail == NIL {
            list.tail = idx;
        }
        {
            let n = self.nodes[idx as usize].as_mut().unwrap();
            n.pri = pri;
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].as_mut().unwrap().prev = idx;
        }
    }

    fn remove_node(&mut self, idx: u32) -> Node<V> {
        self.unlink(idx);
        let node = self.nodes[idx as usize].take().unwrap();
        self.free.push(idx);
        self.map.remove(&node.key);
        self.usage -= node.charge;
        if node.pri == CachePriority::High {
            self.high_usage -= node.charge;
        }
        node
    }

    fn alloc(&mut self, node: Node<V>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Some(node);
            idx
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    /// Demote from the high pool into the low pool while the high pool is
    /// over its share.
    fn maintain_pools(&mut self) {
        while self.high_usage > self.high_capacity {
            let victim = self.lists[0].tail;
            if victim == NIL {
                break;
            }
            self.unlink(victim);
            let charge = self.nodes[victim as usize].as_ref().unwrap().charge;
            self.high_usage -= charge;
            self.push_mru(victim, CachePriority::Low);
        }
    }

    /// Evict until under capacity, never evicting `keep`.
    fn evict(&mut self, keep: u32) -> usize {
        let mut evicted = 0;
        while self.usage > self.capacity {
            let mut victim = self.lists[1].tail;
            if victim == keep {
                victim = {
                    let n = self.nodes[victim as usize].as_ref().unwrap();
                    n.prev
                };
            }
            if victim == NIL {
                // Low list exhausted: take from high list.
                victim = self.lists[0].tail;
                if victim == keep {
                    victim = self.nodes[victim as usize].as_ref().unwrap().prev;
                }
            }
            if victim == NIL {
                break;
            }
            self.remove_node(victim);
            evicted += 1;
        }
        evicted
    }

    fn insert(&mut self, key: CacheKey, value: V, charge: usize, pri: CachePriority) {
        if let Some(&idx) = self.map.get(&key) {
            self.remove_node(idx);
        }
        let idx = self.alloc(Node {
            key,
            value,
            charge,
            pri,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.usage += charge;
        if pri == CachePriority::High {
            self.high_usage += charge;
        }
        self.push_mru(idx, pri);
        self.maintain_pools();
        self.evict(idx);
    }

    fn get(&mut self, key: &CacheKey) -> Option<V> {
        let idx = *self.map.get(key)?;
        let pri = self.nodes[idx as usize].as_ref().unwrap().pri;
        self.unlink(idx);
        self.push_mru(idx, pri);
        Some(self.nodes[idx as usize].as_ref().unwrap().value.clone())
    }

    fn erase(&mut self, key: &CacheKey) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.remove_node(idx);
            true
        } else {
            false
        }
    }
}

/// A sharded LRU cache with high/low priority pools and hit/miss counters.
pub struct LruCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl<V: Clone> LruCache<V> {
    /// Create a cache of `capacity` bytes split over `shards` shards, with
    /// `high_ratio` of capacity reserved for the high-priority pool.
    pub fn new(capacity: usize, shards: usize, high_ratio: f64) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity / shards).max(1);
        LruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard, high_ratio.clamp(0.0, 1.0))))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Create with RocksDB-ish defaults: 16 shards, 50% high-pri pool.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(capacity, 16, 0.5)
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() as usize) % self.shards.len();
        &self.shards[i]
    }

    /// Insert (or replace) an entry.
    pub fn insert(&self, key: CacheKey, value: V, charge: usize, pri: CachePriority) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.shard_of(&key).lock().insert(key, value, charge, pri);
    }

    /// Look up an entry, promoting it to MRU on hit.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let got = self.shard_of(key).lock().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Remove an entry if present.
    pub fn erase(&self, key: &CacheKey) -> bool {
        self.shard_of(key).lock().erase(key)
    }

    /// Current total charged bytes.
    pub fn usage(&self) -> usize {
        self.shards.iter().map(|s| s.lock().usage).sum()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, inserts)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.inserts.load(Ordering::Relaxed),
        )
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey {
            file: 1,
            offset: i,
            kind: 0,
        }
    }

    fn single_shard(capacity: usize, high_ratio: f64) -> LruCache<u64> {
        LruCache::new(capacity, 1, high_ratio)
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = single_shard(1000, 0.5);
        c.insert(key(1), 11, 10, CachePriority::Low);
        c.insert(key(2), 22, 10, CachePriority::High);
        assert_eq!(c.get(&key(1)), Some(11));
        assert_eq!(c.get(&key(2)), Some(22));
        assert_eq!(c.get(&key(3)), None);
        let (h, m, i) = c.stats();
        assert_eq!((h, m, i), (2, 1, 2));
    }

    #[test]
    fn evicts_lru_low_priority_first() {
        let c = single_shard(30, 0.5);
        c.insert(key(1), 1, 10, CachePriority::Low);
        c.insert(key(2), 2, 10, CachePriority::High);
        c.insert(key(3), 3, 10, CachePriority::Low);
        // Cache full (30). Inserting another 10 evicts LRU low = key 1.
        c.insert(key(4), 4, 10, CachePriority::Low);
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.get(&key(2)), Some(2), "high-pri survives");
        assert_eq!(c.get(&key(3)), Some(3));
        assert_eq!(c.get(&key(4)), Some(4));
    }

    #[test]
    fn get_promotes_to_mru() {
        let c = single_shard(30, 0.0);
        c.insert(key(1), 1, 10, CachePriority::Low);
        c.insert(key(2), 2, 10, CachePriority::Low);
        c.insert(key(3), 3, 10, CachePriority::Low);
        assert_eq!(c.get(&key(1)), Some(1)); // 1 becomes MRU
        c.insert(key(4), 4, 10, CachePriority::Low); // evicts 2 (LRU)
        assert_eq!(c.get(&key(2)), None);
        assert_eq!(c.get(&key(1)), Some(1));
    }

    #[test]
    fn high_pool_overflow_demotes() {
        // High pool limited to 20 of 40; third high insert demotes the LRU
        // high entry instead of evicting it.
        let c = single_shard(40, 0.5);
        c.insert(key(1), 1, 10, CachePriority::High);
        c.insert(key(2), 2, 10, CachePriority::High);
        c.insert(key(3), 3, 10, CachePriority::High);
        assert_eq!(c.usage(), 30);
        // All three still present (demotion, not eviction).
        assert_eq!(c.get(&key(1)), Some(1));
        assert_eq!(c.get(&key(2)), Some(2));
        assert_eq!(c.get(&key(3)), Some(3));
        // Now fill with low-pri: demoted high entries compete as low.
        c.insert(key(4), 4, 10, CachePriority::Low);
        c.insert(key(5), 5, 10, CachePriority::Low);
        assert!(c.usage() <= 40);
    }

    #[test]
    fn replacing_key_updates_value_and_charge() {
        let c = single_shard(100, 0.5);
        c.insert(key(1), 1, 60, CachePriority::Low);
        c.insert(key(1), 100, 10, CachePriority::Low);
        assert_eq!(c.get(&key(1)), Some(100));
        assert_eq!(c.usage(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn erase_removes() {
        let c = single_shard(100, 0.5);
        c.insert(key(1), 1, 10, CachePriority::Low);
        assert!(c.erase(&key(1)));
        assert!(!c.erase(&key(1)));
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.usage(), 0);
    }

    #[test]
    fn oversized_entry_can_exceed_capacity_alone() {
        let c = single_shard(10, 0.5);
        c.insert(key(1), 1, 100, CachePriority::Low);
        // The entry itself is never evicted during its own insert.
        assert_eq!(c.get(&key(1)), Some(1));
        // But the next insert pushes it out.
        c.insert(key(2), 2, 5, CachePriority::Low);
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.get(&key(2)), Some(2));
    }

    #[test]
    fn kind_tag_distinguishes_streams() {
        let c = single_shard(100, 0.5);
        let a = CacheKey {
            file: 1,
            offset: 0,
            kind: 0,
        };
        let b = CacheKey {
            file: 1,
            offset: 0,
            kind: 1,
        };
        c.insert(a, 1, 10, CachePriority::Low);
        c.insert(b, 2, 10, CachePriority::Low);
        assert_eq!(c.get(&a), Some(1));
        assert_eq!(c.get(&b), Some(2));
    }

    #[test]
    fn many_shards_distribute() {
        let c: LruCache<u64> = LruCache::new(16_000, 16, 0.5);
        for i in 0..1000 {
            c.insert(
                CacheKey {
                    file: i,
                    offset: i,
                    kind: 0,
                },
                i,
                16,
                CachePriority::Low,
            );
        }
        assert!(c.len() <= 1000);
        assert!(c.usage() <= 16_000);
        // Recently inserted keys should mostly be present.
        let hits = (900..1000)
            .filter(|&i| {
                c.get(&CacheKey {
                    file: i,
                    offset: i,
                    kind: 0,
                })
                .is_some()
            })
            .count();
        assert!(hits > 50, "expected most recent keys cached, got {hits}");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(LruCache::<u64>::with_capacity(64 * 1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c2 = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = CacheKey {
                        file: t,
                        offset: i % 100,
                        kind: 0,
                    };
                    c2.insert(k, i, 64, CachePriority::Low);
                    c2.get(&k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.usage() <= 64 * 1024);
    }
}
