//! Microbenchmarks over the substrate data structures: blocks, bloom
//! filters, CRC, block cache, memtable, WAL, and the workload generators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scavenger_table::block::{Block, BlockBuilder};
use scavenger_table::cache::{CacheKey, CachePriority, LruCache};
use scavenger_table::filter::{BloomBuilder, BloomReader};
use scavenger_table::KeyCmp;
use scavenger_util::crc32c;
use scavenger_workload::dist::{GenPareto, Zipfian};

fn bench_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("block");
    g.sample_size(20);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..256)
        .map(|i| (format!("key{i:06}").into_bytes(), vec![7u8; 32]))
        .collect();
    g.bench_function("build_4k", |b| {
        b.iter(|| {
            let mut bb = BlockBuilder::new(16);
            for (k, v) in &entries {
                bb.add(k, v);
            }
            bb.finish()
        })
    });
    let block = {
        let mut bb = BlockBuilder::new(16);
        for (k, v) in &entries {
            bb.add(k, v);
        }
        Block::new(bytes::Bytes::from(bb.finish())).unwrap()
    };
    g.bench_function("seek", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let mut it = block.iter(KeyCmp::Bytewise);
            it.seek(format!("key{:06}", (i * 37) % 256).as_bytes());
            i += 1;
            assert!(it.valid());
        })
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.sample_size(20);
    g.bench_function("build_10k_keys", |b| {
        b.iter(|| {
            let mut f = BloomBuilder::new(10);
            for i in 0..10_000u64 {
                f.add_key(&i.to_le_bytes());
            }
            f.finish()
        })
    });
    let filter = {
        let mut f = BloomBuilder::new(10);
        for i in 0..10_000u64 {
            f.add_key(&i.to_le_bytes());
        }
        f.finish()
    };
    g.bench_function("query", |b| {
        let r = BloomReader::new(&filter);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            r.may_contain(&i.to_le_bytes())
        })
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32c");
    let data = vec![0xa5u8; 64 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("64k", |b| b.iter(|| crc32c::value(&data)));
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.sample_size(20);
    let cache: LruCache<u64> = LruCache::with_capacity(1 << 20);
    for i in 0..4096u64 {
        cache.insert(
            CacheKey {
                file: 1,
                offset: i,
                kind: 0,
            },
            i,
            256,
            CachePriority::Low,
        );
    }
    g.bench_function("hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            cache.get(&CacheKey {
                file: 1,
                offset: i,
                kind: 0,
            })
        })
    });
    g.bench_function("insert_evict", |b| {
        let mut i = 1u64 << 32;
        b.iter(|| {
            i += 1;
            cache.insert(
                CacheKey {
                    file: 2,
                    offset: i,
                    kind: 0,
                },
                i,
                256,
                CachePriority::Low,
            );
        })
    });
    g.finish();
}

fn bench_memtable(c: &mut Criterion) {
    use scavenger_lsm::memtable::Memtable;
    use scavenger_util::ikey::ValueType;
    let mut g = c.benchmark_group("memtable");
    g.sample_size(20);
    g.bench_function("insert_1k_entries", |b| {
        b.iter_batched(
            Memtable::new,
            |m| {
                for i in 0..1000u64 {
                    m.insert(
                        format!("key{i:06}").as_bytes(),
                        i,
                        ValueType::Value,
                        bytes::Bytes::from_static(&[0u8; 64]),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    let m = Memtable::new();
    for i in 0..10_000u64 {
        m.insert(
            format!("key{i:06}").as_bytes(),
            i,
            ValueType::Value,
            bytes::Bytes::from_static(&[0u8; 64]),
        );
    }
    g.bench_function("get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 31 + 7) % 10_000;
            m.get(format!("key{i:06}").as_bytes(), u64::MAX >> 9)
        })
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    use scavenger_env::{Env, IoClass, MemEnv};
    use scavenger_lsm::wal::LogWriter;
    let mut g = c.benchmark_group("wal");
    g.sample_size(20);
    let payload = vec![3u8; 4096];
    g.throughput(Throughput::Bytes(4096 * 64));
    g.bench_function("append_64x4k", |b| {
        let env = MemEnv::new();
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            let f = env.new_writable(&format!("wal{n}"), IoClass::Wal).unwrap();
            let mut w = LogWriter::new(f);
            for _ in 0..64 {
                w.add_record(&payload).unwrap();
            }
            w.sync().unwrap();
        })
    });
    g.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributions");
    let z = Zipfian::new(1_000_000, 0.99, true);
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("zipfian_next", |b| b.iter(|| z.next(&mut rng)));
    let p = GenPareto::with_mean(1024.0);
    g.bench_function("pareto_next", |b| b.iter(|| p.next(&mut rng)));
    g.finish();
}

criterion_group!(
    benches,
    bench_block,
    bench_bloom,
    bench_crc,
    bench_cache,
    bench_memtable,
    bench_wal,
    bench_distributions
);
criterion_main!(benches);
