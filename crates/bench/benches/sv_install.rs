//! Superversion install-cost microbenchmark: copy-on-write member swap
//! (`cow_superversion = true`, the default) vs the full-rebuild
//! reference path, measured on the two mutation shapes that install
//! bundles:
//!
//! * `value_edit` — version-only installs via `Lsm::apply_value_edit`
//!   over a populated tree (the GC's install shape; the rebuild path
//!   re-reads memtable + imms + version set under their locks, CoW
//!   clones two `Arc`s and re-reads only the version set).
//! * `write_rotate` — the full write path with a tiny memtable, so
//!   rotation/flush/compaction installs dominate the fixed costs.
//!
//! Both paths are bit-equivalent (asserted by
//! `scavenger-lsm::db::tests::cow_install_is_equivalent_to_rebuild`);
//! only install cost may differ. Writes `<workspace>/BENCH_sv_install.json`
//! (override with `SV_INSTALL_JSON`). Env knobs: `SV_INSTALL_N`
//! (value-edit installs, default 20000), `SV_INSTALL_WRITES` (writes,
//! default 30000).

use criterion::black_box;
use scavenger_env::MemEnv;
use scavenger_lsm::{Lsm, LsmOptions, ValueEditBundle, WriteBatch};
use std::io::Write as _;
use std::time::Instant;

fn opts(dir: &str, cow: bool) -> LsmOptions {
    let mut o = LsmOptions::new(MemEnv::shared(), dir);
    o.cow_superversion = cow;
    o.wal = false;
    o
}

/// Version-only installs over a tree with real depth: several levels of
/// SSTs plus a handful of immutable memtables pinned by a view, so the
/// rebuild path has lists to walk and locks to take.
fn bench_value_edit(n: usize, cow: bool) -> f64 {
    let mut o = opts("sv-edit", cow);
    o.memtable_size = 16 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.target_file_size = 32 * 1024;
    let (db, _) = Lsm::open(o).unwrap();
    for i in 0..4000 {
        let mut b = WriteBatch::new();
        b.put(
            format!("key{i:06}").as_bytes(),
            bytes::Bytes::from(vec![(i % 251) as u8; 120]),
        );
        db.write(b).unwrap();
    }
    db.flush().unwrap();
    db.compact_until_stable().unwrap();
    // Warmup.
    for _ in 0..n / 10 {
        db.apply_value_edit(ValueEditBundle::default()).unwrap();
    }
    let t = Instant::now();
    for _ in 0..n {
        db.apply_value_edit(black_box(ValueEditBundle::default()))
            .unwrap();
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// The write path with a tiny memtable: every ~40 writes rotates,
/// flushes, and compacts inline, each step installing a bundle.
fn bench_write_rotate(writes: usize, cow: bool) -> f64 {
    let mut o = opts("sv-write", cow);
    o.memtable_size = 4 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.target_file_size = 32 * 1024;
    let (db, _) = Lsm::open(o).unwrap();
    let t = Instant::now();
    for i in 0..writes {
        let mut b = WriteBatch::new();
        b.put(
            format!("key{:06}", i % 2000).as_bytes(),
            bytes::Bytes::from(vec![(i % 251) as u8; 80]),
        );
        black_box(db.write(b).unwrap());
    }
    t.elapsed().as_nanos() as f64 / writes as f64
}

/// Contended installs: 4 writer threads share one tree, each write
/// potentially rotating (installing) while the others do the same. The
/// rebuild path re-reads mem/imms/version-set under their locks on
/// every install; CoW's rotated installs skip the version-set mutex —
/// which `log_and_apply` also wants — entirely. Single-core machines
/// time-slice this to ~1.0x; the multi-core CI job records the real
/// contention numbers.
fn bench_contended(writes: usize, cow: bool) -> f64 {
    let mut o = opts("sv-contend", cow);
    o.memtable_size = 4 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.target_file_size = 32 * 1024;
    // Concurrent writers require the threaded background mode (inline
    // mode runs flush on the writer thread and is single-writer by
    // design); rotation installs still happen on the writer threads,
    // flush/compaction installs on the background thread.
    o.background = scavenger_lsm::BackgroundMode::Threaded;
    let (db, _) = Lsm::open(o).unwrap();
    let threads = 4;
    let per = writes / threads;
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let db = &db;
            s.spawn(move || {
                for i in 0..per {
                    let mut b = WriteBatch::new();
                    b.put(
                        format!("w{w}-key{:06}", i % 2000).as_bytes(),
                        bytes::Bytes::from(vec![(i % 251) as u8; 80]),
                    );
                    black_box(db.write(b).unwrap());
                }
            });
        }
    });
    t.elapsed().as_nanos() as f64 / (per * threads) as f64
}

fn main() {
    let n: usize = std::env::var("SV_INSTALL_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let writes: usize = std::env::var("SV_INSTALL_WRITES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);

    let edit_cow = bench_value_edit(n, true);
    let edit_rebuild = bench_value_edit(n, false);
    let write_cow = bench_write_rotate(writes, true);
    let write_rebuild = bench_write_rotate(writes, false);
    let contend_cow = bench_contended(writes, true);
    let contend_rebuild = bench_contended(writes, false);

    println!(
        "sv_install[value_edit]: cow {edit_cow:.0} ns/op vs rebuild {edit_rebuild:.0} ns/op ({:.2}x)",
        edit_rebuild / edit_cow
    );
    println!(
        "sv_install[write_rotate]: cow {write_cow:.0} ns/op vs rebuild {write_rebuild:.0} ns/op ({:.2}x)",
        write_rebuild / write_cow
    );
    println!(
        "sv_install[contended-4]: cow {contend_cow:.0} ns/op vs rebuild {contend_rebuild:.0} ns/op ({:.2}x)",
        contend_rebuild / contend_cow
    );

    let path = std::env::var("SV_INSTALL_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_sv_install.json")
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"bench\": \"sv_install\",\n  \"cores\": {cores},\n  \
         \"value_edit_installs\": {n},\n  \"writes\": {writes},\n  \"ns_per_op\": {{\n    \
         \"value_edit_cow\": {edit_cow:.1},\n    \"value_edit_rebuild\": {edit_rebuild:.1},\n    \
         \"write_rotate_cow\": {write_cow:.1},\n    \"write_rotate_rebuild\": {write_rebuild:.1},\n    \
         \"contended4_cow\": {contend_cow:.1},\n    \"contended4_rebuild\": {contend_rebuild:.1}\n  }},\n  \
         \"cow_speedup\": {{\n    \"value_edit\": {:.2},\n    \"write_rotate\": {:.2},\n    \
         \"contended4\": {:.2}\n  }}\n}}\n",
        edit_rebuild / edit_cow,
        write_rebuild / write_cow,
        contend_rebuild / contend_cow,
    );
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("sv_install: baseline written to {path}"),
        Err(e) => eprintln!("sv_install: failed to write {path}: {e}"),
    }
}
