//! Table-format ablations: BTable vs RTable vs DTable.
//!
//! These isolate the two I/O mechanisms behind the paper's GC wins:
//! * RTable lazy index read vs BTable full scan (Lazy Read, §III-B1);
//! * DTable KF-only lookups vs BTable mixed-block lookups (§III-B2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scavenger_env::{EnvRef, IoClass, MemEnv};
use scavenger_table::btable::{BTableBuilder, BTableReader, TableOptions};
use scavenger_table::dtable::{DTableBuilder, DTableReader};
use scavenger_table::rtable::{RTableBuilder, RTableReader};
use scavenger_table::KeyCmp;
use scavenger_util::ikey::{make_internal_key, ValueRef, ValueType};

const N: usize = 512;
const VSIZE: usize = 4096;

fn opts() -> TableOptions {
    TableOptions {
        cmp: KeyCmp::Internal,
        ..TableOptions::default()
    }
}

fn key(i: usize) -> Vec<u8> {
    make_internal_key(
        format!("user{i:08}").as_bytes(),
        i as u64 + 1,
        ValueType::Value,
    )
}

fn build_value_tables(env: &EnvRef) {
    let f = env.new_writable("b.vsst", IoClass::Flush).unwrap();
    let mut b = BTableBuilder::new(f, opts());
    for i in 0..N {
        b.add(&key(i), &vec![i as u8; VSIZE]).unwrap();
    }
    b.finish().unwrap();

    let f = env.new_writable("r.vsst", IoClass::Flush).unwrap();
    let mut r = RTableBuilder::new(f, opts());
    for i in 0..N {
        r.add(&key(i), &vec![i as u8; VSIZE]).unwrap();
    }
    r.finish().unwrap();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("vsst_build");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((N * VSIZE) as u64));
    g.bench_function("btable", |b| {
        let env: EnvRef = MemEnv::shared();
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            let f = env
                .new_writable(&format!("b{n}.vsst"), IoClass::Flush)
                .unwrap();
            let mut t = BTableBuilder::new(f, opts());
            for i in 0..N {
                t.add(&key(i), &vec![i as u8; VSIZE]).unwrap();
            }
            t.finish().unwrap()
        })
    });
    g.bench_function("rtable", |b| {
        let env: EnvRef = MemEnv::shared();
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            let f = env
                .new_writable(&format!("r{n}.vsst"), IoClass::Flush)
                .unwrap();
            let mut t = RTableBuilder::new(f, opts());
            for i in 0..N {
                t.add(&key(i), &vec![i as u8; VSIZE]).unwrap();
            }
            t.finish().unwrap()
        })
    });
    g.finish();
}

fn bench_gc_read_paths(c: &mut Criterion) {
    // The heart of Lazy Read: enumerating all keys of a value file.
    let env: EnvRef = MemEnv::shared();
    build_value_tables(&env);
    let bfile = env.open_random_access("b.vsst", IoClass::GcRead).unwrap();
    let breader = BTableReader::open(bfile, 1, None, KeyCmp::Internal).unwrap();
    let rfile = env.open_random_access("r.vsst", IoClass::GcRead).unwrap();
    let rreader = RTableReader::open(rfile, 2, None, KeyCmp::Internal).unwrap();

    let mut g = c.benchmark_group("gc_key_enumeration");
    g.sample_size(10);
    g.bench_function("btable_full_scan", |b| {
        b.iter(|| {
            let mut it = breader.iter();
            it.seek_to_first();
            let mut n = 0;
            while it.valid() {
                n += 1;
                it.next();
            }
            assert_eq!(n, N);
        })
    });
    g.bench_function("rtable_lazy_index", |b| {
        b.iter(|| {
            let idx = rreader.read_index().unwrap();
            assert_eq!(idx.len(), N);
        })
    });
    g.finish();
}

fn bench_ksst_lookup(c: &mut Criterion) {
    // DTable vs BTable point lookups on a mixed KV/KF file (the paper's
    // GC-Lookup cache-efficiency argument).
    let env: EnvRef = MemEnv::shared();
    let mixed: Vec<(Vec<u8>, Vec<u8>)> = (0..2048usize)
        .map(|i| {
            if i % 2 == 0 {
                (
                    make_internal_key(
                        format!("user{i:08}").as_bytes(),
                        i as u64 + 1,
                        ValueType::Value,
                    ),
                    vec![3u8; 300],
                )
            } else {
                (
                    make_internal_key(
                        format!("user{i:08}").as_bytes(),
                        i as u64 + 1,
                        ValueType::ValueRef,
                    ),
                    ValueRef {
                        file: 9,
                        size: 16384,
                        offset: 0,
                    }
                    .encode(),
                )
            }
        })
        .collect();
    let f = env.new_writable("k.bsst", IoClass::Flush).unwrap();
    let mut b = BTableBuilder::new(f, opts());
    for (k, v) in &mixed {
        b.add(k, v).unwrap();
    }
    b.finish().unwrap();
    let f = env.new_writable("k.dsst", IoClass::Flush).unwrap();
    let mut d = DTableBuilder::new(f, opts());
    for (k, v) in &mixed {
        d.add(k, v).unwrap();
    }
    d.finish().unwrap();

    let bf = env
        .open_random_access("k.bsst", IoClass::FgIndexRead)
        .unwrap();
    let breader = BTableReader::open(bf, 3, None, KeyCmp::Internal).unwrap();
    let df = env
        .open_random_access("k.dsst", IoClass::FgIndexRead)
        .unwrap();
    let dreader = DTableReader::open(df, 4, None).unwrap();

    let mut g = c.benchmark_group("ksst_ref_lookup");
    g.sample_size(20);
    g.bench_function("btable", |b| {
        let mut i = 1usize;
        b.iter(|| {
            i = (i + 2) % 2048;
            let i = i | 1; // ref keys only
            let t = make_internal_key(
                format!("user{i:08}").as_bytes(),
                u64::MAX >> 9,
                ValueType::ValueRef,
            );
            breader.get(&t).unwrap().unwrap()
        })
    });
    g.bench_function("dtable", |b| {
        let mut i = 1usize;
        b.iter(|| {
            i = (i + 2) % 2048;
            let i = i | 1;
            let t = make_internal_key(
                format!("user{i:08}").as_bytes(),
                u64::MAX >> 9,
                ValueType::ValueRef,
            );
            dreader.get(&t).unwrap().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_gc_read_paths, bench_ksst_lookup);
criterion_main!(benches);
