//! GC executor microbenchmark: one full GC cycle (collect every
//! candidate) under the three executor configurations —
//!
//! * `seq`         — `gc_threads = 1`, pipeline Off (the serial baseline)
//! * `parfetch-4`  — `gc_threads = 4`, pipeline Off (parallel Fetch fan-out)
//! * `pipeline-4`  — `gc_threads = 4`, pipeline On  (overlapped ②→③→④ stages)
//!
//! All three must produce identical total `GcOutcome`s (asserted); only
//! wall-clock and the stage counters may differ. Writes a
//! machine-readable baseline to `<workspace>/BENCH_gc_pipeline.json`
//! (override with `GC_PIPELINE_JSON`).
//!
//! Env knobs: `GC_PIPELINE_N` (records, default 40000),
//! `GC_PIPELINE_ITERS` (measured iterations per config, default 3), and
//! `GC_PIPELINE_ASSERT_OVERLAP=1` to fail unless the pipelined config
//! reports non-zero stage-overlap and parallel-fetch counters (set by
//! the multi-core CI job; meaningless on one core, where the scheduler
//! may serialize the stage threads).

use criterion::black_box;
use scavenger::{Db, EngineMode, GcPipeline, GcStepTimes, MemEnv, Options};
use std::io::Write as _;
use std::time::Instant;

#[derive(Clone, Copy)]
struct Config {
    label: &'static str,
    threads: usize,
    pipeline: GcPipeline,
}

const CONFIGS: [Config; 3] = [
    Config {
        label: "seq",
        threads: 1,
        pipeline: GcPipeline::Off,
    },
    Config {
        label: "parfetch-4",
        threads: 4,
        pipeline: GcPipeline::Off,
    },
    Config {
        label: "pipeline-4",
        threads: 4,
        pipeline: GcPipeline::On,
    },
];

/// Build a DB whose value files each hold a ~50% live/dead mix, so one
/// GC cycle collects many multi-file jobs with real Fetch + Write work.
fn build_db(n: usize, cfg: Config) -> Db {
    let mut o = Options::new(MemEnv::shared(), "bench-db", EngineMode::Scavenger);
    o.auto_gc = false;
    o.wal = false;
    o.memtable_size = 512 << 20; // flush only when asked
    o.vsst_target_size = 4 << 20;
    o.ksst_target_size = 512 * 1024;
    o.base_level_bytes = 32 << 20;
    o.block_cache_bytes = 64 << 20;
    o.gc_batch_files = 8;
    o.gc_threads = cfg.threads;
    o.gc_pipeline = cfg.pipeline;
    let db = Db::open(o).unwrap();
    let value = vec![0xabu8; 600];
    // Load in several flushes -> several source value files.
    let slices = 8;
    let per = n.div_ceil(slices);
    for s in 0..slices {
        for i in (s * per)..((s + 1) * per).min(n) {
            db.put(format!("key{i:08}"), value.clone()).unwrap();
        }
        db.flush().unwrap();
    }
    // Kill every other record: each file keeps a ~50% live mix.
    for i in (0..n).step_by(2) {
        db.put(format!("key{i:08}"), value.clone()).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    // Score-based compaction may settle on trivial moves; force merges
    // until the overwrites are actually exposed as garbage.
    let mut forced = 0;
    while db.lsm().force_compact_once().unwrap() {
        forced += 1;
        assert!(forced < 1024, "runaway forced compaction");
    }
    db
}

/// Aggregate observable result of one full GC cycle.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct CycleOutcome {
    jobs: usize,
    files_collected: usize,
    records_rewritten: u64,
    bytes_reclaimed: u64,
}

struct Sample {
    config: Config,
    mean_ns: f64,
    outcome: CycleOutcome,
    gc: GcStepTimes,
}

fn run_cycle(db: &Db) -> CycleOutcome {
    let mut out = CycleOutcome {
        jobs: 0,
        files_collected: 0,
        records_rewritten: 0,
        bytes_reclaimed: 0,
    };
    while let Some(o) = db.run_gc_at(0.10).unwrap() {
        out.jobs += 1;
        out.files_collected += o.files_collected;
        out.records_rewritten += o.records_rewritten;
        out.bytes_reclaimed += o.bytes_reclaimed;
        assert!(out.jobs < 4096, "runaway GC");
    }
    out
}

fn measure(n: usize, cfg: Config, iters: u32) -> Sample {
    // Warmup build + cycle (excluded from timing).
    let db = build_db(n, cfg);
    let warm = run_cycle(&db);
    drop(db);
    let mut total_ns = 0f64;
    let mut outcome = warm;
    let mut gc = GcStepTimes::default();
    for _ in 0..iters {
        let db = build_db(n, cfg);
        let before = db.stats().gc;
        let t = Instant::now();
        outcome = black_box(run_cycle(&db));
        total_ns += t.elapsed().as_nanos() as f64;
        gc = db.stats().gc.delta(&before);
    }
    Sample {
        config: cfg,
        mean_ns: total_ns / iters as f64,
        outcome,
        gc,
    }
}

fn write_baseline(n: usize, samples: &[Sample]) {
    let path = std::env::var("GC_PIPELINE_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_gc_pipeline.json")
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"bench\": \"gc_pipeline\",\n  \"cores\": {cores},\n  \"records\": {n},\n  \"results\": [\n"
    );
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"mean_ns\": {:.0}, \"ns_per_record\": {:.1}, \
             \"jobs\": {}, \"records_rewritten\": {}, \"fetch_parallel_jobs\": {}, \
             \"write_batches\": {}, \"pipeline_batches\": {}, \"pipeline_overlaps\": {}, \
             \"pipeline_backpressure\": {}}}{}\n",
            s.config.label,
            s.mean_ns,
            s.mean_ns / n as f64,
            s.outcome.jobs,
            s.outcome.records_rewritten,
            s.gc.fetch_parallel_jobs,
            s.gc.write_batches,
            s.gc.pipeline_batches,
            s.gc.pipeline_overlaps,
            s.gc.pipeline_backpressure,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"speedup_vs_seq\": {\n");
    let seq = samples[0].mean_ns;
    for (i, s) in samples.iter().enumerate().skip(1) {
        out.push_str(&format!(
            "    \"{}\": {:.2}{}\n",
            s.config.label,
            seq / s.mean_ns,
            if i + 1 < samples.len() { "," } else { "" }
        ));
        println!(
            "gc_pipeline[{}]: {:.2}x vs seq ({:.1} ms vs {:.1} ms)",
            s.config.label,
            seq / s.mean_ns,
            s.mean_ns / 1e6,
            seq / 1e6
        );
    }
    out.push_str("  }\n}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("gc_pipeline: baseline written to {path}"),
        Err(e) => eprintln!("gc_pipeline: failed to write {path}: {e}"),
    }
}

fn main() {
    let n: usize = std::env::var("GC_PIPELINE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let iters: u32 = std::env::var("GC_PIPELINE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let samples: Vec<Sample> = CONFIGS.iter().map(|&cfg| measure(n, cfg, iters)).collect();

    // Every executor configuration must reclaim exactly the same state.
    let base = samples[0].outcome;
    for s in &samples[1..] {
        assert_eq!(
            base, s.outcome,
            "GC outcome diverged between 'seq' and '{}'",
            s.config.label
        );
    }
    println!(
        "gc_pipeline[{n} records]: {} jobs, {} rewritten, {} files collected (identical across configs)",
        base.jobs, base.records_rewritten, base.files_collected
    );
    for s in &samples {
        println!(
            "gc_pipeline[{}]: fetch_jobs={} write_batches={} pipe_batches={} overlaps={} backpressure={}",
            s.config.label,
            s.gc.fetch_parallel_jobs,
            s.gc.write_batches,
            s.gc.pipeline_batches,
            s.gc.pipeline_overlaps,
            s.gc.pipeline_backpressure
        );
    }
    if std::env::var("GC_PIPELINE_ASSERT_OVERLAP").as_deref() == Ok("1") {
        let piped = samples
            .iter()
            .find(|s| s.config.pipeline == GcPipeline::On)
            .expect("pipelined config present");
        assert!(
            piped.gc.pipeline_batches > 0,
            "pipelined config must push batches through the executor"
        );
        assert!(
            piped.gc.pipeline_overlaps > 0,
            "pipelined config must overlap stages on a multi-core runner \
             (batches={}, backpressure={})",
            piped.gc.pipeline_batches,
            piped.gc.pipeline_backpressure
        );
        let par = samples
            .iter()
            .find(|s| s.config.threads > 1)
            .expect("parallel config present");
        assert!(
            par.gc.fetch_parallel_jobs > 0,
            "parallel config must dispatch fetch workers"
        );
    }
    write_baseline(n, &samples);
    criterion::write_json_if_requested();
}
