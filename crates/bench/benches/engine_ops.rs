//! End-to-end engine operation benchmarks: puts, gets, and one GC job per
//! scheme, at miniature scale so `cargo bench` stays quick.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::EnvRef;

fn opts(mode: EngineMode) -> Options {
    let env: EnvRef = MemEnv::shared();
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 64 * 1024;
    o.base_level_bytes = 256 * 1024;
    o
}

fn bench_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_put_4k");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(4096 * 64));
    for mode in [EngineMode::Rocks, EngineMode::Terark, EngineMode::Scavenger] {
        g.bench_function(mode.label(), |b| {
            b.iter_batched(
                || Db::open(opts(mode)).unwrap(),
                |db| {
                    for i in 0..64u64 {
                        db.put(format!("k{i:05}"), vec![i as u8; 4096]).unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_get_4k");
    g.sample_size(20);
    for mode in [EngineMode::Rocks, EngineMode::Terark, EngineMode::Scavenger] {
        let db = Db::open(opts(mode)).unwrap();
        for i in 0..512u64 {
            db.put(format!("k{i:05}"), vec![i as u8; 4096]).unwrap();
        }
        db.flush().unwrap();
        g.bench_function(mode.label(), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i * 31 + 7) % 512;
                db.get(format!("k{i:05}")).unwrap().unwrap()
            })
        });
    }
    g.finish();
}

fn bench_gc_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("gc_one_job");
    g.sample_size(10);
    for mode in [EngineMode::Titan, EngineMode::Terark, EngineMode::Scavenger] {
        g.bench_function(mode.label(), |b| {
            b.iter_batched(
                || {
                    let mut o = opts(mode);
                    o.auto_gc = false;
                    let db = Db::open(o).unwrap();
                    // Load + churn so garbage exists and is exposed.
                    for round in 0..3u64 {
                        for i in 0..128u64 {
                            db.put(format!("k{i:04}"), vec![(round + i) as u8; 4096])
                                .unwrap();
                        }
                        db.flush().unwrap();
                    }
                    db.compact_all().unwrap();
                    db
                },
                |db| db.run_gc_at(0.05).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_put, bench_get, bench_gc_job);
criterion_main!(benches);
