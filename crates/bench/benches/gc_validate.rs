//! GC-Lookup microbenchmark: validate an N-record value file against the
//! index under each [`GcValidateMode`] (paper Fig. 10 — the phase that
//! dominates GC latency under point lookups).
//!
//! Run with `cargo bench --bench gc_validate`. Writes a machine-readable
//! baseline to `<workspace>/BENCH_gc_validate.json` (override the path
//! with `GC_VALIDATE_JSON`), so future PRs have a perf trajectory.

use criterion::{black_box, Bencher, Criterion, Throughput};
use scavenger::{Db, EngineMode, GcValidateMode, MemEnv, Options};
use std::io::Write as _;
use std::time::Instant;

/// Build a DB whose first value file holds exactly `n` records, a third
/// of them dead (overwritten into a second file), with a leveled index.
fn build_db(n: usize) -> (Db, u64) {
    let mut o = Options::new(MemEnv::shared(), "bench-db", EngineMode::Scavenger);
    o.auto_gc = false;
    o.wal = false;
    o.memtable_size = 512 << 20; // flush only when asked:
    o.vsst_target_size = 1 << 30; // one flush -> one value file
    o.ksst_target_size = 512 * 1024;
    o.base_level_bytes = 8 << 20;
    o.block_cache_bytes = 64 << 20;
    o.gc_threads = 4;
    let db = Db::open(o).unwrap();
    let value = vec![0xabu8; 600];
    for i in 0..n {
        db.put(format!("key{i:08}"), value.clone()).unwrap();
    }
    db.flush().unwrap();
    let file = db
        .value_store()
        .all_files()
        .iter()
        .max_by_key(|m| m.entries)
        .expect("value file exists")
        .file;
    // Kill a third of the records so validation sees a realistic mix.
    for i in (0..n).step_by(3) {
        db.put(format!("key{i:08}"), value.clone()).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    (db, file)
}

fn mode_label(mode: GcValidateMode) -> &'static str {
    match mode {
        GcValidateMode::Point => "point",
        GcValidateMode::Merge => "merge",
        GcValidateMode::Parallel => "parallel-4",
        GcValidateMode::Auto => "auto",
    }
}

/// One measured result.
struct Sample {
    batch: usize,
    mode: GcValidateMode,
    mean_ns: f64,
    valid: u64,
}

fn bench_one(b: &mut Bencher, db: &Db, file: u64, mode: GcValidateMode) {
    b.iter(|| {
        let report = db.gc_validate_file(file, Some(mode)).unwrap();
        black_box(report.valid)
    });
}

fn measure_direct(db: &Db, file: u64, mode: GcValidateMode, iters: u32) -> (f64, u64) {
    // Warmup.
    let report = db.gc_validate_file(file, Some(mode)).unwrap();
    let t = Instant::now();
    for _ in 0..iters {
        black_box(db.gc_validate_file(file, Some(mode)).unwrap());
    }
    (t.elapsed().as_nanos() as f64 / iters as f64, report.valid)
}

fn run(c: &mut Criterion) -> Vec<Sample> {
    let mut samples = Vec::new();
    let n_large: usize = std::env::var("GC_VALIDATE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    for n in [10_000usize, n_large] {
        let (db, file) = build_db(n);
        let mut g = c.benchmark_group(format!("gc_validate_{n}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(n as u64));
        for mode in [
            GcValidateMode::Point,
            GcValidateMode::Merge,
            GcValidateMode::Parallel,
        ] {
            g.bench_function(mode_label(mode), |b| bench_one(b, &db, file, mode));
            // Direct measurement for the recorded baseline (criterion's
            // adaptive iteration counts vary; this is a fixed-iter mean).
            let iters = if n >= 50_000 { 3 } else { 10 };
            let (mean_ns, valid) = measure_direct(&db, file, mode, iters);
            samples.push(Sample {
                batch: n,
                mode,
                mean_ns,
                valid,
            });
        }
        g.finish();
    }
    samples
}

fn mean_of(samples: &[Sample], batch: usize, mode: GcValidateMode) -> f64 {
    samples
        .iter()
        .find(|s| s.batch == batch && s.mode == mode)
        .map(|s| s.mean_ns)
        .unwrap_or(f64::NAN)
}

fn write_baseline(samples: &[Sample]) {
    let path = std::env::var("GC_VALIDATE_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_gc_validate.json")
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out =
        format!("{{\n  \"bench\": \"gc_validate\",\n  \"cores\": {cores},\n  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"batch\": {}, \"mode\": \"{}\", \"mean_ns\": {:.0}, \"ns_per_record\": {:.1}, \"valid_records\": {}}}{}\n",
            s.batch,
            mode_label(s.mode),
            s.mean_ns,
            s.mean_ns / s.batch as f64,
            s.valid,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"speedup_vs_point\": {\n");
    let batches: Vec<usize> = {
        let mut b: Vec<usize> = samples.iter().map(|s| s.batch).collect();
        b.dedup();
        b
    };
    for (bi, &batch) in batches.iter().enumerate() {
        let point = mean_of(samples, batch, GcValidateMode::Point);
        let merge = point / mean_of(samples, batch, GcValidateMode::Merge);
        let par = point / mean_of(samples, batch, GcValidateMode::Parallel);
        out.push_str(&format!(
            "    \"{batch}\": {{\"merge\": {merge:.2}, \"parallel-4\": {par:.2}}}{}\n",
            if bi + 1 < batches.len() { "," } else { "" }
        ));
        println!("gc_validate[{batch}]: merge {merge:.2}x, parallel-4 {par:.2}x vs point");
    }
    out.push_str("  }\n}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("gc_validate: baseline written to {path}"),
        Err(e) => eprintln!("gc_validate: failed to write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    let samples = run(&mut c);
    write_baseline(&samples);
    criterion::write_json_if_requested();
}
