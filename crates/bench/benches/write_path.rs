//! Write-path throughput bench: 1 vs 4 concurrent writers, sync vs
//! nosync, on a single `Db` and a 4-shard `DbShards`, over a real
//! filesystem so WAL fsync has its true cost.
//!
//! The headline number is group-commit leverage: 4 contending sync
//! writers going through the commit queue (one WAL record + one fsync
//! per *group*) against the serialized baseline (an external mutex
//! forcing one commit + one fsync per *write* — the pre-group-commit
//! write path). The bench also records the `group_commit_*` counters of
//! the contended run so the amortization is visible, not inferred.
//!
//! Writes `<workspace>/BENCH_write_path.json` (override with
//! `WRITE_PATH_JSON`). Env knobs: `WRITE_PATH_SYNC_OPS` (ops per sync
//! config, default 1200), `WRITE_PATH_NOSYNC_OPS` (ops per nosync
//! config, default 30000), `WRITE_PATH_DIR` (scratch dir, default a
//! fresh dir under the system temp dir).

use criterion::black_box;
use scavenger::{
    Db, DbShards, Engine, EngineMode, EnvRef, FsEnv, Options, ShardedOptions, WriteOptions,
};
use std::io::Write as _;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

fn opts(env: EnvRef, dir: &str) -> Options {
    let mut o = Options::new(env, dir, EngineMode::Scavenger);
    // Flush/compaction off the writer threads; no GC write-back noise.
    o.inline_background = false;
    o.auto_gc = false;
    o
}

/// Drive `total_ops` single-key puts split across `threads` writers and
/// return aggregate nanoseconds per op. `serialize` wraps every write
/// in an external mutex: one commit and (for sync) one fsync per write,
/// the serialized baseline group commit is measured against.
fn bench_writers<E: Engine + Clone + Send + Sync>(
    db: &E,
    threads: usize,
    sync: bool,
    serialize: bool,
    total_ops: usize,
    tag: &str,
) -> f64 {
    let per = total_ops / threads;
    let wo = WriteOptions::with_sync(sync);
    let gate = Arc::new(Mutex::new(()));
    let barrier = Barrier::new(threads);
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let db = db.clone();
            let gate = gate.clone();
            let barrier = &barrier;
            let wo = &wo;
            s.spawn(move || {
                barrier.wait();
                for i in 0..per {
                    let key = format!("{tag}-w{w}-k{i:07}");
                    let value = bytes::Bytes::from(vec![(i % 251) as u8; 100]);
                    if serialize {
                        let _g = gate.lock().unwrap();
                        black_box(db.put_with(wo, key.as_bytes(), value).unwrap());
                    } else {
                        black_box(db.put_with(wo, key.as_bytes(), value).unwrap());
                    }
                }
            });
        }
    });
    t.elapsed().as_nanos() as f64 / (per * threads) as f64
}

fn ops_per_sec(ns_per_op: f64) -> f64 {
    1e9 / ns_per_op
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sync_ops = env_usize("WRITE_PATH_SYNC_OPS", 1200);
    let nosync_ops = env_usize("WRITE_PATH_NOSYNC_OPS", 30_000);
    let scratch = std::env::var("WRITE_PATH_DIR").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("scavenger-write-path-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let env: EnvRef = Arc::new(FsEnv::new(&scratch).expect("open FsEnv"));

    // ---- single Db ----
    let db = Db::open(opts(env.clone(), "wp-db")).unwrap();
    let db_sync_w1 = bench_writers(&db, 1, true, false, sync_ops, "s1");
    let before = db.stats();
    let db_sync_w4 = bench_writers(&db, 4, true, false, sync_ops, "s4");
    let stats = db.stats();
    // Deltas, so the counters describe the contended run alone.
    let (gc_groups, gc_batches, gc_saved, gc_max) = (
        stats.group_commit_groups - before.group_commit_groups,
        stats.group_commit_batches - before.group_commit_batches,
        stats.group_commit_fsyncs_saved - before.group_commit_fsyncs_saved,
        stats.group_commit_max_group,
    );
    let db_sync_w4_ser = bench_writers(&db, 4, true, true, sync_ops, "ss");
    let db_nosync_w1 = bench_writers(&db, 1, false, false, nosync_ops, "n1");
    let db_nosync_w4 = bench_writers(&db, 4, false, false, nosync_ops, "n4");
    drop(db);

    // ---- 4-shard DbShards ----
    let mut so = ShardedOptions::new(env.clone(), "wp-shards", EngineMode::Scavenger);
    so.base = opts(env, "wp-shards");
    so.num_shards = 4;
    let shards = DbShards::open(so).unwrap();
    let sh_sync_w1 = bench_writers(&shards, 1, true, false, sync_ops, "hs1");
    let sh_sync_w4 = bench_writers(&shards, 4, true, false, sync_ops, "hs4");
    let sh_nosync_w1 = bench_writers(&shards, 1, false, false, nosync_ops, "hn1");
    let sh_nosync_w4 = bench_writers(&shards, 4, false, false, nosync_ops, "hn4");
    drop(shards);
    let _ = std::fs::remove_dir_all(&scratch);

    let vs_serialized = db_sync_w4_ser / db_sync_w4;
    let vs_single = db_sync_w1 / db_sync_w4;
    println!(
        "write_path[db sync]: 1w {:.0} ops/s, 4w {:.0} ops/s ({vs_single:.2}x), \
         4w serialized {:.0} ops/s (group-commit {vs_serialized:.2}x)",
        ops_per_sec(db_sync_w1),
        ops_per_sec(db_sync_w4),
        ops_per_sec(db_sync_w4_ser),
    );
    println!(
        "write_path[db nosync]: 1w {:.0} ops/s, 4w {:.0} ops/s",
        ops_per_sec(db_nosync_w1),
        ops_per_sec(db_nosync_w4),
    );
    println!(
        "write_path[shards4 sync]: 1w {:.0} ops/s, 4w {:.0} ops/s",
        ops_per_sec(sh_sync_w1),
        ops_per_sec(sh_sync_w4),
    );
    println!(
        "write_path[shards4 nosync]: 1w {:.0} ops/s, 4w {:.0} ops/s",
        ops_per_sec(sh_nosync_w1),
        ops_per_sec(sh_nosync_w4),
    );
    println!(
        "write_path[group commit @ 4w sync]: {gc_groups} groups for {gc_batches} batches, \
         max group {gc_max}, {gc_saved} fsyncs saved"
    );

    let path = std::env::var("WRITE_PATH_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_write_path.json")
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"bench\": \"write_path\",\n  \"cores\": {cores},\n  \
         \"sync_ops\": {sync_ops},\n  \"nosync_ops\": {nosync_ops},\n  \"ops_per_sec\": {{\n    \
         \"db_sync_w1\": {:.0},\n    \"db_sync_w4\": {:.0},\n    \
         \"db_sync_w4_serialized\": {:.0},\n    \
         \"db_nosync_w1\": {:.0},\n    \"db_nosync_w4\": {:.0},\n    \
         \"shards4_sync_w1\": {:.0},\n    \"shards4_sync_w4\": {:.0},\n    \
         \"shards4_nosync_w1\": {:.0},\n    \"shards4_nosync_w4\": {:.0}\n  }},\n  \
         \"group_speedup\": {{\n    \"db_sync_w4_vs_serialized\": {vs_serialized:.2},\n    \
         \"db_sync_w4_vs_w1\": {vs_single:.2}\n  }},\n  \
         \"group_commit\": {{\n    \"groups\": {gc_groups},\n    \"batches\": {gc_batches},\n    \
         \"max_group\": {gc_max},\n    \"fsyncs_saved\": {gc_saved}\n  }}\n}}\n",
        ops_per_sec(db_sync_w1),
        ops_per_sec(db_sync_w4),
        ops_per_sec(db_sync_w4_ser),
        ops_per_sec(db_nosync_w1),
        ops_per_sec(db_nosync_w4),
        ops_per_sec(sh_sync_w1),
        ops_per_sec(sh_sync_w4),
        ops_per_sec(sh_nosync_w1),
        ops_per_sec(sh_nosync_w4),
    );
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("write_path: baseline written to {path}"),
        Err(e) => eprintln!("write_path: failed to write {path}: {e}"),
    }
}
