//! Transaction-commit cost bench: optimistic `Transaction::commit`
//! against the raw `write_with` batch path it rides on, at 1 and 4
//! threads and at 0% vs ~10% conflict rates, on a single `Db` and a
//! 4-shard `DbShards` over a real filesystem.
//!
//! The headline numbers are the within-run overhead ratios
//! (`txn_vs_raw_*`): what read-set validation (plus, on the sharded
//! handle, the 2PC coordinator) costs relative to an equivalent raw
//! two-key batch. Ratios of back-to-back measurements on the same
//! machine largely cancel host effects, which is what CI's regression
//! guard compares. Conflicted commits retry, so the contended configs
//! also report how many conflicts the 10% hot-set mix actually forced.
//!
//! Writes `<workspace>/BENCH_txn.json` (override with `TXN_JSON`).
//! Env knobs: `TXN_OPS` (committed txns per config, default 3000),
//! `TXN_DIR` (scratch dir, default under the system temp dir).

use criterion::black_box;
use scavenger::{
    Db, DbShards, Engine, EngineMode, EnvRef, FsEnv, Options, ShardedOptions, Transactional,
    WriteBatch, WriteOptions,
};
use std::io::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

const HOT_KEYS: u32 = 4;
const COLD_KEYS: u32 = 64;

fn opts(env: EnvRef, dir: &str) -> Options {
    let mut o = Options::new(env, dir, EngineMode::Scavenger);
    o.inline_background = false;
    o.auto_gc = false;
    o
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hot_key(j: u32) -> Vec<u8> {
    format!("hot{j:02}").into_bytes()
}

fn cold_key(thread: usize, j: u32) -> Vec<u8> {
    format!("c{thread:02}-{j:04}").into_bytes()
}

fn seed_keys<E: Engine>(db: &E, threads: usize) {
    for j in 0..HOT_KEYS {
        db.put(&hot_key(j), 0u64.to_le_bytes().to_vec().into())
            .unwrap();
    }
    for t in 0..threads {
        for j in 0..COLD_KEYS {
            db.put(&cold_key(t, j), 0u64.to_le_bytes().to_vec().into())
                .unwrap();
        }
    }
}

/// The two keys transaction number `i` of `thread` touches:
/// from the shared hot set with probability `conflict_pct`%, else from
/// the thread's private range (0% cross-thread conflict).
fn pick_keys(rng: &mut u64, thread: usize, conflict_pct: u64) -> (Vec<u8>, Vec<u8>) {
    if splitmix64(rng) % 100 < conflict_pct {
        let a = (splitmix64(rng) % u64::from(HOT_KEYS)) as u32;
        let b = (a + 1 + (splitmix64(rng) % u64::from(HOT_KEYS - 1)) as u32) % HOT_KEYS;
        (hot_key(a), hot_key(b))
    } else {
        let a = (splitmix64(rng) % u64::from(COLD_KEYS)) as u32;
        let b = (a + 1 + (splitmix64(rng) % u64::from(COLD_KEYS - 1)) as u32) % COLD_KEYS;
        (cold_key(thread, a), cold_key(thread, b))
    }
}

/// Commit `per_thread` transactions per thread (read two counters,
/// write both back bumped), retrying conflicts. Returns (ns per
/// committed txn, total conflicts).
fn bench_txn<E: Engine + Transactional + Send + Sync>(
    db: &E,
    threads: usize,
    conflict_pct: u64,
    per_thread: usize,
) -> (f64, u64) {
    let wo = WriteOptions::with_sync(false);
    let barrier = Barrier::new(threads);
    let t = Instant::now();
    let conflicts: u64 = std::thread::scope(|s| {
        let workers: Vec<_> =
            (0..threads)
                .map(|w| {
                    let db = db.clone();
                    let barrier = &barrier;
                    let wo = &wo;
                    s.spawn(move || {
                        let mut rng = 0xbe7c ^ (w as u64) << 40 ^ conflict_pct << 8;
                        let mut conflicts = 0u64;
                        barrier.wait();
                        for _ in 0..per_thread {
                            let (ka, kb) = pick_keys(&mut rng, w, conflict_pct);
                            loop {
                                let mut txn = db.begin();
                                let va = txn.get(&ka).unwrap().map_or(0, |v| {
                                    u64::from_le_bytes(v.as_ref().try_into().unwrap())
                                });
                                let vb = txn.get(&kb).unwrap().map_or(0, |v| {
                                    u64::from_le_bytes(v.as_ref().try_into().unwrap())
                                });
                                txn.put(&ka, (va + 1).to_le_bytes().to_vec());
                                txn.put(&kb, (vb + 1).to_le_bytes().to_vec());
                                match txn.commit_with(wo) {
                                    Ok(r) => {
                                        black_box(r);
                                        break;
                                    }
                                    Err(e) if e.is_txn_conflict() => conflicts += 1,
                                    Err(e) => panic!("commit failed: {e}"),
                                }
                            }
                        }
                        conflicts
                    })
                })
                .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let ns = t.elapsed().as_nanos() as f64 / (per_thread * threads) as f64;
    (ns, conflicts)
}

/// The raw baseline: the same two-key read-modify-write, but through
/// `get` + `write_with` with no read-set validation — what a caller
/// would hand-roll without transactions (and without their atomic
/// conflict safety).
fn bench_raw<E: Engine + Clone + Send + Sync>(db: &E, threads: usize, per_thread: usize) -> f64 {
    let wo = WriteOptions::with_sync(false);
    let barrier = Barrier::new(threads);
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let db = db.clone();
            let barrier = &barrier;
            let wo = &wo;
            s.spawn(move || {
                let mut rng = 0x4a11 ^ (w as u64) << 40;
                barrier.wait();
                for _ in 0..per_thread {
                    let (ka, kb) = pick_keys(&mut rng, w, 0);
                    let va = db
                        .get(&ka)
                        .unwrap()
                        .map_or(0, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                    let vb = db
                        .get(&kb)
                        .unwrap()
                        .map_or(0, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                    let mut batch = WriteBatch::new();
                    batch.put(&ka, scavenger::Bytes::from((va + 1).to_le_bytes().to_vec()));
                    batch.put(&kb, scavenger::Bytes::from((vb + 1).to_le_bytes().to_vec()));
                    black_box(db.write_with(wo, batch).unwrap());
                }
            });
        }
    });
    t.elapsed().as_nanos() as f64 / (per_thread * threads) as f64
}

fn per_sec(ns: f64) -> f64 {
    1e9 / ns
}

fn main() {
    let ops: usize = std::env::var("TXN_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000);
    let scratch = std::env::var("TXN_DIR").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("scavenger-txn-bench-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let env: EnvRef = Arc::new(FsEnv::new(&scratch).expect("open FsEnv"));

    // ---- single Db ----
    let db = Db::open(opts(env.clone(), "txn-db")).unwrap();
    seed_keys(&db, 4);
    let db_raw_w1 = bench_raw(&db, 1, ops);
    let (db_txn_w1, _) = bench_txn(&db, 1, 0, ops);
    let (db_txn_w4_c0, db_c0_conflicts) = bench_txn(&db, 4, 0, ops / 4);
    let (db_txn_w4_c10, db_c10_conflicts) = bench_txn(&db, 4, 10, ops / 4);
    let db_stats = db.stats();
    drop(db);

    // ---- 4-shard DbShards ----
    let mut so = ShardedOptions::new(env.clone(), "txn-shards", EngineMode::Scavenger);
    so.base = opts(env, "txn-shards");
    so.num_shards = 4;
    let shards = DbShards::open(so).unwrap();
    seed_keys(&shards, 4);
    let sh_raw_w1 = bench_raw(&shards, 1, ops);
    let (sh_txn_w1, _) = bench_txn(&shards, 1, 0, ops);
    let (sh_txn_w4_c0, _) = bench_txn(&shards, 4, 0, ops / 4);
    let (sh_txn_w4_c10, sh_c10_conflicts) = bench_txn(&shards, 4, 10, ops / 4);
    let sh_stats = shards.stats();
    drop(shards);
    let _ = std::fs::remove_dir_all(&scratch);

    // Within-run overhead ratios (throughput, txn relative to raw).
    let db_overhead = db_txn_w1 / db_raw_w1;
    let sh_overhead = sh_txn_w1 / sh_raw_w1;
    println!(
        "txn[db]: raw 1t {:.0}/s; txn 1t {:.0}/s ({db_overhead:.2}x raw cost), \
         4t c0 {:.0}/s, 4t c10 {:.0}/s ({db_c10_conflicts} conflicts)",
        per_sec(db_raw_w1),
        per_sec(db_txn_w1),
        per_sec(db_txn_w4_c0),
        per_sec(db_txn_w4_c10),
    );
    println!(
        "txn[shards4]: raw 1t {:.0}/s; txn 1t {:.0}/s ({sh_overhead:.2}x raw cost), \
         4t c0 {:.0}/s, 4t c10 {:.0}/s ({sh_c10_conflicts} conflicts); \
         {} 2PC commits, {} txn conflicts counted",
        per_sec(sh_raw_w1),
        per_sec(sh_txn_w1),
        per_sec(sh_txn_w4_c0),
        per_sec(sh_txn_w4_c10),
        sh_stats.txn_2pc_commits,
        sh_stats.txn_conflicts,
    );
    assert_eq!(
        db_c0_conflicts, 0,
        "disjoint per-thread key ranges must never conflict"
    );

    let path = std::env::var("TXN_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_txn.json")
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"bench\": \"txn\",\n  \"cores\": {cores},\n  \"ops\": {ops},\n  \
         \"txns_per_sec\": {{\n    \
         \"db_raw_w1\": {:.0},\n    \"db_txn_w1\": {:.0},\n    \
         \"db_txn_w4_c0\": {:.0},\n    \"db_txn_w4_c10\": {:.0},\n    \
         \"shards4_raw_w1\": {:.0},\n    \"shards4_txn_w1\": {:.0},\n    \
         \"shards4_txn_w4_c0\": {:.0},\n    \"shards4_txn_w4_c10\": {:.0}\n  }},\n  \
         \"txn_cost_vs_raw\": {{\n    \"db_w1\": {db_overhead:.2},\n    \
         \"shards4_w1\": {sh_overhead:.2}\n  }},\n  \
         \"conflicts\": {{\n    \"db_w4_c10\": {db_c10_conflicts},\n    \
         \"shards4_w4_c10\": {sh_c10_conflicts}\n  }},\n  \
         \"counters\": {{\n    \"db_txn_commits\": {},\n    \
         \"shards4_txn_commits\": {},\n    \"shards4_txn_2pc_commits\": {}\n  }}\n}}\n",
        per_sec(db_raw_w1),
        per_sec(db_txn_w1),
        per_sec(db_txn_w4_c0),
        per_sec(db_txn_w4_c10),
        per_sec(sh_raw_w1),
        per_sec(sh_txn_w1),
        per_sec(sh_txn_w4_c0),
        per_sec(sh_txn_w4_c10),
        db_stats.txn_commits,
        sh_stats.txn_commits,
        sh_stats.txn_2pc_commits,
    );
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("txn: baseline written to {path}"),
        Err(e) => eprintln!("txn: failed to write {path}: {e}"),
    }
}
