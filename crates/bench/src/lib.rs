//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/figNN_*.rs` binary runs the corresponding experiment at a
//! laptop-scale configuration (see DESIGN.md §6 for the paper→scaled
//! mapping) and prints the same rows/series the paper reports. Pass
//! `--scale F` to grow the dataset by `F×` and `--seed N` for a different
//! deterministic seed.
//!
//! Throughput is reported two ways:
//! * `sim MB/s` — user bytes over *simulated device seconds* from the
//!   calibrated NVMe [`DeviceModel`] applied to exact I/O counters (the
//!   primary, hardware-independent metric);
//! * `wall MB/s` — wall-clock, for reference.

use scavenger::{Db, DeviceModel, EngineMode, Features, IoStatsSnapshot, KvRead, KvWrite, Options};
use scavenger_env::{EnvRef, MemEnv};
use scavenger_util::Result;
use scavenger_workload::dist::KeyDist;
use scavenger_workload::runner::{PhaseReport, Runner};
use scavenger_workload::values::ValueGen;
use scavenger_workload::ycsb::YcsbWorkload;
use scavenger_workload::KvStore;

/// Adapter: drive *any* unified-surface engine (`KvRead + KvWrite` — a
/// [`Db`], a [`scavenger::DbShards`], or a future backend) through the
/// workload crate's [`KvStore`]. Written once against the trait surface
/// instead of per handle type.
pub struct EngineKvStore<'a, E>(pub &'a E);

impl<E: KvRead + KvWrite> KvStore for EngineKvStore<'_, E> {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.0
            .put(key, scavenger::Bytes::copy_from_slice(value))
            .map(|_| ())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.0.get(key)?.map(|b| b.to_vec()))
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        KvWrite::delete(self.0, key).map(|_| ())
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.0
            .scan(start, None)?
            .take(limit)
            .map(|e| e.map(|e| (e.key, e.value.to_vec())))
            .collect()
    }
}

/// The historical name for the single-engine adapter (used throughout
/// the `fig*` binaries); now just the [`EngineKvStore`] instantiation
/// for [`Db`].
pub type DbKvStore<'a> = EngineKvStore<'a, Db>;

/// An engine under test: a paper baseline or a custom feature set
/// (ablations).
#[derive(Clone)]
pub struct EngineSpec {
    /// Row label in the output tables.
    pub label: String,
    /// Base mode (used for defaults).
    pub mode: EngineMode,
    /// Feature overrides.
    pub features: Features,
}

impl EngineSpec {
    /// A paper baseline.
    pub fn mode(mode: EngineMode) -> Self {
        EngineSpec {
            label: mode.label().to_string(),
            mode,
            features: Features::for_mode(mode),
        }
    }

    /// A custom feature set with a label (ablations, S-RH, …).
    pub fn custom(label: &str, mode: EngineMode, features: Features) -> Self {
        EngineSpec {
            label: label.to_string(),
            mode,
            features,
        }
    }

    /// All five paper baselines.
    pub fn all_modes() -> Vec<EngineSpec> {
        EngineMode::ALL
            .iter()
            .map(|m| EngineSpec::mode(*m))
            .collect()
    }
}

/// Scaled experiment dimensions. `default()` targets tens-of-seconds runs;
/// `--scale` multiplies the dataset.
#[derive(Clone, Copy)]
pub struct Scale {
    /// Target unique-dataset bytes (paper: 100 GB).
    pub dataset_bytes: u64,
    /// Update volume as a multiple of the dataset (paper: 3×).
    pub update_factor: f64,
    /// Point reads in read phases.
    pub read_ops: u64,
    /// Range scans in scan phases.
    pub scan_ops: u64,
    /// Max scan length (paper: uniform 1–1000; scaled down).
    pub scan_max_len: usize,
    /// YCSB operations per workload.
    pub ycsb_ops: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            dataset_bytes: 6 * 1024 * 1024,
            update_factor: 3.0,
            read_ops: 3_000,
            scan_ops: 150,
            scan_max_len: 100,
            ycsb_ops: 4_000,
            seed: 42,
        }
    }
}

impl Scale {
    /// Parse `--scale F` and `--seed N` from argv.
    pub fn from_args() -> Scale {
        let mut s = Scale::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(f) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                        s.dataset_bytes = (s.dataset_bytes as f64 * f) as u64;
                        s.read_ops = (s.read_ops as f64 * f) as u64;
                        s.scan_ops = (s.scan_ops as f64 * f) as u64;
                        s.ycsb_ops = (s.ycsb_ops as f64 * f) as u64;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
                        s.seed = n;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        s
    }

    /// Number of keys for a value generator averaging `mean` bytes.
    pub fn num_keys(&self, value_gen: &ValueGen) -> u64 {
        let per_key = value_gen.mean_size() + 24.0;
        ((self.dataset_bytes as f64 / per_key) as u64).max(64)
    }
}

/// Build engine options scaled per DESIGN.md §6.
pub fn build_options(
    spec: &EngineSpec,
    env: EnvRef,
    dir: &str,
    scale: &Scale,
    space_limit: Option<u64>,
) -> Options {
    let mut o = Options::new(env, dir, spec.mode);
    o.features = spec.features;
    o.memtable_size = 256 * 1024;
    o.ksst_target_size = 256 * 1024;
    o.vsst_target_size = 1024 * 1024;
    // Base level sized so the (compensated) tree builds 2–3 levels at the
    // default dataset — preserving the paper's multi-level structure.
    o.base_level_bytes = (scale.dataset_bytes / 32).max(64 * 1024);
    o.block_cache_bytes = (scale.dataset_bytes / 100).max(256 * 1024) as usize;
    o.space_limit = space_limit;
    o
}

/// Everything measured in one engine run.
pub struct RunOut {
    /// Engine label.
    pub label: String,
    /// Load (insert) phase.
    pub insert: PhaseReport,
    /// I/O during load.
    pub io_insert: IoStatsSnapshot,
    /// Update phase.
    pub update: PhaseReport,
    /// I/O during updates.
    pub io_update: IoStatsSnapshot,
    /// GC-step deltas during updates.
    pub gc_update: scavenger::GcStepTimes,
    /// Read phase (if run).
    pub read: Option<PhaseReport>,
    /// I/O during reads.
    pub io_read: IoStatsSnapshot,
    /// Scan phase (if run).
    pub scan: Option<PhaseReport>,
    /// I/O during scans.
    pub io_scan: IoStatsSnapshot,
    /// Final total space.
    pub space_total: u64,
    /// Final key-SST bytes.
    pub ksst_bytes: u64,
    /// Final value bytes on disk.
    pub value_bytes: u64,
    /// Exact logical dataset size.
    pub logical_bytes: u64,
    /// Index LSM space amplification (paper Eq. 1).
    pub index_sa: f64,
    /// Exposed garbage / valid-value-bytes ratio (paper Fig. 5b).
    pub exposed_valid: f64,
    /// Block cache hit ratio.
    pub cache_hit_ratio: f64,
    /// Throttle activations.
    pub throttle_stalls: u64,
}

impl RunOut {
    /// Overall space amplification.
    pub fn space_amp(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.space_total as f64 / self.logical_bytes as f64
        }
    }

    /// Simulated MB/s of a phase's user bytes over its device time.
    pub fn sim_mbps(user_bytes: u64, io: &IoStatsSnapshot) -> f64 {
        let secs = DeviceModel::nvme().simulated_seconds(io);
        if secs <= 0.0 {
            0.0
        } else {
            user_bytes as f64 / 1e6 / secs
        }
    }

    /// Simulated update throughput, MB/s.
    pub fn update_mbps(&self) -> f64 {
        Self::sim_mbps(self.update.user_write_bytes, &self.io_update)
    }

    /// Simulated insert throughput, MB/s.
    pub fn insert_mbps(&self) -> f64 {
        Self::sim_mbps(self.insert.user_write_bytes, &self.io_insert)
    }

    /// Simulated read throughput, K ops/s.
    pub fn read_kops(&self) -> f64 {
        match &self.read {
            Some(r) => {
                let secs = DeviceModel::nvme().simulated_seconds(&self.io_read);
                if secs <= 0.0 {
                    0.0
                } else {
                    r.ops as f64 / 1e3 / secs
                }
            }
            None => 0.0,
        }
    }

    /// Simulated scan throughput, MB/s of rows returned.
    pub fn scan_mbps(&self) -> f64 {
        match &self.scan {
            Some(r) => Self::sim_mbps(r.user_read_bytes, &self.io_scan),
            None => 0.0,
        }
    }
}

/// Phases to run in [`run_experiment`].
#[derive(Clone, Copy)]
pub struct Phases {
    /// Run the update phase.
    pub update: bool,
    /// Run the read phase.
    pub read: bool,
    /// Run the scan phase.
    pub scan: bool,
}

impl Phases {
    /// Load + update only (most figures).
    pub fn load_update() -> Self {
        Phases {
            update: true,
            read: false,
            scan: false,
        }
    }

    /// The full microbenchmark suite (Fig. 12).
    pub fn all() -> Self {
        Phases {
            update: true,
            read: true,
            scan: true,
        }
    }
}

/// The standard experiment: load the dataset, apply updates (the paper's
/// GC-stressing phase), optionally read and scan; measure everything.
pub fn run_experiment(
    spec: &EngineSpec,
    value_gen: ValueGen,
    key_theta: f64,
    scale: &Scale,
    space_limit_factor: Option<f64>,
    phases: Phases,
) -> Result<RunOut> {
    let env: EnvRef = MemEnv::shared();
    let n = scale.num_keys(&value_gen);
    let space_limit = space_limit_factor.map(|f| (scale.dataset_bytes as f64 * f) as u64);
    let opts = build_options(spec, env.clone(), "bench-db", scale, space_limit);
    let db = Db::open(opts)?;
    let store = EngineKvStore(&db);
    // Extra capacity for YCSB-D style growth is not needed here.
    let mut runner = Runner::new(n, value_gen, scale.seed);

    let io0 = env.io_stats().snapshot();
    let insert = runner.load(&store, n)?;
    db.flush()?;
    let io1 = env.io_stats().snapshot();

    let dist = KeyDist::zipfian(n, key_theta);
    let gc0 = db.stats().gc;
    let update = if phases.update {
        let bytes = (scale.dataset_bytes as f64 * scale.update_factor) as u64;
        let rep = runner.update_bytes(&store, &dist, bytes)?;
        db.flush()?;
        rep
    } else {
        PhaseReport::default()
    };
    let io2 = env.io_stats().snapshot();
    let gc1 = db.stats().gc;

    let read = if phases.read {
        Some(runner.read(&store, &dist, scale.read_ops)?)
    } else {
        None
    };
    let io3 = env.io_stats().snapshot();

    let scan = if phases.scan {
        Some(runner.scan(&store, &dist, scale.scan_ops, scale.scan_max_len)?)
    } else {
        None
    };
    let io4 = env.io_stats().snapshot();

    let stats = db.stats();
    let logical = runner.logical_bytes();
    let valid_value_bytes = logical.saturating_sub(runner.num_keys() * 24).max(1);
    Ok(RunOut {
        label: spec.label.clone(),
        insert,
        io_insert: io1.delta(&io0),
        update,
        io_update: io2.delta(&io1),
        gc_update: gc1.delta(&gc0),
        read,
        io_read: io3.delta(&io2),
        scan,
        io_scan: io4.delta(&io3),
        space_total: stats.space.total(),
        ksst_bytes: stats.space.ksst_bytes,
        value_bytes: stats.space.value_bytes,
        logical_bytes: logical,
        index_sa: stats.index_space_amp,
        exposed_valid: stats.exposed_garbage_bytes as f64 / valid_value_bytes as f64,
        cache_hit_ratio: stats.cache_hit_ratio,
        throttle_stalls: stats.throttle_stalls,
    })
}

/// Run YCSB workload `w` after the standard load+update warmup; returns
/// `(ops/s simulated, report, final RunOut-ish space numbers)`.
pub fn run_ycsb(
    spec: &EngineSpec,
    value_gen: ValueGen,
    w: YcsbWorkload,
    scale: &Scale,
    space_limit_factor: Option<f64>,
) -> Result<(f64, PhaseReport, f64)> {
    let env: EnvRef = MemEnv::shared();
    let n = scale.num_keys(&value_gen);
    let space_limit = space_limit_factor.map(|f| (scale.dataset_bytes as f64 * f) as u64);
    let opts = build_options(spec, env.clone(), "bench-db", scale, space_limit);
    let db = Db::open(opts)?;
    let store = EngineKvStore(&db);
    // Allow keyspace growth for insert-bearing workloads (D/E).
    let mut runner = Runner::new(n * 2, value_gen, scale.seed);
    runner.load(&store, n)?;
    let dist = KeyDist::zipfian(n, 0.9);
    runner.update_bytes(&store, &dist, scale.dataset_bytes)?;
    db.flush()?;

    let io0 = env.io_stats().snapshot();
    let rep = runner.ycsb(&store, w, 0.99, scale.ycsb_ops, scale.scan_max_len)?;
    let io1 = env.io_stats().snapshot();
    let d = io1.delta(&io0);
    let secs = DeviceModel::nvme().simulated_seconds(&d);
    let ops_per_sec = if secs <= 0.0 {
        0.0
    } else {
        rep.ops as f64 / secs
    };
    let logical = runner.logical_bytes().max(1);
    let space_amp = db.stats().space.total() as f64 / logical as f64;
    Ok((ops_per_sec, rep, space_amp))
}

// ---------------- output formatting ----------------

/// Print an aligned table: `headers` then `rows`.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let head: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    println!("  {}", head.join("  "));
    println!(
        "  {}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", cells.join("  "));
    }
}

/// Format a fraction as `x.xx`.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format MB.
pub fn mb(x: u64) -> String {
    format!("{:.2}", x as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_adapter_roundtrip() {
        let env: EnvRef = MemEnv::shared();
        let opts = Options::new(env, "db", EngineMode::Scavenger);
        let db = Db::open(opts).unwrap();
        let store = EngineKvStore(&db);
        store.put(b"k", &vec![7u8; 2048]).unwrap();
        assert_eq!(store.get(b"k").unwrap().unwrap(), vec![7u8; 2048]);
        let rows = store.scan(b"", 10).unwrap();
        assert_eq!(rows.len(), 1);
        store.delete(b"k").unwrap();
        assert!(store.get(b"k").unwrap().is_none());
    }

    #[test]
    fn tiny_experiment_runs_all_modes() {
        let scale = Scale {
            dataset_bytes: 256 * 1024,
            update_factor: 1.0,
            read_ops: 50,
            scan_ops: 5,
            scan_max_len: 10,
            ycsb_ops: 50,
            seed: 1,
        };
        for spec in EngineSpec::all_modes() {
            let out = run_experiment(
                &spec,
                ValueGen::fixed(2048),
                0.9,
                &scale,
                None,
                Phases::all(),
            )
            .unwrap();
            assert!(
                out.space_amp() >= 0.9,
                "{}: SA {}",
                out.label,
                out.space_amp()
            );
            assert!(out.update.ops > 0);
            assert!(out.read.unwrap().ops == 50);
        }
    }

    #[test]
    fn tiny_ycsb_runs() {
        let scale = Scale {
            dataset_bytes: 128 * 1024,
            update_factor: 1.0,
            read_ops: 10,
            scan_ops: 2,
            scan_max_len: 5,
            ycsb_ops: 100,
            seed: 2,
        };
        let spec = EngineSpec::mode(EngineMode::Scavenger);
        let (ops, rep, sa) =
            run_ycsb(&spec, ValueGen::fixed(1024), YcsbWorkload::A, &scale, None).unwrap();
        assert!(ops > 0.0);
        assert_eq!(rep.ops, 100);
        assert!(sa > 0.5);
    }
}

#[cfg(test)]
mod titan_repro {
    use super::*;
    use scavenger_workload::dist::KeyDist;
    use scavenger_workload::runner::Runner;
    use scavenger_workload::values::ValueGen;

    #[test]
    fn titan_update_verified() {
        let scale = Scale {
            dataset_bytes: 1024 * 1024,
            update_factor: 3.0,
            read_ops: 500,
            scan_ops: 0,
            scan_max_len: 1,
            ycsb_ops: 0,
            seed: 9,
        };
        let env: EnvRef = MemEnv::shared();
        let spec = EngineSpec::mode(EngineMode::Titan);
        let value_gen = ValueGen::fixed(4096);
        let n = scale.num_keys(&value_gen);
        let opts = build_options(&spec, env.clone(), "db", &scale, None);
        let db = Db::open(opts).unwrap();
        let store = EngineKvStore(&db);
        let mut runner = Runner::new(n, value_gen, scale.seed).with_verification();
        runner.load(&store, n).unwrap();
        db.flush().unwrap();
        let dist = KeyDist::zipfian(n, 0.9);
        runner.update_bytes(&store, &dist, 3 * 1024 * 1024).unwrap();
        db.flush().unwrap();
        // verify everything
        let dist = KeyDist::uniform(n);
        runner.read(&store, &dist, n * 2).unwrap();
        let logical = runner.logical_bytes();
        let total = db.stats().space.total();
        assert!(
            total as f64 >= logical as f64 * 0.98,
            "SA<1: total {total} logical {logical}"
        );
    }
}
