//! CDC follower benchmark: one writer, four tailing subscribers.
//!
//! Runs the [`scavenger_workload::follower`] three-phase workload
//! (preload → parallel catch-up → live tail) against both engine
//! handles — a single `Db` and a 4-shard `DbShards`, Scavenger mode —
//! and writes `BENCH_cdc.json` at the workspace root:
//!
//! * `preload_kops` — uncontended writer throughput (the baseline the
//!   ratios below are taken against, so host speed cancels);
//! * `catchup_kevents_s` — the *slowest* follower's backlog replay
//!   rate (what bounds bringing a cold replica online);
//! * `tail_lag_p50` / `tail_lag_p99` — worst follower's stream lag in
//!   sequence numbers while tailing a live writer;
//! * `catchup_vs_write` — catch-up floor ÷ preload rate; the CI
//!   regression guard pins this within-run ratio.
//!
//! Env knobs: `CDC_OPS` (per phase, default 30000), `CDC_SUBS`
//! (default 4), `CDC_JSON` (output path).

use scavenger::{
    ChangeStream, ChangeSubscriber, Db, DbShards, Engine, EngineMode, MemEnv, Options,
    ShardedOptions, SubscribeFrom, WriteOptions,
};
use scavenger_util::Result;
use scavenger_workload::follower::{
    follower_key, follower_value, run_follower, ChangeTail, FollowerConfig, FollowerReport,
};
use std::process::ExitCode;

/// Adapter: an engine change stream as a workload [`ChangeTail`].
struct EngineTail<S: ChangeStream>(S);

impl<S: ChangeStream> ChangeTail for EngineTail<S> {
    fn poll_tail(&mut self, max: usize) -> Result<(u64, u64)> {
        let events = self.0.poll_changes(max)?;
        Ok((events.len() as u64, self.0.lag()))
    }
}

struct Row {
    handle: &'static str,
    report: FollowerReport,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn bench_handle<H>(handle: &'static str, db: H, cfg: &FollowerConfig) -> Result<Row>
where
    H: Engine + ChangeSubscriber + Sync,
{
    let opts = WriteOptions::default();
    let writer = &db;
    let report = run_follower(
        cfg,
        move |op| {
            writer
                .put_with(&opts, &follower_key(op), follower_value(op, 256).into())
                .map(|_| ())
        },
        || Ok(EngineTail(db.subscribe_changes(SubscribeFrom::Oldest)?)),
    )?;
    Ok(Row { handle, report })
}

fn write_json(path: &str, rows: &[Row], cores: usize) -> std::io::Result<()> {
    let mut out =
        format!("{{\n  \"bench\": \"cdc_follower\",\n  \"cores\": {cores},\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let rep = &r.report;
        out.push_str(&format!(
            "    {{\"handle\": \"{}\", \"subs\": {}, \"write_ops\": {}, \"preload_kops\": {:.1}, \"catchup_kevents_s\": {:.1}, \"tail_lag_p50\": {:.0}, \"tail_lag_p99\": {:.0}}}{}\n",
            r.handle,
            rep.subs.len(),
            rep.write_ops,
            rep.preload_ops_s() / 1e3,
            rep.catchup_floor_events_s() / 1e3,
            rep.subs
                .iter()
                .filter(|s| s.lag.count() > 0)
                .map(|s| s.lag.percentile(50.0))
                .fold(0.0, f64::max),
            rep.worst_lag_p99(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"catchup_vs_write\": {\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            r.handle,
            r.report.catchup_floor_events_s() / r.report.preload_ops_s().max(1e-9),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

fn default_json_path() -> String {
    std::env::var("CDC_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_cdc.json")
    })
}

fn main() -> ExitCode {
    let ops = env_u64("CDC_OPS", 30_000);
    let cfg = FollowerConfig {
        preload_ops: ops,
        live_ops: ops,
        subscribers: env_u64("CDC_SUBS", 4) as usize,
        poll_chunk: 512,
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();

    let db = {
        let mut o = Options::new(MemEnv::shared(), "cdc-bench-db", EngineMode::Scavenger);
        o.cdc_ring_bytes = 8 * 1024 * 1024;
        // Cold followers subscribe *after* the preload: the backlog
        // must survive in retained WAL segments, not just the ring.
        o.cdc_retention = 1 << 30;
        Db::open(o).expect("open Db")
    };
    match bench_handle("db", db, &cfg) {
        Ok(row) => rows.push(row),
        Err(e) => {
            eprintln!("cdc_follower: db run failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let shards = {
        let env = MemEnv::shared();
        let mut so = ShardedOptions::new(env.clone(), "cdc-bench-sh", EngineMode::Scavenger);
        so.base = Options::new(env, "cdc-bench-sh", EngineMode::Scavenger);
        so.base.cdc_ring_bytes = 8 * 1024 * 1024;
        so.base.cdc_retention = 1 << 30;
        so.num_shards = 4;
        DbShards::open(so).expect("open DbShards")
    };
    match bench_handle("shards4", shards, &cfg) {
        Ok(row) => rows.push(row),
        Err(e) => {
            eprintln!("cdc_follower: shards4 run failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    for r in &rows {
        let rep = &r.report;
        eprintln!(
            "cdc_follower[{}]: {} subs, preload {:.1} kops, catch-up floor {:.1} kevents/s, lag p99 {:.0} seqs",
            r.handle,
            rep.subs.len(),
            rep.preload_ops_s() / 1e3,
            rep.catchup_floor_events_s() / 1e3,
            rep.worst_lag_p99(),
        );
        for sub in &rep.subs {
            if sub.catchup_events != rep.write_ops / 2 || sub.tail_events != rep.write_ops / 2 {
                eprintln!(
                    "cdc_follower: FOLLOWER LOST EVENTS on {}: caught {} + tailed {} of {}",
                    r.handle, sub.catchup_events, sub.tail_events, rep.write_ops
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let path = default_json_path();
    if let Err(e) = write_json(&path, &rows, cores) {
        eprintln!("cdc_follower: writing {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("cdc_follower: wrote {path}");
    ExitCode::SUCCESS
}
