//! Paper Figure 19: update throughput under varying workloads, 1.5x limit.
//!
//! (a) fixed value sizes 256B-16K (+ S-N: Scavenger with no limit);
//! (b) Mixed small:large ratios 1:9..9:1;
//! (c) Zipfian constants uniform..0.99.
//!
//! Paper shape: all KV-separated engines lose to RocksDB below ~2K values;
//! Scavenger still beats the separated baselines 1.1-4.0x, and its
//! advantage grows with skew (2.1-2.7x at zipf 0.99).

use scavenger::EngineMode;
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let engines = EngineSpec::all_modes();

    // (a) fixed sizes.
    let sizes = [256usize, 512, 1024, 2048, 4096, 8192, 16384];
    let mut rows = Vec::new();
    for spec in &engines {
        let mut row = vec![spec.label.clone()];
        for &vs in &sizes {
            let out = run_experiment(
                spec,
                ValueGen::fixed(vs),
                0.9,
                &scale,
                Some(1.5),
                Phases::load_update(),
            )
            .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    // S-N: Scavenger without the space limit.
    {
        let spec = EngineSpec::custom(
            "S-N",
            EngineMode::Scavenger,
            scavenger::Features::for_mode(EngineMode::Scavenger),
        );
        let mut row = vec![spec.label.clone()];
        for &vs in &sizes {
            let out = run_experiment(
                &spec,
                ValueGen::fixed(vs),
                0.9,
                &scale,
                None,
                Phases::load_update(),
            )
            .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 19(a): update MB/s vs fixed value size (1.5x limit; S-N = no limit)",
        &["engine", "256B", "512B", "1K", "2K", "4K", "8K", "16K"],
        &rows,
    );

    // (b) mixed ratios.
    let ratios = [(1u32, 9u32), (3, 7), (5, 5), (7, 3), (9, 1)];
    let mut rows = Vec::new();
    for spec in &engines {
        let mut row = vec![spec.label.clone()];
        for &(s, l) in &ratios {
            let out = run_experiment(
                spec,
                ValueGen::mixed_ratio(s, l),
                0.9,
                &scale,
                Some(1.5),
                Phases::load_update(),
            )
            .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 19(b): update MB/s vs Mixed small:large ratio (1.5x limit)",
        &["engine", "1:9", "3:7", "5:5", "7:3", "9:1"],
        &rows,
    );

    // (c) skew sweep (0.01 ~ uniform-ish via zipf floor; plus true uniform label).
    let thetas = [0.01f64, 0.5, 0.7, 0.9, 0.99];
    let mut rows = Vec::new();
    for spec in &engines {
        let mut row = vec![spec.label.clone()];
        for &t in &thetas {
            let out = run_experiment(
                spec,
                ValueGen::mixed_8k(),
                t,
                &scale,
                Some(1.5),
                Phases::load_update(),
            )
            .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 19(c): update MB/s vs Zipfian constant (Mixed-8K, 1.5x limit)",
        &[
            "engine", "uniform", "zipf0.5", "zipf0.7", "zipf0.9", "zipf0.99",
        ],
        &rows,
    );
}
