//! Paper Table I: insert-only space usage — TerarkDB vs Scavenger.
//!
//! Measures the RTable dense-index overhead: the paper reports +4.78% at
//! 1K values shrinking to +0.04% at 16K.

use scavenger::EngineMode;
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    type WorkloadRow = (&'static str, fn() -> ValueGen);
    let workloads: Vec<WorkloadRow> = vec![
        ("1K", || ValueGen::fixed(1024)),
        ("4K", || ValueGen::fixed(4096)),
        ("16K", || ValueGen::fixed(16384)),
        ("Mixed-8K", ValueGen::mixed_8k),
        ("Pareto-1K", ValueGen::pareto_1k),
    ];
    let mut terark = vec!["TerarkDB".to_string()];
    let mut scav = vec!["Scavenger".to_string()];
    let mut ratio = vec!["Ratio".to_string()];
    for (_, mk) in &workloads {
        let insert_only = Phases {
            update: false,
            read: false,
            scan: false,
        };
        let t = run_experiment(
            &EngineSpec::mode(EngineMode::Terark),
            mk(),
            0.9,
            &scale,
            None,
            insert_only,
        )
        .expect("terark");
        let s = run_experiment(
            &EngineSpec::mode(EngineMode::Scavenger),
            mk(),
            0.9,
            &scale,
            None,
            insert_only,
        )
        .expect("scavenger");
        terark.push(mb(t.space_total));
        scav.push(mb(s.space_total));
        let r = (s.space_total as f64 / t.space_total as f64 - 1.0) * 100.0;
        ratio.push(format!("{r:+.2}%"));
    }
    print_table(
        "Table I: space usage for insert-only load (MB)",
        &["config", "1K", "4K", "16K", "Mixed-8K", "Pareto-1K"],
        &[terark, scav, ratio],
    );
}
