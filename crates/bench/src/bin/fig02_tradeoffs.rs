//! Paper Figure 2: space-time trade-offs of existing solutions.
//!
//! Update throughput (a) and space amplification (b) for RocksDB, BlobDB,
//! Titan, and TerarkDB under Fixed-{1K,4K,8K,16K} update workloads
//! (Zipfian 0.9, GC threshold 0.2, no space limit).
//!
//! Paper shape: KV-separated engines beat RocksDB on throughput by
//! 2.6–4.2x at 8K but pay 2.4–3.0x space; BlobDB's SA is worst (≈3.4x at
//! 4K in the paper's Fig. 2b).

use scavenger::EngineMode;
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let engines: Vec<EngineSpec> = [
        EngineMode::Rocks,
        EngineMode::BlobDb,
        EngineMode::Titan,
        EngineMode::Terark,
    ]
    .iter()
    .map(|m| EngineSpec::mode(*m))
    .collect();
    let sizes = [1024usize, 4096, 8192, 16384];

    let mut thpt_rows = Vec::new();
    let mut sa_rows = Vec::new();
    for spec in &engines {
        let mut t = vec![spec.label.clone()];
        let mut s = vec![spec.label.clone()];
        for &vs in &sizes {
            let out = run_experiment(
                spec,
                ValueGen::fixed(vs),
                0.9,
                &scale,
                None,
                Phases::load_update(),
            )
            .expect("experiment");
            t.push(f2(out.update_mbps()));
            s.push(f2(out.space_amp()));
        }
        thpt_rows.push(t);
        sa_rows.push(s);
    }
    print_table(
        "Fig 2(a): update throughput (simulated MB/s)",
        &["engine", "1K", "4K", "8K", "16K"],
        &thpt_rows,
    );
    print_table(
        "Fig 2(b): space amplification",
        &["engine", "1K", "4K", "8K", "16K"],
        &sa_rows,
    );
}
