//! Paper Figure 18: root-cause decomposition of space amplification.
//!
//! (a) index LSM-tree SA; (b) exposed/valid ratio — for RocksDB, TDB,
//! TDB-C, and Scavenger across fixed value sizes (no limit).
//!
//! Paper shape: compensation pulls index SA to ~1.1 (vanilla level); only
//! with I/O-efficient GC does exposed garbage also drain.

use scavenger::{EngineMode, Features};
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let specs = vec![
        EngineSpec::mode(EngineMode::Rocks),
        EngineSpec::custom(
            "TDB",
            EngineMode::Terark,
            Features::for_mode(EngineMode::Terark),
        ),
        EngineSpec::custom("TDB-C", EngineMode::Terark, Features::tdb_compensated()),
        EngineSpec::mode(EngineMode::Scavenger),
    ];
    let sizes = [1024usize, 4096, 8192, 16384];
    let mut ia_rows = Vec::new();
    let mut ev_rows = Vec::new();
    for spec in &specs {
        let mut ia = vec![spec.label.clone()];
        let mut ev = vec![spec.label.clone()];
        for &vs in &sizes {
            let out = run_experiment(
                spec,
                ValueGen::fixed(vs),
                0.9,
                &scale,
                None,
                Phases::load_update(),
            )
            .expect("experiment");
            ia.push(f2(out.index_sa));
            ev.push(if spec.mode == EngineMode::Rocks {
                "-".into()
            } else {
                f2(out.exposed_valid)
            });
        }
        ia_rows.push(ia);
        ev_rows.push(ev);
    }
    print_table(
        "Fig 18(a): index LSM-tree SA, no limit",
        &["config", "1K", "4K", "8K", "16K"],
        &ia_rows,
    );
    print_table(
        "Fig 18(b): exposed/valid ratio, no limit",
        &["config", "1K", "4K", "8K", "16K"],
        &ev_rows,
    );
}
