//! Paper Figure 3: GC latency breakdown of TerarkDB and Titan.
//!
//! Percent of GC time spent in Read / GC-Lookup / Write / Write-Index per
//! workload, plus the index LSM-tree size.
//!
//! Paper shape: Read dominates (>50%) everywhere except Pareto-1K where
//! GC-Lookup takes over; Titan additionally pays ~38% in Write-Index.

use scavenger::EngineMode;
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn workloads() -> Vec<(&'static str, ValueGen)> {
    vec![
        ("Fixed-1K", ValueGen::fixed(1024)),
        ("Fixed-2K", ValueGen::fixed(2048)),
        ("Fixed-4K", ValueGen::fixed(4096)),
        ("Fixed-8K", ValueGen::fixed(8192)),
        ("Fixed-16K", ValueGen::fixed(16384)),
        ("Mixed-8K", ValueGen::mixed_8k()),
        ("Pareto-1K", ValueGen::pareto_1k()),
    ]
}

fn main() {
    let scale = Scale::from_args();
    for mode in [EngineMode::Terark, EngineMode::Titan] {
        let spec = EngineSpec::mode(mode);
        let mut rows = Vec::new();
        for (name, gen) in workloads() {
            let out = run_experiment(&spec, gen, 0.9, &scale, None, Phases::load_update())
                .expect("experiment");
            let (r, l, w, wi) = out.gc_update.percentages();
            rows.push(vec![
                name.to_string(),
                f2(r),
                f2(l),
                f2(w),
                f2(wi),
                format!("{}", out.gc_update.runs),
                mb(out.ksst_bytes),
            ]);
        }
        print_table(
            &format!("Fig 3: GC latency breakdown — {}", spec.label),
            &[
                "workload",
                "read%",
                "lookup%",
                "write%",
                "write-index%",
                "gc-runs",
                "index MB",
            ],
            &rows,
        );
    }
}
