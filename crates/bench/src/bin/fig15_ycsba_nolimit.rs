//! Paper Figure 15: YCSB-A without a space limit — throughput + SA.
//!
//! Paper shape: Scavenger best throughput with SA 1.56/1.47 vs 2.2-3.1x
//! for the other separated engines.

use scavenger_bench::*;
use scavenger_workload::values::ValueGen;
use scavenger_workload::ycsb::YcsbWorkload;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for spec in EngineSpec::all_modes() {
        let (ops_m, _r, sa_m) =
            run_ycsb(&spec, ValueGen::mixed_8k(), YcsbWorkload::A, &scale, None).expect("mixed");
        let (ops_p, _r, sa_p) =
            run_ycsb(&spec, ValueGen::pareto_1k(), YcsbWorkload::A, &scale, None).expect("pareto");
        rows.push(vec![
            spec.label.clone(),
            f2(ops_m / 1e3),
            f2(sa_m),
            f2(ops_p / 1e3),
            f2(sa_p),
        ]);
    }
    print_table(
        "Fig 15: YCSB-A without space limit",
        &[
            "engine",
            "Mixed Kops/s",
            "Mixed SA",
            "Pareto Kops/s",
            "Pareto SA",
        ],
        &rows,
    );
}
