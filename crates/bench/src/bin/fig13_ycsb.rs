//! Paper Figure 13: YCSB A-F under Mixed-8K and Pareto-1K, 1.5x limit.
//!
//! Paper shape: Scavenger leads write-intensive A/F by ~2-3.5x; E (scans)
//! favours RocksDB's tighter ordering.

use scavenger_bench::*;
use scavenger_workload::values::ValueGen;
use scavenger_workload::ycsb::YcsbWorkload;

fn main() {
    let scale = Scale::from_args();
    for (wname, mk) in [
        ("Mixed-8K", ValueGen::mixed_8k as fn() -> ValueGen),
        ("Pareto-1K", ValueGen::pareto_1k as fn() -> ValueGen),
    ] {
        let mut rows = Vec::new();
        for spec in EngineSpec::all_modes() {
            let mut row = vec![spec.label.clone()];
            for w in YcsbWorkload::ALL {
                let (ops, _rep, _sa) = run_ycsb(&spec, mk(), w, &scale, Some(1.5)).expect("ycsb");
                row.push(f2(ops / 1e3));
            }
            rows.push(row);
        }
        print_table(
            &format!("Fig 13: YCSB throughput (simulated Kops/s) — {wname}, 1.5x limit"),
            &["engine", "A", "B", "C", "D", "E", "F"],
            &rows,
        );
    }
}
