//! Paper Figure 14: update throughput and space amplification WITHOUT a
//! space limit, Mixed-8K and Pareto-1K.
//!
//! Paper shape: Scavenger keeps TerarkDB-class throughput while its SA
//! (2.21 / 1.96 in the paper) undercuts other KV-separated engines by up
//! to 40%.

use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for spec in EngineSpec::all_modes() {
        let mixed = run_experiment(
            &spec,
            ValueGen::mixed_8k(),
            0.9,
            &scale,
            None,
            Phases::load_update(),
        )
        .expect("mixed");
        let pareto = run_experiment(
            &spec,
            ValueGen::pareto_1k(),
            0.9,
            &scale,
            None,
            Phases::load_update(),
        )
        .expect("pareto");
        rows.push(vec![
            spec.label.clone(),
            f2(mixed.update_mbps()),
            f2(mixed.space_amp()),
            f2(pareto.update_mbps()),
            f2(pareto.space_amp()),
        ]);
    }
    print_table(
        "Fig 14: no space limit — update throughput and space amplification",
        &[
            "engine",
            "Mixed MB/s",
            "Mixed SA",
            "Pareto MB/s",
            "Pareto SA",
        ],
        &rows,
    );
}
