//! Paper Figure 17: ablation space amplification WITHOUT a space limit.
//!
//! Paper shape: compensation alone trims SA by up to ~4%; adding
//! I/O-efficient GC reaches up to ~30% reduction.

use scavenger::{EngineMode, Features, VFormat};
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let tdb = Features::for_mode(EngineMode::Terark);
    let c = Features::tdb_compensated();
    let cr = Features {
        vformat: VFormat::RTable,
        lazy_read: true,
        ..c
    };
    let crw = Features {
        hotness: true,
        ..cr
    };
    let crwl = Features {
        dtable_index: true,
        ..crw
    };
    let specs_a = vec![
        EngineSpec::custom("TDB", EngineMode::Terark, tdb),
        EngineSpec::custom("TDB-C", EngineMode::Terark, c),
        EngineSpec::mode(EngineMode::Scavenger),
    ];
    let specs_b = vec![
        EngineSpec::custom("C", EngineMode::Terark, c),
        EngineSpec::custom("CR", EngineMode::Terark, cr),
        EngineSpec::custom("CRW", EngineMode::Terark, crw),
        EngineSpec::custom("CRWL", EngineMode::Terark, crwl),
    ];
    type WorkloadRow = (&'static str, fn() -> ValueGen);
    let workloads: Vec<WorkloadRow> = vec![
        ("1K", || ValueGen::fixed(1024)),
        ("4K", || ValueGen::fixed(4096)),
        ("8K", || ValueGen::fixed(8192)),
        ("16K", || ValueGen::fixed(16384)),
        ("Mixed-8K", ValueGen::mixed_8k),
        ("Pareto-1K", ValueGen::pareto_1k),
    ];

    let mut rows = Vec::new();
    for spec in &specs_a {
        let mut row = vec![spec.label.clone()];
        for (_, mk) in &workloads {
            let out = run_experiment(spec, mk(), 0.9, &scale, None, Phases::load_update())
                .expect("experiment");
            row.push(f2(out.space_amp()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 17(a): space amplification, no limit",
        &["config", "1K", "4K", "8K", "16K", "Mixed-8K", "Pareto-1K"],
        &rows,
    );

    let mut rows = Vec::new();
    for spec in &specs_b {
        let mut row = vec![spec.label.clone()];
        for mk in [ValueGen::mixed_8k as fn() -> ValueGen, || {
            ValueGen::fixed(16384)
        }] {
            let out = run_experiment(spec, mk(), 0.9, &scale, None, Phases::load_update())
                .expect("experiment");
            row.push(f2(out.space_amp()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 17(b): GC feature stack, space amplification, no limit",
        &["config", "Mixed-8K", "Fixed-16K"],
        &rows,
    );
}
