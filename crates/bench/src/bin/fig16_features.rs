//! Paper Figure 16: feature ablations under a 1.5x space limit.
//!
//! (a) TerarkDB (TDB) vs TDB + compensated compaction (TDB-C) vs full
//! Scavenger across fixed and variable-length workloads.
//! (b) GC features stacked on TDB-C: +lazy Read (R), +hotness Write (W),
//! +DTable GC-Lookup (L).
//!
//! Paper shape: compensation alone lifts fixed-length updates 1.6-2.6x;
//! lazy read shines on large fixed values, L on variable-length.

use scavenger::{EngineMode, Features, VFormat};
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn ablation_specs() -> Vec<EngineSpec> {
    let tdb = Features::for_mode(EngineMode::Terark);
    let c = Features::tdb_compensated();
    vec![
        EngineSpec::custom("TDB", EngineMode::Terark, tdb),
        EngineSpec::custom("TDB-C", EngineMode::Terark, c),
        EngineSpec::mode(EngineMode::Scavenger),
    ]
}

fn gc_feature_specs() -> Vec<EngineSpec> {
    let c = Features::tdb_compensated();
    let cr = Features {
        vformat: VFormat::RTable,
        lazy_read: true,
        ..c
    };
    let crw = Features {
        hotness: true,
        ..cr
    };
    let crwl = Features {
        dtable_index: true,
        ..crw
    };
    vec![
        EngineSpec::custom("C", EngineMode::Terark, c),
        EngineSpec::custom("CR", EngineMode::Terark, cr),
        EngineSpec::custom("CRW", EngineMode::Terark, crw),
        EngineSpec::custom("CRWL", EngineMode::Terark, crwl),
    ]
}

fn workloads_a() -> Vec<(&'static str, ValueGen)> {
    vec![
        ("1K", ValueGen::fixed(1024)),
        ("4K", ValueGen::fixed(4096)),
        ("8K", ValueGen::fixed(8192)),
        ("16K", ValueGen::fixed(16384)),
        ("Mixed-8K", ValueGen::mixed_8k()),
        ("Pareto-1K", ValueGen::pareto_1k()),
    ]
}

fn main() {
    let scale = Scale::from_args();

    let mut rows = Vec::new();
    for spec in ablation_specs() {
        let mut row = vec![spec.label.clone()];
        for (_, gen) in workloads_a() {
            let out = run_experiment(&spec, gen, 0.9, &scale, Some(1.5), Phases::load_update())
                .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 16(a): compaction & GC features, update MB/s, 1.5x limit",
        &["config", "1K", "4K", "8K", "16K", "Mixed-8K", "Pareto-1K"],
        &rows,
    );

    let mut rows = Vec::new();
    for spec in gc_feature_specs() {
        let mut row = vec![spec.label.clone()];
        for gen in [ValueGen::mixed_8k(), ValueGen::fixed(16384)] {
            let out = run_experiment(&spec, gen, 0.9, &scale, Some(1.5), Phases::load_update())
                .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 16(b): GC feature stack (C/CR/CRW/CRWL), update MB/s, 1.5x limit",
        &["config", "Mixed-8K", "Fixed-16K"],
        &rows,
    );
}
