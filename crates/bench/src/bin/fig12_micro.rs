//! Paper Figure 12: microbenchmarks under Mixed-8K and Pareto-1K with a
//! 1.5x space limit — insert/update/read/scan throughput for all five
//! engines, plus (c) the disk-I/O breakdown of the Mixed-8K update phase.
//!
//! Paper shape: Scavenger wins updates by ~2x over the best baseline while
//! matching TerarkDB elsewhere; its GC read I/O drops 42–99% and write I/O
//! 12–41% vs the other KV-separated engines.

use scavenger::IoClass;
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    for (wname, mk) in [
        ("Mixed-8K", ValueGen::mixed_8k as fn() -> ValueGen),
        ("Pareto-1K", ValueGen::pareto_1k as fn() -> ValueGen),
    ] {
        let mut rows = Vec::new();
        let mut io_rows = Vec::new();
        for spec in EngineSpec::all_modes() {
            let out = run_experiment(&spec, mk(), 0.9, &scale, Some(1.5), Phases::all())
                .expect("experiment");
            rows.push(vec![
                spec.label.clone(),
                f2(out.insert_mbps()),
                f2(out.update_mbps()),
                f2(out.read_kops()),
                f2(out.scan_mbps()),
                format!("{}", out.throttle_stalls),
            ]);
            let d = &out.io_update;
            io_rows.push(vec![
                spec.label.clone(),
                mb(d.total_read_bytes()),
                mb(d.total_write_bytes()),
                mb(d.class(IoClass::GcRead).read_bytes),
                mb(d.class(IoClass::GcWrite).write_bytes),
            ]);
        }
        print_table(
            &format!("Fig 12(a/b): {wname}, 1.5x space limit"),
            &[
                "engine",
                "insert MB/s",
                "update MB/s",
                "read Kops/s",
                "scan MB/s",
                "stalls",
            ],
            &rows,
        );
        if wname == "Mixed-8K" {
            print_table(
                "Fig 12(c): disk I/O during Mixed-8K update (MB)",
                &["engine", "total read", "total write", "GC read", "GC write"],
                &io_rows,
            );
        }
    }
}
