//! Paper Figure 5: the two sources of space amplification.
//!
//! (a) index LSM-tree SA per engine and value size; (b) exposed-garbage /
//! valid-data ratio in the value store.
//!
//! Paper shape: index SA exceeds the vanilla-LSM ideal of 1.11x for every
//! KV-separated baseline; exposed/valid robustly exceeds the 0.25 ideal of
//! the 20% GC threshold.

use scavenger::EngineMode;
use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let engines: Vec<EngineSpec> = [
        EngineMode::Rocks,
        EngineMode::BlobDb,
        EngineMode::Titan,
        EngineMode::Terark,
    ]
    .iter()
    .map(|m| EngineSpec::mode(*m))
    .collect();
    let sizes = [1024usize, 4096, 8192, 16384];
    let mut index_rows = Vec::new();
    let mut ev_rows = Vec::new();
    for spec in &engines {
        let mut ir = vec![spec.label.clone()];
        let mut er = vec![spec.label.clone()];
        for &vs in &sizes {
            let out = run_experiment(
                spec,
                ValueGen::fixed(vs),
                0.9,
                &scale,
                None,
                Phases::load_update(),
            )
            .expect("experiment");
            ir.push(f2(out.index_sa));
            er.push(if spec.mode == EngineMode::Rocks {
                "-".into()
            } else {
                f2(out.exposed_valid)
            });
        }
        index_rows.push(ir);
        ev_rows.push(er);
    }
    print_table(
        "Fig 5(a): index LSM-tree space amplification",
        &["engine", "1K", "4K", "8K", "16K"],
        &index_rows,
    );
    print_table(
        "Fig 5(b): exposed garbage / valid data ratio",
        &["engine", "1K", "4K", "8K", "16K"],
        &ev_rows,
    );
}
