//! Load generator for `scavenger-server`: drive N client connections
//! with deterministic op streams and report throughput + latency.
//!
//! Two ways to run it:
//!
//! - **Self-contained benchmark** (no flags): starts an in-process
//!   server over a fresh in-memory store and sweeps the full matrix —
//!   read-heavy and write-heavy mixes at 1, 4, and 16 connections —
//!   writing `BENCH_server.json` at the workspace root.
//!
//! - **External driver** (`--addr HOST:PORT`): drives a server started
//!   elsewhere (the CI smoke job). `--shutdown` sends the graceful
//!   shutdown request afterwards (`--conns 0 --shutdown` sends it
//!   without driving any load); `--verify` replays the deterministic op
//!   streams *without writing* — composing, per stripe, every matrix
//!   config that touched it, in run order — and checks every expected
//!   key over the wire. Run it against a restarted server to prove no
//!   acked write was lost (the earlier driving run exits nonzero if any
//!   op failed, which is what licenses "every op was acked" as the
//!   oracle's premise).
//!
//! Each connection owns a disjoint key stripe (see
//! `scavenger_workload::ops`), so verification is exact under
//! arbitrary interleaving.

use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_server::{Client, Server, ServerConfig};
use scavenger_util::hist::Histogram;
use scavenger_workload::ops::{AckOracle, ClientOp, OpMix, OpStream};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    addr: Option<String>,
    conns: Vec<usize>,
    ops_per_conn: u64,
    stripe_len: u64,
    seed: u64,
    mixes: Vec<(&'static str, OpMix)>,
    json: Option<String>,
    shutdown: bool,
    verify: bool,
}

const USAGE: &str = "usage: server_load [--addr HOST:PORT] [--conns N,N,...] \
[--ops-per-conn N] [--stripe-len N] [--seed N] [--mix read|write|both] \
[--json PATH] [--shutdown] [--verify]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        conns: vec![1, 4, 16],
        ops_per_conn: 2000,
        stripe_len: 10_000,
        seed: 0x5caf_f01d,
        mixes: vec![
            ("read_heavy", OpMix::read_heavy()),
            ("write_heavy", OpMix::write_heavy()),
        ],
        json: None,
        shutdown: false,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")?),
            "--conns" => {
                args.conns = val("--conns")?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--conns: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--ops-per-conn" => {
                args.ops_per_conn = val("--ops-per-conn")?
                    .parse()
                    .map_err(|e| format!("--ops-per-conn: {e}"))?;
            }
            "--stripe-len" => {
                args.stripe_len = val("--stripe-len")?
                    .parse()
                    .map_err(|e| format!("--stripe-len: {e}"))?;
            }
            "--seed" => {
                args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--mix" => {
                args.mixes = match val("--mix")?.as_str() {
                    "read" => vec![("read_heavy", OpMix::read_heavy())],
                    "write" => vec![("write_heavy", OpMix::write_heavy())],
                    "both" => vec![
                        ("read_heavy", OpMix::read_heavy()),
                        ("write_heavy", OpMix::write_heavy()),
                    ],
                    other => return Err(format!("--mix: unknown mix {other}")),
                };
            }
            "--json" => args.json = Some(val("--json")?),
            "--shutdown" => args.shutdown = true,
            "--verify" => args.verify = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

struct RunResult {
    mix: &'static str,
    conns: usize,
    ops: u64,
    secs: f64,
    p50_us: f64,
    p99_us: f64,
    errors: u64,
}

/// One client thread: apply `ops_per_conn` ops from its stream,
/// recording latency; returns the merged histogram and error count.
fn drive_conn(
    addr: &str,
    seed: u64,
    client_id: u64,
    stripe_len: u64,
    mix: OpMix,
    ops_per_conn: u64,
) -> Result<(Histogram, u64), String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("conn {client_id}: connect: {e}"))?;
    let mut stream = OpStream::new(seed, client_id, stripe_len, mix);
    let mut hist = Histogram::new();
    let mut errors = 0u64;
    for _ in 0..ops_per_conn {
        let op = stream.next_op();
        let start = Instant::now();
        let outcome = match &op {
            ClientOp::Get { key } => client.get(key).map(|_| ()),
            ClientOp::Put { key, value } => client.put(key, value).map(|_| ()),
            ClientOp::Delete { key } => client.delete(key).map(|_| ()),
            ClientOp::Scan { lo, limit } => client.scan(None, lo, None, *limit).map(|_| ()),
        };
        hist.record(start.elapsed().as_micros() as u64);
        if let Err(e) = outcome {
            errors += 1;
            if errors <= 3 {
                eprintln!("server_load: conn {client_id} {} failed: {e}", op.label());
            }
        }
    }
    Ok((hist, errors))
}

/// Re-derive each stripe's expected final state and check it over the
/// wire (assuming every op of the driving run was acked — the driving
/// run exits nonzero otherwise, which is what licenses that premise).
///
/// The matrix runs its (mix, conns) configs *sequentially over the same
/// stripes*: client id `c` participates in every config with more than
/// `c` connections, and within a config each stripe is touched by
/// exactly one thread. So a stripe's final state is the in-run-order
/// composition of the streams from every config that included it — not
/// any single config's stream in isolation.
fn verify(addr: &str, args: &Args) -> Result<usize, String> {
    let max_conns = args.conns.iter().copied().max().unwrap_or(0);
    let mut checked = 0;
    for client_id in 0..max_conns as u64 {
        let mut oracle = AckOracle::new();
        for (_, mix) in &args.mixes {
            for &conns in &args.conns {
                if client_id < conns as u64 {
                    let mut stream = OpStream::new(args.seed, client_id, args.stripe_len, *mix);
                    for _ in 0..args.ops_per_conn {
                        oracle.ack(&stream.next_op());
                    }
                }
            }
        }
        if oracle.is_empty() {
            continue;
        }
        let mut client =
            Client::connect(addr).map_err(|e| format!("verify conn {client_id}: {e}"))?;
        let mut wire_err: Option<String> = None;
        let n = oracle
            .check(|key| match client.get(key) {
                Ok(v) => v,
                Err(e) => {
                    wire_err.get_or_insert(format!("get failed during verify: {e}"));
                    None
                }
            })
            .map_err(|e| format!("conn {client_id}: {e}"))?;
        if let Some(e) = wire_err {
            return Err(format!("conn {client_id}: {e}"));
        }
        checked += n;
    }
    Ok(checked)
}

fn run_matrix(addr: &str, args: &Args) -> Result<Vec<RunResult>, String> {
    let mut results = Vec::new();
    for (mix_name, mix) in &args.mixes {
        for &conns in &args.conns {
            let start = Instant::now();
            let workers: Vec<_> = (0..conns as u64)
                .map(|client_id| {
                    let addr = addr.to_string();
                    let (seed, stripe, mix, ops) =
                        (args.seed, args.stripe_len, *mix, args.ops_per_conn);
                    std::thread::spawn(move || drive_conn(&addr, seed, client_id, stripe, mix, ops))
                })
                .collect();
            let mut hist = Histogram::new();
            let mut errors = 0u64;
            for w in workers {
                let (h, e) = w.join().map_err(|_| "worker panicked".to_string())??;
                hist.merge(&h);
                errors += e;
            }
            let secs = start.elapsed().as_secs_f64();
            let ops = args.ops_per_conn * conns as u64;
            let r = RunResult {
                mix: mix_name,
                conns,
                ops,
                secs,
                p50_us: hist.percentile(50.0),
                p99_us: hist.percentile(99.0),
                errors,
            };
            eprintln!(
                "server_load: {mix_name} conns={conns} {:.1} Kops/s p50={:.0}us p99={:.0}us errors={errors}",
                ops as f64 / secs / 1e3,
                r.p50_us,
                r.p99_us
            );
            results.push(r);
        }
    }
    Ok(results)
}

fn write_json(path: &str, results: &[RunResult]) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out =
        format!("{{\n  \"bench\": \"server\",\n  \"cores\": {cores},\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mix\": \"{}\", \"conns\": {}, \"ops\": {}, \"secs\": {:.3}, \"kops\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"errors\": {}}}{}\n",
            r.mix,
            r.conns,
            r.ops,
            r.secs,
            r.ops as f64 / r.secs / 1e3,
            r.p50_us,
            r.p99_us,
            r.errors,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn default_json_path() -> String {
    std::env::var("SERVER_LOAD_JSON").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/BENCH_server.json")
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Self-contained mode: host the server ourselves over MemEnv.
    let (addr, handle) = match &args.addr {
        Some(a) => (a.clone(), None),
        None => {
            let db = Db::open(Options::new(
                MemEnv::shared(),
                "bench-server",
                EngineMode::Scavenger,
            ))
            .expect("open in-memory store");
            let handle =
                Server::start(db, ServerConfig::default()).expect("start in-process server");
            (handle.addr().to_string(), Some(handle))
        }
    };

    let mut failed = false;

    if args.verify {
        match verify(&addr, &args) {
            Ok(n) => eprintln!("server_load: verify: {n} keys match expected state"),
            Err(e) => {
                eprintln!("server_load: VERIFY FAILED: {e}");
                failed = true;
            }
        }
    } else if args.conns.iter().all(|&c| c == 0) {
        eprintln!("server_load: no connections requested; skipping load matrix");
    } else {
        match run_matrix(&addr, &args) {
            Ok(results) => {
                let total_errors: u64 = results.iter().map(|r| r.errors).sum();
                if total_errors > 0 {
                    eprintln!("server_load: {total_errors} ops failed");
                    failed = true;
                }
                let path = args.json.clone().unwrap_or_else(default_json_path);
                if let Err(e) = write_json(&path, &results) {
                    eprintln!("server_load: writing {path}: {e}");
                    failed = true;
                } else {
                    eprintln!("server_load: wrote {path}");
                }
            }
            Err(e) => {
                eprintln!("server_load: {e}");
                failed = true;
            }
        }
    }

    if args.shutdown {
        match Client::connect(&addr).and_then(|mut c| c.shutdown()) {
            Ok(()) => eprintln!("server_load: shutdown requested"),
            Err(e) => {
                eprintln!("server_load: shutdown request failed: {e}");
                failed = true;
            }
        }
    }
    if let Some(h) = handle {
        h.shutdown_and_wait();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
