//! Paper Figure 20: update throughput vs space limit (Mixed-8K).
//!
//! Paper shape: looser quotas favour KV separation; at 1.25x only
//! Scavenger matches RocksDB among the separated engines; RocksDB is flat.

use scavenger_bench::*;
use scavenger_workload::values::ValueGen;

fn main() {
    let scale = Scale::from_args();
    let limits: [(&str, Option<f64>); 5] = [
        ("no-limit", None),
        ("2x", Some(2.0)),
        ("1.75x", Some(1.75)),
        ("1.5x", Some(1.5)),
        ("1.25x", Some(1.25)),
    ];
    let mut rows = Vec::new();
    for spec in EngineSpec::all_modes() {
        let mut row = vec![spec.label.clone()];
        for (_, lim) in limits {
            let out = run_experiment(
                &spec,
                ValueGen::mixed_8k(),
                0.9,
                &scale,
                lim,
                Phases::load_update(),
            )
            .expect("experiment");
            row.push(f2(out.update_mbps()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 20: update MB/s vs space limit (Mixed-8K)",
        &["engine", "no-limit", "2x", "1.75x", "1.5x", "1.25x"],
        &rows,
    );
}
