//! Deterministic fault injection and crash (power-loss) simulation.
//!
//! [`FaultEnv`] wraps any [`Env`] and injects failures according to a
//! seeded, fully deterministic schedule: by op class, path substring,
//! nth-matching-op, or seeded probability. Beyond returning plain errors
//! it models three physical failure modes:
//!
//! * **Torn appends** — an injected write forwards only a seeded prefix
//!   of the data before failing, leaving a partial record on "disk".
//! * **Power loss** — the env tracks, per file, how many bytes have been
//!   made durable by `sync()`. [`FaultEnv::crash`] truncates every file
//!   touched since the last crash/heal back to its durable prefix
//!   (optionally keeping a seeded slice of the unsynced tail, like a
//!   real torn tail) and removes files that were never synced. Handles
//!   opened before the crash are fenced: every subsequent operation on
//!   them fails and forwards nothing to the inner env.
//! * **fsyncgate** — after a failed `sync()`, later syncs on the same
//!   handle report success but never advance the durable watermark,
//!   mirroring the page-cache semantics that make retry-after-fsync-error
//!   unsafe on real systems. A writer that keeps using the handle loses
//!   the data at the next crash; rotating to a fresh file is the only
//!   safe response.
//!
//! Determinism: the same seed and the same sequence of env calls produce
//! the same fault schedule (the RNG is a hand-rolled splitmix64; no
//! external dependencies). Metadata probes (`file_exists`, `file_size`,
//! `list_prefix`, `create_dir_all`) pass through un-injected and do not
//! advance the op counter. Renames and deletes are modeled as atomic and
//! immediately durable (the LevelDB `CURRENT`-swap assumption); only
//! file *contents* obey the synced-vs-unsynced distinction.
//!
//! Crash simulation rewrites surviving prefixes through the generic
//! [`Env`] API, so it works over any inner env, but full hermeticity
//! (stale pre-crash handles provably unable to touch surviving files) is
//! guaranteed for [`MemEnv`](crate::MemEnv), the intended test substrate.

use crate::io_stats::{IoClass, IoStats};
use crate::{Env, EnvRef, RandomAccessFile, WritableFile};
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_util::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Operation classes faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Creating a writable file or opening a file for random access.
    Open,
    /// Whole-file or positional reads.
    Read,
    /// Appends through a writable handle.
    Write,
    /// Durability syncs.
    Sync,
    /// Atomic renames.
    Rename,
    /// File deletions.
    Delete,
}

/// When a matching rule fires.
#[derive(Debug, Clone)]
pub enum Trigger {
    /// Fire on every matching op.
    Always,
    /// Fire on the nth matching op (1-based), once.
    Nth(u64),
    /// Fire on each matching op with this probability (seeded RNG).
    Probability(f64),
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The op fails with [`Error::Io`]; nothing is forwarded.
    Fail,
    /// Write only: a seeded prefix of the data is forwarded, then the op
    /// fails (torn append). On other op classes this behaves like
    /// [`FaultKind::Fail`].
    Torn,
    /// Simulate power loss at this op: all unsynced bytes are dropped
    /// (see [`FaultEnv::crash`]) and the op fails. Subsequent ops fail
    /// until [`FaultEnv::heal`] is called.
    Crash,
}

/// A single fault-injection rule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation class this rule matches.
    pub op: FaultOp,
    /// If set, the path must contain this substring.
    pub path_contains: Option<String>,
    /// When the rule fires among matching ops.
    pub trigger: Trigger,
    /// Effect on the op when the rule fires.
    pub kind: FaultKind,
    /// Disarm the rule after its first firing.
    pub one_shot: bool,
}

impl FaultRule {
    /// A rule that fails every matching op (customize via struct update).
    pub fn fail(op: FaultOp) -> Self {
        FaultRule {
            op,
            path_contains: None,
            trigger: Trigger::Always,
            kind: FaultKind::Fail,
            one_shot: false,
        }
    }
}

struct RuleState {
    rule: FaultRule,
    matched: u64,
    fired: bool,
}

struct FaultState {
    rng: u64,
    rules: Vec<RuleState>,
    /// Durable (synced) length per file touched since the last crash/heal.
    /// Files absent from this map were untouched and are fully durable.
    files: HashMap<String, u64>,
    ops: u64,
    crash_at: Option<u64>,
    crashed: bool,
    epoch: u64,
    torn_tail: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Shared {
    inner: EnvRef,
    state: Mutex<FaultState>,
}

impl Shared {
    /// Gate an injectable op. `Ok(None)` = proceed; `Ok(Some(r))` = torn
    /// write with seed `r`; `Err` = the op fails (possibly post-crash).
    fn decide(&self, op: FaultOp, path: &str, epoch: Option<u64>) -> Result<Option<u64>> {
        let mut st = self.state.lock();
        if let Some(e) = epoch {
            if e != st.epoch {
                return Err(Error::io(format!(
                    "fault: stale handle for {path} (env crashed)"
                )));
            }
        }
        if st.crashed {
            return Err(Error::io(format!("fault: env is crashed ({op:?} {path})")));
        }
        st.ops += 1;
        if let Some(at) = st.crash_at {
            if st.ops >= at {
                let ops = st.ops;
                self.crash_locked(&mut st);
                return Err(Error::io(format!(
                    "fault: injected crash at op {ops} ({op:?} {path})"
                )));
            }
        }
        let mut fire = None;
        for i in 0..st.rules.len() {
            let matches = {
                let r = &st.rules[i];
                let armed = !(r.fired && r.rule.one_shot);
                let path_ok = match &r.rule.path_contains {
                    Some(s) => path.contains(s.as_str()),
                    None => true,
                };
                armed && r.rule.op == op && path_ok
            };
            if !matches {
                continue;
            }
            st.rules[i].matched += 1;
            let fired = match st.rules[i].rule.trigger {
                Trigger::Always => true,
                Trigger::Nth(n) => st.rules[i].matched == n,
                Trigger::Probability(p) => {
                    let r = splitmix64(&mut st.rng);
                    ((r >> 11) as f64) / ((1u64 << 53) as f64) < p
                }
            };
            if fired {
                st.rules[i].fired = true;
                fire = Some(st.rules[i].rule.kind);
                break;
            }
        }
        match fire {
            None => Ok(None),
            Some(FaultKind::Torn) if op == FaultOp::Write => {
                let r = splitmix64(&mut st.rng);
                Ok(Some(r))
            }
            Some(FaultKind::Crash) => {
                let ops = st.ops;
                self.crash_locked(&mut st);
                Err(Error::io(format!(
                    "fault: injected crash at op {ops} ({op:?} {path})"
                )))
            }
            Some(_) => Err(Error::io(format!(
                "fault: injected {op:?} failure on {path}"
            ))),
        }
    }

    /// Power loss: truncate every touched file to its durable prefix
    /// (plus an optional seeded torn tail), remove never-synced files,
    /// and fence all pre-crash handles.
    fn crash_locked(&self, st: &mut FaultState) {
        st.crashed = true;
        st.epoch += 1;
        st.crash_at = None;
        st.rules.clear();
        let files = std::mem::take(&mut st.files);
        for (path, synced) in files {
            let Ok(data) = self.inner.read_file(&path, IoClass::Other) else {
                continue;
            };
            let mut keep = synced.min(data.len() as u64);
            if st.torn_tail && (data.len() as u64) > keep {
                let tail = data.len() as u64 - keep;
                keep += splitmix64(&mut st.rng) % (tail + 1);
            }
            if keep == 0 {
                let _ = self.inner.remove_file(&path);
            } else if let Ok(mut w) = self.inner.new_writable(&path, IoClass::Other) {
                // Rewriting (even when keep == len) gives the surviving
                // file a fresh identity, so late buffer flushes from
                // stale pre-crash handles land on an orphan, not on the
                // durable image.
                let _ = w.append(&data[..keep as usize]);
                let _ = w.sync();
            }
        }
    }
}

/// A deterministic fault-injecting wrapper around any [`Env`].
///
/// See the [module docs](self) for the failure model. Construct with
/// [`FaultEnv::wrap`], configure via [`add_rule`](FaultEnv::add_rule) /
/// [`crash_after_ops`](FaultEnv::crash_after_ops), and recover a crashed
/// env with [`heal`](FaultEnv::heal) before reopening the engine on the
/// surviving bytes.
pub struct FaultEnv {
    shared: Arc<Shared>,
}

impl FaultEnv {
    /// Wrap `inner` with the given RNG seed.
    pub fn wrap(inner: EnvRef, seed: u64) -> Arc<FaultEnv> {
        Arc::new(FaultEnv {
            shared: Arc::new(Shared {
                inner,
                state: Mutex::new(FaultState {
                    rng: seed ^ 0x5ca7_e26e_5ca7_e26e,
                    rules: Vec::new(),
                    files: HashMap::new(),
                    ops: 0,
                    crash_at: None,
                    crashed: false,
                    epoch: 0,
                    torn_tail: true,
                }),
            }),
        })
    }

    /// Install a fault rule.
    pub fn add_rule(&self, rule: FaultRule) {
        self.shared.state.lock().rules.push(RuleState {
            rule,
            matched: 0,
            fired: false,
        });
    }

    /// Remove all installed rules (pending crash points stay armed).
    pub fn clear_rules(&self) {
        self.shared.state.lock().rules.clear();
    }

    /// Simulate power loss when the global op counter reaches
    /// `self.op_count() + n` (n ≥ 1).
    pub fn crash_after_ops(&self, n: u64) {
        let mut st = self.shared.state.lock();
        st.crash_at = Some(st.ops + n.max(1));
    }

    /// Simulate power loss now. Until [`heal`](FaultEnv::heal) every
    /// injectable op fails and pre-crash handles are fenced forever.
    pub fn crash(&self) {
        let mut st = self.shared.state.lock();
        self.shared.crash_locked(&mut st);
    }

    /// Clear the crashed flag, all rules, and all durability tracking so
    /// the engine can be reopened on the surviving bytes.
    pub fn heal(&self) {
        let mut st = self.shared.state.lock();
        st.crashed = false;
        st.crash_at = None;
        st.rules.clear();
        st.files.clear();
    }

    /// Whether to keep a seeded slice of the unsynced tail at crash time
    /// (torn tail, default `true`) instead of cutting exactly at the
    /// durable watermark.
    pub fn set_torn_tail(&self, on: bool) {
        self.shared.state.lock().torn_tail = on;
    }

    /// True after a crash and before [`heal`](FaultEnv::heal).
    pub fn crashed(&self) -> bool {
        self.shared.state.lock().crashed
    }

    /// Number of injectable ops observed so far.
    pub fn op_count(&self) -> u64 {
        self.shared.state.lock().ops
    }

    /// The wrapped inner environment.
    pub fn inner(&self) -> EnvRef {
        self.shared.inner.clone()
    }
}

struct FaultWritable {
    inner: Box<dyn WritableFile>,
    path: String,
    shared: Arc<Shared>,
    epoch: u64,
    /// Bytes successfully forwarded to the inner file.
    appended: u64,
    /// A sync on this handle failed; later syncs "succeed" without
    /// advancing the durable watermark (fsyncgate).
    poisoned: bool,
}

impl WritableFile for FaultWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        match self
            .shared
            .decide(FaultOp::Write, &self.path, Some(self.epoch))?
        {
            None => {
                self.inner.append(data)?;
                self.appended += data.len() as u64;
                Ok(())
            }
            Some(r) => {
                let keep = if data.is_empty() {
                    0
                } else {
                    (r % data.len() as u64) as usize
                };
                let _ = self.inner.append(&data[..keep]);
                self.appended += keep as u64;
                Err(Error::io(format!(
                    "fault: torn append on {} ({} of {} bytes written)",
                    self.path,
                    keep,
                    data.len()
                )))
            }
        }
    }

    fn sync(&mut self) -> Result<()> {
        if let Err(e) = self
            .shared
            .decide(FaultOp::Sync, &self.path, Some(self.epoch))
        {
            self.poisoned = true;
            return Err(e);
        }
        if self.poisoned {
            // fsyncgate: the retried fsync reports success, but the
            // watermark stays where the failed sync left it.
            return Ok(());
        }
        if let Err(e) = self.inner.sync() {
            self.poisoned = true;
            return Err(e);
        }
        let mut st = self.shared.state.lock();
        if st.epoch == self.epoch {
            st.files.insert(self.path.clone(), self.appended);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultReadable {
    inner: Arc<dyn RandomAccessFile>,
    path: String,
    shared: Arc<Shared>,
    epoch: u64,
}

impl RandomAccessFile for FaultReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        self.shared
            .decide(FaultOp::Read, &self.path, Some(self.epoch))?;
        self.inner.read_at(offset, len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for FaultEnv {
    fn new_writable(&self, path: &str, class: IoClass) -> Result<Box<dyn WritableFile>> {
        self.shared.decide(FaultOp::Open, path, None)?;
        let inner = self.shared.inner.new_writable(path, class)?;
        let mut st = self.shared.state.lock();
        st.files.insert(path.to_string(), 0);
        let epoch = st.epoch;
        drop(st);
        Ok(Box::new(FaultWritable {
            inner,
            path: path.to_string(),
            shared: self.shared.clone(),
            epoch,
            appended: 0,
            poisoned: false,
        }))
    }

    fn open_random_access(&self, path: &str, class: IoClass) -> Result<Arc<dyn RandomAccessFile>> {
        self.shared.decide(FaultOp::Open, path, None)?;
        let inner = self.shared.inner.open_random_access(path, class)?;
        let epoch = self.shared.state.lock().epoch;
        Ok(Arc::new(FaultReadable {
            inner,
            path: path.to_string(),
            shared: self.shared.clone(),
            epoch,
        }))
    }

    fn read_file(&self, path: &str, class: IoClass) -> Result<Bytes> {
        self.shared.decide(FaultOp::Read, path, None)?;
        self.shared.inner.read_file(path, class)
    }

    fn remove_file(&self, path: &str) -> Result<()> {
        self.shared.decide(FaultOp::Delete, path, None)?;
        self.shared.inner.remove_file(path)?;
        self.shared.state.lock().files.remove(path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.shared.decide(FaultOp::Rename, from, None)?;
        self.shared.inner.rename(from, to)?;
        let mut st = self.shared.state.lock();
        if let Some(synced) = st.files.remove(from) {
            st.files.insert(to.to_string(), synced);
        } else {
            st.files.remove(to);
        }
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        self.shared.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.shared.inner.file_size(path)
    }

    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>> {
        self.shared.inner.list_prefix(prefix)
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        self.shared.inner.create_dir_all(path)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.shared.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemEnv;

    fn fenv(seed: u64) -> (Arc<FaultEnv>, Arc<MemEnv>) {
        let mem = MemEnv::shared();
        (FaultEnv::wrap(mem.clone(), seed), mem)
    }

    #[test]
    fn passthrough_when_no_rules() {
        let (env, _) = fenv(1);
        let mut w = env.new_writable("f", IoClass::Wal).unwrap();
        w.append(b"hello").unwrap();
        w.sync().unwrap();
        drop(w);
        assert_eq!(&env.read_file("f", IoClass::Wal).unwrap()[..], b"hello");
        let r = env.open_random_access("f", IoClass::Wal).unwrap();
        assert_eq!(&r.read_at(1, 3).unwrap()[..], b"ell");
    }

    #[test]
    fn nth_rule_fires_exactly_once() {
        let (env, _) = fenv(2);
        env.add_rule(FaultRule {
            op: FaultOp::Write,
            path_contains: Some("wal".into()),
            trigger: Trigger::Nth(2),
            kind: FaultKind::Fail,
            one_shot: true,
        });
        let mut w = env.new_writable("wal-1", IoClass::Wal).unwrap();
        w.append(b"a").unwrap();
        assert!(w.append(b"b").is_err(), "2nd matching write fails");
        w.append(b"c").unwrap();
        // Non-matching path is untouched.
        let mut w2 = env.new_writable("other", IoClass::Other).unwrap();
        w2.append(b"x").unwrap();
    }

    #[test]
    fn probability_schedule_is_deterministic() {
        let run = |seed| {
            let (env, _) = fenv(seed);
            env.add_rule(FaultRule {
                op: FaultOp::Write,
                path_contains: None,
                trigger: Trigger::Probability(0.3),
                kind: FaultKind::Fail,
                one_shot: false,
            });
            let mut w = env.new_writable("f", IoClass::Other).unwrap();
            (0..64).map(|_| w.append(b"x").is_err()).collect::<Vec<_>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same schedule");
        assert_ne!(a, run(43), "different seed, different schedule");
        assert!(a.iter().any(|&e| e) && !a.iter().all(|&e| e));
    }

    #[test]
    fn crash_drops_unsynced_bytes_and_unsynced_files() {
        let (env, mem) = fenv(3);
        env.set_torn_tail(false);
        let mut synced = env.new_writable("db/synced", IoClass::Wal).unwrap();
        synced.append(b"durable!").unwrap();
        synced.sync().unwrap();
        synced.append(b" volatile tail").unwrap();
        let mut never = env.new_writable("db/never-synced", IoClass::Wal).unwrap();
        never.append(b"gone").unwrap();
        env.crash();
        // Crashed env rejects everything; stale handles are fenced.
        assert!(env.read_file("db/synced", IoClass::Wal).is_err());
        assert!(synced.append(b"zombie").is_err());
        assert!(never.sync().is_err());
        drop(synced);
        drop(never);
        env.heal();
        assert_eq!(
            &env.read_file("db/synced", IoClass::Wal).unwrap()[..],
            b"durable!",
            "unsynced tail dropped"
        );
        assert!(!mem.file_exists("db/never-synced"), "unsynced file gone");
        // Reopened handles work again.
        let mut w = env.new_writable("db/new", IoClass::Wal).unwrap();
        w.append(b"post-crash").unwrap();
        w.sync().unwrap();
    }

    #[test]
    fn torn_tail_keeps_a_prefix_of_the_unsynced_bytes() {
        let (env, _) = fenv(7);
        env.set_torn_tail(true);
        let mut w = env.new_writable("f", IoClass::Wal).unwrap();
        w.append(b"AAAA").unwrap();
        w.sync().unwrap();
        w.append(&[b'B'; 1000]).unwrap();
        env.crash();
        drop(w);
        env.heal();
        let d = env.read_file("f", IoClass::Wal).unwrap();
        assert!(d.len() >= 4 && d.len() <= 1004);
        assert_eq!(&d[..4], b"AAAA", "synced prefix always survives");
        assert!(d[4..].iter().all(|&b| b == b'B'));
    }

    #[test]
    fn torn_append_writes_partial_prefix() {
        let (env, _) = fenv(11);
        env.add_rule(FaultRule {
            op: FaultOp::Write,
            path_contains: None,
            trigger: Trigger::Nth(2),
            kind: FaultKind::Torn,
            one_shot: true,
        });
        let mut w = env.new_writable("f", IoClass::Wal).unwrap();
        w.append(b"first").unwrap();
        assert!(w.append(&[b'X'; 100]).is_err());
        w.sync().unwrap();
        let d = env.read_file("f", IoClass::Wal).unwrap();
        assert!(d.len() >= 5 && d.len() < 105, "partial tail: {}", d.len());
        assert_eq!(&d[..5], b"first");
    }

    #[test]
    fn fsyncgate_failed_sync_freezes_the_watermark() {
        let (env, _) = fenv(13);
        env.set_torn_tail(false);
        env.add_rule(FaultRule {
            op: FaultOp::Sync,
            path_contains: None,
            trigger: Trigger::Nth(2),
            kind: FaultKind::Fail,
            one_shot: true,
        });
        let mut w = env.new_writable("f", IoClass::Wal).unwrap();
        w.append(b"good").unwrap();
        w.sync().unwrap();
        w.append(b" lost").unwrap();
        assert!(w.sync().is_err(), "injected sync failure");
        w.append(b" also lost").unwrap();
        // The retried sync "succeeds" — but durability is gone.
        w.sync().unwrap();
        env.crash();
        drop(w);
        env.heal();
        assert_eq!(
            &env.read_file("f", IoClass::Wal).unwrap()[..],
            b"good",
            "bytes after the failed fsync never became durable"
        );
    }

    #[test]
    fn crash_after_ops_fires_and_counts() {
        let (env, _) = fenv(17);
        env.set_torn_tail(false);
        let mut w = env.new_writable("f", IoClass::Wal).unwrap(); // op 1
        w.append(b"a").unwrap(); // op 2
        w.sync().unwrap(); // op 3
        env.crash_after_ops(2);
        w.append(b"b").unwrap(); // op 4
        assert!(w.append(b"c").is_err(), "op 5 hits the crash point");
        assert!(env.crashed());
        env.heal();
        assert_eq!(&env.read_file("f", IoClass::Wal).unwrap()[..], b"a");
    }

    #[test]
    fn crash_rule_triggers_power_loss_on_matching_op() {
        let (env, _) = fenv(19);
        env.set_torn_tail(false);
        env.add_rule(FaultRule {
            op: FaultOp::Sync,
            path_contains: Some("MANIFEST".into()),
            trigger: Trigger::Nth(1),
            kind: FaultKind::Crash,
            one_shot: true,
        });
        let mut wal = env.new_writable("db/1.log", IoClass::Wal).unwrap();
        wal.append(b"w").unwrap();
        wal.sync().unwrap();
        let mut m = env
            .new_writable("db/MANIFEST-2", IoClass::Manifest)
            .unwrap();
        m.append(b"edit").unwrap();
        assert!(m.sync().is_err(), "crash fires on the manifest sync");
        assert!(env.crashed());
        drop(m);
        drop(wal);
        env.heal();
        assert_eq!(&env.read_file("db/1.log", IoClass::Wal).unwrap()[..], b"w");
        assert!(
            !env.file_exists("db/MANIFEST-2"),
            "never-synced manifest dropped"
        );
    }

    #[test]
    fn rename_transfers_durability() {
        let (env, _) = fenv(23);
        env.set_torn_tail(false);
        let mut w = env.new_writable("tmp", IoClass::Other).unwrap();
        w.append(b"meta").unwrap();
        w.sync().unwrap();
        drop(w);
        env.rename("tmp", "SHARDS").unwrap();
        env.crash();
        env.heal();
        assert_eq!(
            &env.read_file("SHARDS", IoClass::Other).unwrap()[..],
            b"meta"
        );
        assert!(!env.file_exists("tmp"));
    }
}
