//! In-memory environment with byte-accurate I/O accounting and fault hooks.
//!
//! `MemEnv` is the experimental substrate for every figure in the paper
//! reproduction: it is deterministic, fast, and counts exactly the bytes
//! each engine design moves. Fault-injection helpers (`truncate_file`,
//! `corrupt_byte`) support the crash-recovery and corruption tests.

use crate::io_stats::{IoClass, IoStats};
use crate::{Env, RandomAccessFile, WritableFile};
use bytes::Bytes;
use parking_lot::RwLock;
use scavenger_util::{Error, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Default)]
struct MemFile {
    data: RwLock<Vec<u8>>,
}

/// An in-memory filesystem. Paths are plain strings; directories are
/// implicit (any prefix works with [`Env::list_prefix`]).
pub struct MemEnv {
    files: RwLock<BTreeMap<String, Arc<MemFile>>>,
    stats: Arc<IoStats>,
}

impl Default for MemEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl MemEnv {
    /// Create an empty in-memory filesystem.
    pub fn new() -> Self {
        MemEnv {
            files: RwLock::new(BTreeMap::new()),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Create an empty in-memory filesystem wrapped in an `Arc`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn get(&self, path: &str) -> Result<Arc<MemFile>> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("mem file {path}")))
    }

    /// Fault injection: truncate a file to `len` bytes (simulates a torn
    /// write at crash time).
    pub fn truncate_file(&self, path: &str, len: u64) -> Result<()> {
        let f = self.get(path)?;
        let mut d = f.data.write();
        if (len as usize) < d.len() {
            d.truncate(len as usize);
        }
        Ok(())
    }

    /// Fault injection: flip one byte at `offset`.
    pub fn corrupt_byte(&self, path: &str, offset: u64) -> Result<()> {
        let f = self.get(path)?;
        let mut d = f.data.write();
        let i = offset as usize;
        if i >= d.len() {
            return Err(Error::invalid_argument("corrupt offset past end"));
        }
        d[i] ^= 0xff;
        Ok(())
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }
}

/// Write-buffer size: appends accumulate and are charged to the device in
/// buffer-sized operations, like an OS page cache in front of an SSD.
const WRITE_BUFFER: usize = 64 * 1024;

struct MemWritable {
    file: Arc<MemFile>,
    buf: Vec<u8>,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl MemWritable {
    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.file.data.write().extend_from_slice(&self.buf);
        self.stats.record_write(self.class, self.buf.len() as u64);
        self.buf.clear();
    }
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= WRITE_BUFFER {
            self.flush_buf();
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.flush_buf();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.file.data.read().len() as u64 + self.buf.len() as u64
    }
}

impl Drop for MemWritable {
    fn drop(&mut self) {
        self.flush_buf();
    }
}

struct MemReadable {
    file: Arc<MemFile>,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl RandomAccessFile for MemReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        let d = self.file.data.read();
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .ok_or_else(|| Error::corruption("read range overflow"))?;
        if end > d.len() {
            return Err(Error::corruption(format!(
                "read past eof: {}..{} of {}",
                start,
                end,
                d.len()
            )));
        }
        self.stats.record_read(self.class, len as u64);
        Ok(Bytes::copy_from_slice(&d[start..end]))
    }

    fn len(&self) -> u64 {
        self.file.data.read().len() as u64
    }
}

impl Env for MemEnv {
    fn new_writable(&self, path: &str, class: IoClass) -> Result<Box<dyn WritableFile>> {
        let file = Arc::new(MemFile::default());
        self.files.write().insert(path.to_string(), file.clone());
        Ok(Box::new(MemWritable {
            file,
            buf: Vec::with_capacity(WRITE_BUFFER),
            stats: self.stats.clone(),
            class,
        }))
    }

    fn open_random_access(&self, path: &str, class: IoClass) -> Result<Arc<dyn RandomAccessFile>> {
        let file = self.get(path)?;
        Ok(Arc::new(MemReadable {
            file,
            stats: self.stats.clone(),
            class,
        }))
    }

    fn read_file(&self, path: &str, class: IoClass) -> Result<Bytes> {
        let f = self.get(path)?;
        let d = f.data.read();
        self.stats.record_read(class, d.len() as u64);
        Ok(Bytes::copy_from_slice(&d))
    }

    fn remove_file(&self, path: &str) -> Result<()> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| Error::not_found(format!("remove {path}")))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut files = self.files.write();
        let f = files
            .remove(from)
            .ok_or_else(|| Error::not_found(format!("rename from {from}")))?;
        files.insert(to.to_string(), f);
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        Ok(self.get(path)?.data.read().len() as u64)
    }

    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .files
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn create_dir_all(&self, _path: &str) -> Result<()> {
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn env() -> MemEnv {
        MemEnv::new()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_buffered_appends_preserve_content(
            chunks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40_000), 1..8),
        ) {
            let e = env();
            let mut w = e.new_writable("f", IoClass::Other).unwrap();
            let mut expected = Vec::new();
            for c in &chunks {
                w.append(c).unwrap();
                expected.extend_from_slice(c);
                prop_assert_eq!(w.len(), expected.len() as u64);
            }
            w.sync().unwrap();
            let got = e.read_file("f", IoClass::Other).unwrap();
            prop_assert_eq!(&got[..], expected.as_slice());
            // Reads at arbitrary offsets agree.
            if !expected.is_empty() {
                let r = e.open_random_access("f", IoClass::Other).unwrap();
                let mid = expected.len() / 2;
                let part = r.read_at(mid as u64, expected.len() - mid).unwrap();
                prop_assert_eq!(&part[..], &expected[mid..]);
            }
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let e = env();
        let mut w = e.new_writable("dir/a.sst", IoClass::Flush).unwrap();
        w.append(b"hello ").unwrap();
        w.append(b"world").unwrap();
        assert_eq!(w.len(), 11);
        drop(w);

        let r = e
            .open_random_access("dir/a.sst", IoClass::FgIndexRead)
            .unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(&r.read_at(0, 5).unwrap()[..], b"hello");
        assert_eq!(&r.read_at(6, 5).unwrap()[..], b"world");
    }

    #[test]
    fn read_past_eof_is_corruption() {
        let e = env();
        let mut w = e.new_writable("f", IoClass::Other).unwrap();
        w.append(b"abc").unwrap();
        let r = e.open_random_access("f", IoClass::Other).unwrap();
        assert!(r.read_at(1, 5).is_err());
        assert!(r.read_at(4, 1).is_err());
    }

    #[test]
    fn io_is_accounted_to_class() {
        let e = env();
        let mut w = e.new_writable("f", IoClass::GcWrite).unwrap();
        w.append(&[0u8; 128]).unwrap();
        w.sync().unwrap(); // flush the write buffer so the charge lands
        let r = e.open_random_access("f", IoClass::GcRead).unwrap();
        r.read_at(0, 64).unwrap();
        let snap = e.io_stats().snapshot();
        assert_eq!(snap.class(IoClass::GcWrite).write_bytes, 128);
        assert_eq!(snap.class(IoClass::GcRead).read_bytes, 64);
        assert_eq!(snap.class(IoClass::GcRead).read_ops, 1);
    }

    #[test]
    fn list_prefix_and_total_bytes() {
        let e = env();
        for (name, len) in [
            ("db/000001.sst", 10usize),
            ("db/000002.vsst", 20),
            ("other/x", 5),
        ] {
            let mut w = e.new_writable(name, IoClass::Other).unwrap();
            w.append(&vec![0u8; len]).unwrap();
        }
        let listed = e.list_prefix("db/").unwrap();
        assert_eq!(
            listed,
            vec!["db/000001.sst".to_string(), "db/000002.vsst".to_string()]
        );
        assert_eq!(e.total_file_bytes("db/").unwrap(), 30);
        assert_eq!(e.total_file_bytes("other/").unwrap(), 5);
    }

    #[test]
    fn rename_moves_file_atomically() {
        let e = env();
        let mut w = e.new_writable("tmp", IoClass::Manifest).unwrap();
        w.append(b"MANIFEST-1").unwrap();
        drop(w);
        e.rename("tmp", "CURRENT").unwrap();
        assert!(!e.file_exists("tmp"));
        assert_eq!(
            &e.read_file("CURRENT", IoClass::Manifest).unwrap()[..],
            b"MANIFEST-1"
        );
    }

    #[test]
    fn remove_missing_is_not_found() {
        let e = env();
        assert!(e.remove_file("nope").unwrap_err().is_not_found());
    }

    #[test]
    fn truncate_and_corrupt_faults() {
        let e = env();
        let mut w = e.new_writable("f", IoClass::Wal).unwrap();
        w.append(b"0123456789").unwrap();
        drop(w);
        e.truncate_file("f", 4).unwrap();
        assert_eq!(e.file_size("f").unwrap(), 4);
        e.corrupt_byte("f", 0).unwrap();
        let d = e.read_file("f", IoClass::Other).unwrap();
        assert_eq!(d[0], b'0' ^ 0xff);
        assert!(e.corrupt_byte("f", 100).is_err());
    }

    #[test]
    fn buffered_writes_charge_in_buffer_sized_ops() {
        let e = env();
        let mut w = e.new_writable("f", IoClass::Flush).unwrap();
        // 1000 tiny appends totalling ~195 KiB: expect ~3-4 device ops,
        // not 1000.
        for _ in 0..1000 {
            w.append(&[7u8; 200]).unwrap();
        }
        w.sync().unwrap();
        let snap = e.io_stats().snapshot();
        let c = snap.class(IoClass::Flush);
        assert_eq!(c.write_bytes, 200_000);
        assert!(c.write_ops <= 5, "ops {} should be buffered", c.write_ops);
    }

    #[test]
    fn overwrite_truncates_existing() {
        let e = env();
        let mut w = e.new_writable("f", IoClass::Other).unwrap();
        w.append(b"long content").unwrap();
        drop(w);
        let w2 = e.new_writable("f", IoClass::Other).unwrap();
        assert_eq!(w2.len(), 0);
    }
}
