//! Storage environment abstraction for the Scavenger engine.
//!
//! Everything the engine persists flows through an [`Env`]:
//!
//! * [`MemEnv`] — an in-memory filesystem that counts every
//!   byte and operation per [`IoClass`]. This is the substrate for all
//!   experiments: the paper's testbed (a 500 GB KIOXIA NVMe SSD) is
//!   replaced by exact I/O accounting plus a calibrated
//!   [`DeviceModel`] that converts the counters into
//!   simulated seconds.
//! * [`FsEnv`] — a thin `std::fs` implementation for running the
//!   engine against a real filesystem.
//! * [`FaultEnv`] — a deterministic, seeded fault-injection wrapper over
//!   any env: injected errors, torn appends, fsyncgate semantics, and
//!   power-loss crash simulation for the recovery test harness.
//! * [`MeteredEnv`] — a transparent wrapper charging all I/O through it
//!   to a private counter set; the sharded engine uses one per shard so
//!   I/O can be attributed shard-by-shard instead of env-globally.
//! * [`UsageEnv`] — a transparent wrapper maintaining a live
//!   [`SpaceTracker`] byte counter per file prefix, so the §III-D space
//!   throttle admits writes with one atomic load instead of an O(files)
//!   directory walk.
//!
//! The trait surface is deliberately small (append-only writable files,
//! positional reads, whole-file reads, rename/remove/list) — exactly what
//! an LSM-tree needs and nothing more.

pub mod device;
pub mod fault;
pub mod fs;
pub mod io_stats;
pub mod mem;
pub mod metered;
pub mod usage;

use bytes::Bytes;
use scavenger_util::Result;
use std::sync::Arc;

pub use device::DeviceModel;
pub use fault::{FaultEnv, FaultKind, FaultOp, FaultRule, Trigger};
pub use fs::FsEnv;
pub use io_stats::{IoClass, IoStats, IoStatsSnapshot};
pub use mem::MemEnv;
pub use metered::MeteredEnv;
pub use usage::{SpaceTracker, UsageEnv};

/// An append-only file being written (WAL, SST under construction, manifest).
pub trait WritableFile: Send {
    /// Append bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Durably persist buffered data. A no-op for [`MemEnv`].
    fn sync(&mut self) -> Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> u64;
    /// True if nothing has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A completed file open for positional reads (SSTs, value files).
pub trait RandomAccessFile: Send + Sync {
    /// Read exactly `len` bytes starting at `offset`.
    ///
    /// Returns [`Corruption`](scavenger_util::Error::Corruption) if the
    /// range extends past the end of the file.
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes>;
    /// Total file length in bytes.
    fn len(&self) -> u64;
    /// True if the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The storage environment.
pub trait Env: Send + Sync {
    /// Create (or truncate) a file for appending. All I/O through the
    /// returned handle is accounted to `class`.
    fn new_writable(&self, path: &str, class: IoClass) -> Result<Box<dyn WritableFile>>;

    /// Open an existing file for positional reads, accounted to `class`.
    fn open_random_access(&self, path: &str, class: IoClass) -> Result<Arc<dyn RandomAccessFile>>;

    /// Read an entire file into memory (used for WAL/manifest recovery).
    fn read_file(&self, path: &str, class: IoClass) -> Result<Bytes>;

    /// Delete a file.
    fn remove_file(&self, path: &str) -> Result<()>;

    /// Atomically rename a file (used for the CURRENT pointer swap).
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// True if the file exists.
    fn file_exists(&self, path: &str) -> bool;

    /// Size of a file in bytes.
    fn file_size(&self, path: &str) -> Result<u64>;

    /// List file paths that start with `prefix`.
    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>>;

    /// Create a directory and parents. A no-op for [`MemEnv`].
    fn create_dir_all(&self, path: &str) -> Result<()>;

    /// Shared I/O statistics for this environment.
    fn io_stats(&self) -> Arc<IoStats>;

    /// Sum of the sizes of all files under `prefix` — the engine's total
    /// space footprint, the numerator of space amplification.
    fn total_file_bytes(&self, prefix: &str) -> Result<u64> {
        let mut total = 0;
        for f in self.list_prefix(prefix)? {
            total += self.file_size(&f)?;
        }
        Ok(total)
    }
}

/// A dynamic, shareable environment handle.
pub type EnvRef = Arc<dyn Env>;
