//! Incremental space-usage accounting: an [`Env`] wrapper that keeps a
//! live byte counter for every file under a prefix.
//!
//! The §III-D space throttle admits every write against the store's
//! total on-disk footprint. Computing that footprint with
//! [`Env::total_file_bytes`] walks the directory — O(files) per write
//! admission, and the file count grows with the store. A [`UsageEnv`]
//! replaces the walk with bookkeeping at the mutation points the trait
//! already funnels through: file creation, appends, removal, and rename
//! each adjust a per-file size map and a running total, so
//! [`SpaceTracker::total`] is a single atomic load.
//!
//! The tracker is seeded with one walk at wrap time (reopen of an
//! existing store) and stays exact afterwards for everything written
//! *through* the wrapper — which is every file the engine creates,
//! including WAL segments retained for change-data-capture catch-up.
//! `exclude` sub-prefixes let a sharded store's root wrapper skip the
//! shard directories that carry their own trackers.

use crate::io_stats::{IoClass, IoStats};
use crate::{Env, EnvRef, RandomAccessFile, WritableFile};
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_util::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live byte accounting for the files under one prefix. Shared between
/// the [`UsageEnv`] that maintains it and the engine that reads it on
/// every write admission.
pub struct SpaceTracker {
    prefix: String,
    exclude: Vec<String>,
    total: AtomicU64,
    files: Mutex<HashMap<String, u64>>,
}

impl SpaceTracker {
    /// Current total bytes across tracked files — O(1), no directory
    /// walk.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of files currently tracked.
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }

    fn tracked(&self, path: &str) -> bool {
        path.starts_with(&self.prefix) && !self.exclude.iter().any(|e| path.starts_with(e))
    }

    fn set(&self, path: &str, len: u64) {
        let mut files = self.files.lock();
        let old = files.insert(path.to_string(), len).unwrap_or(0);
        if len >= old {
            self.total.fetch_add(len - old, Ordering::Relaxed);
        } else {
            self.total.fetch_sub(old - len, Ordering::Relaxed);
        }
    }

    fn add(&self, path: &str, delta: u64) {
        let mut files = self.files.lock();
        *files.entry(path.to_string()).or_insert(0) += delta;
        self.total.fetch_add(delta, Ordering::Relaxed);
    }

    fn remove(&self, path: &str) {
        if let Some(old) = self.files.lock().remove(path) {
            self.total.fetch_sub(old, Ordering::Relaxed);
        }
    }

    fn rename(&self, from: &str, to: &str, to_tracked: bool) {
        let mut files = self.files.lock();
        let moved = files.remove(from);
        if let Some(len) = moved {
            if to_tracked {
                let old = files.insert(to.to_string(), len).unwrap_or(0);
                self.total.fetch_sub(old, Ordering::Relaxed);
            } else {
                self.total.fetch_sub(len, Ordering::Relaxed);
            }
        } else if to_tracked {
            // Renamed in from outside the tracked set: size unknown
            // until re-stated; record zero so removal stays balanced.
            let old = files.insert(to.to_string(), 0).unwrap_or(0);
            self.total.fetch_sub(old, Ordering::Relaxed);
        }
    }
}

/// An [`Env`] wrapper maintaining a [`SpaceTracker`] for one prefix.
pub struct UsageEnv {
    inner: EnvRef,
    tracker: Arc<SpaceTracker>,
}

impl UsageEnv {
    /// Wrap `inner`, tracking every file under `prefix`. Seeds the
    /// counter with one directory walk (the last one the store will
    /// ever do on its admission path).
    pub fn wrap(inner: EnvRef, prefix: &str) -> Result<(EnvRef, Arc<SpaceTracker>)> {
        Self::wrap_excluding(inner, prefix, Vec::new())
    }

    /// Like [`UsageEnv::wrap`], but paths under any of `exclude` are
    /// ignored — used by a sharded store's root env so shard
    /// directories stay with their own per-shard trackers.
    pub fn wrap_excluding(
        inner: EnvRef,
        prefix: &str,
        exclude: Vec<String>,
    ) -> Result<(EnvRef, Arc<SpaceTracker>)> {
        let tracker = Arc::new(SpaceTracker {
            prefix: prefix.to_string(),
            exclude,
            total: AtomicU64::new(0),
            files: Mutex::new(HashMap::new()),
        });
        for path in inner.list_prefix(prefix)? {
            if !tracker.tracked(&path) {
                continue;
            }
            let len = inner.file_size(&path).unwrap_or(0);
            tracker.set(&path, len);
        }
        let env: EnvRef = Arc::new(UsageEnv {
            inner,
            tracker: tracker.clone(),
        });
        Ok((env, tracker))
    }

    /// The tracker maintained by this wrapper.
    pub fn tracker(&self) -> Arc<SpaceTracker> {
        self.tracker.clone()
    }
}

struct TrackedWritable {
    inner: Box<dyn WritableFile>,
    tracker: Arc<SpaceTracker>,
    path: String,
}

impl WritableFile for TrackedWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.inner.append(data)?;
        self.tracker.add(&self.path, data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for UsageEnv {
    fn new_writable(&self, path: &str, class: IoClass) -> Result<Box<dyn WritableFile>> {
        let inner = self.inner.new_writable(path, class)?;
        if !self.tracker.tracked(path) {
            return Ok(inner);
        }
        // Creation truncates: any prior contents are gone.
        self.tracker.set(path, 0);
        Ok(Box::new(TrackedWritable {
            inner,
            tracker: self.tracker.clone(),
            path: path.to_string(),
        }))
    }

    fn open_random_access(&self, path: &str, class: IoClass) -> Result<Arc<dyn RandomAccessFile>> {
        self.inner.open_random_access(path, class)
    }

    fn read_file(&self, path: &str, class: IoClass) -> Result<Bytes> {
        self.inner.read_file(path, class)
    }

    fn remove_file(&self, path: &str) -> Result<()> {
        self.inner.remove_file(path)?;
        if self.tracker.tracked(path) {
            self.tracker.remove(path);
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)?;
        let from_tracked = self.tracker.tracked(from);
        let to_tracked = self.tracker.tracked(to);
        if from_tracked || to_tracked {
            self.tracker.rename(from, to, to_tracked);
            if to_tracked && !from_tracked {
                // Size unknown from bookkeeping alone; one stat call.
                let len = self.inner.file_size(to).unwrap_or(0);
                self.tracker.set(to, len);
            }
        }
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.inner.file_size(path)
    }

    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list_prefix(prefix)
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        self.inner.create_dir_all(path)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEnv;

    fn write(env: &EnvRef, path: &str, n: usize) {
        let mut f = env.new_writable(path, IoClass::Flush).unwrap();
        f.append(&vec![7u8; n]).unwrap();
        f.sync().unwrap();
    }

    #[test]
    fn counter_tracks_create_append_remove_rename() {
        let base = MemEnv::shared();
        let (env, t) = UsageEnv::wrap(base.clone(), "db").unwrap();
        assert_eq!(t.total(), 0);

        write(&env, "db/000001.sst", 100);
        write(&env, "db/000002.log", 40);
        assert_eq!(t.total(), 140);
        assert_eq!(t.total(), env.total_file_bytes("db").unwrap());

        env.remove_file("db/000001.sst").unwrap();
        assert_eq!(t.total(), 40);

        write(&env, "db/MANIFEST-tmp", 9);
        env.rename("db/MANIFEST-tmp", "db/CURRENT").unwrap();
        assert_eq!(t.total(), 49);
        assert_eq!(t.total(), env.total_file_bytes("db").unwrap());

        // Recreating a file truncates: the old size must not leak.
        write(&env, "db/000002.log", 10);
        assert_eq!(t.total(), 19);
        assert_eq!(t.total(), env.total_file_bytes("db").unwrap());
    }

    #[test]
    fn untracked_prefixes_pass_through() {
        let base = MemEnv::shared();
        let (env, t) = UsageEnv::wrap(base.clone(), "db").unwrap();
        write(&env, "elsewhere/file", 64);
        assert_eq!(t.total(), 0);
        assert_eq!(env.total_file_bytes("elsewhere").unwrap(), 64);
    }

    #[test]
    fn wrap_seeds_from_existing_files() {
        let base = MemEnv::shared();
        {
            let e: EnvRef = base.clone();
            write(&e, "db/pre-existing", 77);
        }
        let (_env, t) = UsageEnv::wrap(base.clone(), "db").unwrap();
        assert_eq!(t.total(), 77);
    }

    #[test]
    fn exclusions_are_left_to_their_own_trackers() {
        let base = MemEnv::shared();
        {
            let e: EnvRef = base.clone();
            write(&e, "root/shard-0/f", 50);
            write(&e, "root/SHARDS", 8);
        }
        let (env, t) =
            UsageEnv::wrap_excluding(base.clone(), "root", vec!["root/shard-0".into()]).unwrap();
        assert_eq!(t.total(), 8);
        write(&env, "root/shard-0/g", 30);
        write(&env, "root/COORDLOG-1", 12);
        assert_eq!(t.total(), 20);
    }
}
