//! NVMe device cost model: converts I/O counters into simulated seconds.
//!
//! The paper's throughput numbers come from a real KIOXIA NVMe SSD. We
//! reproduce the *shape* of those results by charging each I/O operation a
//! latency and each byte a bandwidth cost:
//!
//! ```text
//! time = read_ops·lat_r + read_bytes/bw_r + write_ops·lat_w + write_bytes/bw_w
//! ```
//!
//! Small random reads (GC-Lookup misses, lazy-read index fetches, per-block
//! vSST scans with readahead disabled) are dominated by the per-op latency;
//! large sequential transfers (flush, compaction, full-file GC reads with
//! readahead) are dominated by the bandwidth term — exactly the trade-off
//! the paper's GC analysis (§II-C) revolves around.

use crate::io_stats::IoStatsSnapshot;

/// Cost parameters for a storage device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Per-read-operation latency, seconds.
    pub read_lat: f64,
    /// Per-write-operation latency, seconds.
    pub write_lat: f64,
}

impl DeviceModel {
    /// A datacenter NVMe SSD roughly calibrated to the paper's testbed
    /// (KIOXIA 500 GB NVMe): ~3 GB/s reads, ~2 GB/s writes, ~80 µs random
    /// read, ~20 µs submission overhead per write.
    pub fn nvme() -> Self {
        DeviceModel {
            read_bw: 3.0e9,
            write_bw: 2.0e9,
            read_lat: 80e-6,
            write_lat: 20e-6,
        }
    }

    /// A SATA-class SSD (for sensitivity studies): lower bandwidth, higher
    /// per-op latency.
    pub fn sata_ssd() -> Self {
        DeviceModel {
            read_bw: 0.5e9,
            write_bw: 0.45e9,
            read_lat: 120e-6,
            write_lat: 60e-6,
        }
    }

    /// Simulated seconds consumed by the I/O in `snap`.
    pub fn simulated_seconds(&self, snap: &IoStatsSnapshot) -> f64 {
        let r_ops = snap.total_read_ops() as f64;
        let r_bytes = snap.total_read_bytes() as f64;
        let w_ops = snap.total_write_ops() as f64;
        let w_bytes = snap.total_write_bytes() as f64;
        r_ops * self.read_lat
            + r_bytes / self.read_bw
            + w_ops * self.write_lat
            + w_bytes / self.write_bw
    }

    /// Simulated throughput in bytes/second for `user_bytes` of foreground
    /// work that required the I/O in `snap`. Returns `f64::INFINITY` when
    /// no I/O was performed.
    pub fn simulated_throughput(&self, user_bytes: u64, snap: &IoStatsSnapshot) -> f64 {
        let secs = self.simulated_seconds(snap);
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            user_bytes as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_stats::{IoClass, IoStats};

    fn snap_with(reads: &[(u64, u64)], writes: &[(u64, u64)]) -> IoStatsSnapshot {
        let s = IoStats::new();
        for &(ops, bytes) in reads {
            for _ in 0..ops.saturating_sub(1) {
                s.record_read(IoClass::Other, 0);
            }
            if ops > 0 {
                s.record_read(IoClass::Other, bytes);
            }
        }
        for &(ops, bytes) in writes {
            for _ in 0..ops.saturating_sub(1) {
                s.record_write(IoClass::Other, 0);
            }
            if ops > 0 {
                s.record_write(IoClass::Other, bytes);
            }
        }
        s.snapshot()
    }

    #[test]
    fn zero_io_costs_nothing() {
        let m = DeviceModel::nvme();
        let snap = IoStatsSnapshot::default();
        assert_eq!(m.simulated_seconds(&snap), 0.0);
        assert_eq!(m.simulated_throughput(100, &snap), f64::INFINITY);
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = DeviceModel::nvme();
        let small = snap_with(&[(1, 1 << 20)], &[]);
        let large = snap_with(&[(1, 1 << 30)], &[]);
        let ts = m.simulated_seconds(&small);
        let tl = m.simulated_seconds(&large);
        assert!(tl > ts * 100.0, "1GB should cost far more than 1MB");
    }

    #[test]
    fn many_small_reads_cost_more_than_one_big_read() {
        // Same total bytes, 1024 ops vs 1 op: latency term dominates.
        let m = DeviceModel::nvme();
        let mut many = IoStatsSnapshot::default();
        many.classes[0].read_ops = 1024;
        many.classes[0].read_bytes = 4 << 20;
        let mut one = IoStatsSnapshot::default();
        one.classes[0].read_ops = 1;
        one.classes[0].read_bytes = 4 << 20;
        assert!(m.simulated_seconds(&many) > 10.0 * m.simulated_seconds(&one));
    }

    #[test]
    fn throughput_inversely_proportional_to_io() {
        let m = DeviceModel::nvme();
        let light = snap_with(&[], &[(1, 1 << 20)]);
        let heavy = snap_with(&[], &[(1, 10 << 20)]);
        let t_light = m.simulated_throughput(1 << 20, &light);
        let t_heavy = m.simulated_throughput(1 << 20, &heavy);
        assert!(t_light > t_heavy * 5.0);
    }

    #[test]
    fn sata_is_slower_than_nvme() {
        let snap = snap_with(&[(100, 100 << 20)], &[(100, 100 << 20)]);
        assert!(
            DeviceModel::sata_ssd().simulated_seconds(&snap)
                > DeviceModel::nvme().simulated_seconds(&snap)
        );
    }
}
