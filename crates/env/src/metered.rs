//! Per-handle I/O attribution: a transparent [`Env`] wrapper with its
//! own counters.
//!
//! A [`MeteredEnv`] delegates every operation to an inner env but
//! charges all bytes/ops flowing through it to a **private**
//! [`IoStats`] instance (the inner env keeps counting too, so an
//! env-global view stays intact). [`DbShards`] opens each shard under
//! one of these so `stats().io` reports what *that shard* did instead
//! of the env-global snapshot — the attribution the metrics endpoint
//! needs to tell a GC-heavy shard from an idle one.
//!
//! [`DbShards`]: ../scavenger/struct.DbShards.html

use crate::io_stats::{IoClass, IoStats};
use crate::{Env, EnvRef, RandomAccessFile, WritableFile};
use bytes::Bytes;
use scavenger_util::Result;
use std::sync::Arc;

/// An [`Env`] wrapper that additionally charges all I/O through it to
/// its own private [`IoStats`].
pub struct MeteredEnv {
    inner: EnvRef,
    stats: Arc<IoStats>,
}

impl MeteredEnv {
    /// Wrap `inner`, charging I/O through the returned env to a fresh
    /// private counter set (plus whatever the inner env records itself).
    pub fn new(inner: EnvRef) -> MeteredEnv {
        MeteredEnv {
            inner,
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The wrapped env.
    pub fn inner(&self) -> &EnvRef {
        &self.inner
    }
}

struct MeteredWritable {
    inner: Box<dyn WritableFile>,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl WritableFile for MeteredWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.inner.append(data)?;
        self.stats.record_write(self.class, data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct MeteredReadable {
    inner: Arc<dyn RandomAccessFile>,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl RandomAccessFile for MeteredReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        let data = self.inner.read_at(offset, len)?;
        self.stats.record_read(self.class, data.len() as u64);
        Ok(data)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for MeteredEnv {
    fn new_writable(&self, path: &str, class: IoClass) -> Result<Box<dyn WritableFile>> {
        Ok(Box::new(MeteredWritable {
            inner: self.inner.new_writable(path, class)?,
            stats: self.stats.clone(),
            class,
        }))
    }

    fn open_random_access(&self, path: &str, class: IoClass) -> Result<Arc<dyn RandomAccessFile>> {
        Ok(Arc::new(MeteredReadable {
            inner: self.inner.open_random_access(path, class)?,
            stats: self.stats.clone(),
            class,
        }))
    }

    fn read_file(&self, path: &str, class: IoClass) -> Result<Bytes> {
        let data = self.inner.read_file(path, class)?;
        self.stats.record_read(class, data.len() as u64);
        Ok(data)
    }

    fn remove_file(&self, path: &str) -> Result<()> {
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.inner.file_size(path)
    }

    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list_prefix(prefix)
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        self.inner.create_dir_all(path)
    }

    /// The **private** counters: only I/O performed through this
    /// wrapper, not the env-global totals of the wrapped env.
    fn io_stats(&self) -> Arc<IoStats> {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEnv;

    #[test]
    fn wrapper_attributes_io_without_hiding_global_counters() {
        let base = MemEnv::shared();
        let a: EnvRef = Arc::new(MeteredEnv::new(base.clone()));
        let b: EnvRef = Arc::new(MeteredEnv::new(base.clone()));

        {
            let mut f = a.new_writable("x/wal-1", IoClass::Wal).unwrap();
            f.append(&[0u8; 100]).unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = b.new_writable("y/wal-1", IoClass::Wal).unwrap();
            f.append(&[0u8; 40]).unwrap();
        }
        let _ = a.read_file("x/wal-1", IoClass::Wal).unwrap();

        let sa = a.io_stats().snapshot();
        let sb = b.io_stats().snapshot();
        assert_eq!(sa.class(IoClass::Wal).write_bytes, 100);
        assert_eq!(sa.class(IoClass::Wal).read_bytes, 100);
        assert_eq!(sb.class(IoClass::Wal).write_bytes, 40);
        assert_eq!(sb.class(IoClass::Wal).read_bytes, 0);
        // The inner env still sees everything.
        let global = base.io_stats().snapshot();
        assert_eq!(global.class(IoClass::Wal).write_bytes, 140);
    }

    #[test]
    fn positional_reads_are_charged_to_the_opening_class() {
        let base = MemEnv::shared();
        let env: EnvRef = Arc::new(MeteredEnv::new(base));
        {
            let mut f = env.new_writable("f/v-1", IoClass::GcWrite).unwrap();
            f.append(&[7u8; 64]).unwrap();
        }
        let r = env.open_random_access("f/v-1", IoClass::GcRead).unwrap();
        let got = r.read_at(16, 32).unwrap();
        assert_eq!(got.len(), 32);
        assert_eq!(r.len(), 64);
        let s = env.io_stats().snapshot();
        assert_eq!(s.class(IoClass::GcRead).read_bytes, 32);
        assert_eq!(s.class(IoClass::GcRead).read_ops, 1);
        assert_eq!(s.class(IoClass::GcWrite).write_bytes, 64);
    }
}
