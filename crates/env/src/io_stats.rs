//! Per-class I/O accounting.
//!
//! Every file handle is opened under an [`IoClass`]; all bytes and
//! operations through that handle are charged to the class. The classes
//! mirror the paper's instrumentation: foreground reads, WAL, flush,
//! compaction (read/write), and — the stars of Figure 12(c) — GC read and
//! GC write.

use std::sync::atomic::{AtomicU64, Ordering};

/// What a piece of I/O was performed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum IoClass {
    /// Write-ahead-log appends.
    Wal = 0,
    /// Memtable flush writes (kSST and vSST creation at flush time).
    Flush = 1,
    /// Index LSM-tree compaction reads and writes.
    Compaction = 2,
    /// Garbage-collection reads (vSST scans / lazy index reads / value fetch).
    GcRead = 3,
    /// Garbage-collection writes (rewriting valid values).
    GcWrite = 4,
    /// Foreground point/range reads of index SSTs.
    FgIndexRead = 5,
    /// Foreground value fetches from the value store.
    FgValueRead = 6,
    /// Manifest / CURRENT maintenance.
    Manifest = 7,
    /// Anything else.
    Other = 8,
}

/// Number of I/O classes.
pub const NUM_IO_CLASSES: usize = 9;

/// All classes, in index order.
pub const ALL_IO_CLASSES: [IoClass; NUM_IO_CLASSES] = [
    IoClass::Wal,
    IoClass::Flush,
    IoClass::Compaction,
    IoClass::GcRead,
    IoClass::GcWrite,
    IoClass::FgIndexRead,
    IoClass::FgValueRead,
    IoClass::Manifest,
    IoClass::Other,
];

impl IoClass {
    /// Short human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            IoClass::Wal => "wal",
            IoClass::Flush => "flush",
            IoClass::Compaction => "compaction",
            IoClass::GcRead => "gc-read",
            IoClass::GcWrite => "gc-write",
            IoClass::FgIndexRead => "fg-index-read",
            IoClass::FgValueRead => "fg-value-read",
            IoClass::Manifest => "manifest",
            IoClass::Other => "other",
        }
    }
}

#[derive(Default)]
struct ClassCounters {
    read_bytes: AtomicU64,
    read_ops: AtomicU64,
    write_bytes: AtomicU64,
    write_ops: AtomicU64,
}

/// Thread-safe I/O counters, one set per [`IoClass`].
#[derive(Default)]
pub struct IoStats {
    classes: [ClassCounters; NUM_IO_CLASSES],
}

impl IoStats {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a read of `bytes` to `class`.
    pub fn record_read(&self, class: IoClass, bytes: u64) {
        let c = &self.classes[class as usize];
        c.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        c.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge a write of `bytes` to `class`.
    pub fn record_write(&self, class: IoClass, bytes: u64) {
        let c = &self.classes[class as usize];
        c.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        c.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let mut snap = IoStatsSnapshot::default();
        for (i, c) in self.classes.iter().enumerate() {
            snap.classes[i] = ClassSnapshot {
                read_bytes: c.read_bytes.load(Ordering::Relaxed),
                read_ops: c.read_ops.load(Ordering::Relaxed),
                write_bytes: c.write_bytes.load(Ordering::Relaxed),
                write_ops: c.write_ops.load(Ordering::Relaxed),
            };
        }
        snap
    }
}

/// Counters for one class at a point in time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClassSnapshot {
    /// Bytes read.
    pub read_bytes: u64,
    /// Read operations.
    pub read_ops: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Write operations.
    pub write_ops: u64,
}

/// A point-in-time copy of [`IoStats`], supporting deltas and totals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Per-class counters, indexed by `IoClass as usize`.
    pub classes: [ClassSnapshot; NUM_IO_CLASSES],
}

impl IoStatsSnapshot {
    /// Counters for one class.
    pub fn class(&self, c: IoClass) -> ClassSnapshot {
        self.classes[c as usize]
    }

    /// `self - earlier`, per class (saturating).
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        let mut out = IoStatsSnapshot::default();
        for i in 0..NUM_IO_CLASSES {
            out.classes[i] = ClassSnapshot {
                read_bytes: self.classes[i]
                    .read_bytes
                    .saturating_sub(earlier.classes[i].read_bytes),
                read_ops: self.classes[i]
                    .read_ops
                    .saturating_sub(earlier.classes[i].read_ops),
                write_bytes: self.classes[i]
                    .write_bytes
                    .saturating_sub(earlier.classes[i].write_bytes),
                write_ops: self.classes[i]
                    .write_ops
                    .saturating_sub(earlier.classes[i].write_ops),
            };
        }
        out
    }

    /// Add `other`'s per-class counters into `self` — used by the
    /// sharded engine to fold per-shard metered snapshots into one
    /// set-wide view.
    pub fn accumulate(&mut self, other: &IoStatsSnapshot) {
        for i in 0..NUM_IO_CLASSES {
            let ClassSnapshot {
                read_bytes,
                read_ops,
                write_bytes,
                write_ops,
            } = other.classes[i];
            self.classes[i].read_bytes += read_bytes;
            self.classes[i].read_ops += read_ops;
            self.classes[i].write_bytes += write_bytes;
            self.classes[i].write_ops += write_ops;
        }
    }

    /// Total bytes read across all classes.
    pub fn total_read_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.read_bytes).sum()
    }

    /// Total bytes written across all classes.
    pub fn total_write_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.write_bytes).sum()
    }

    /// Total read operations across all classes.
    pub fn total_read_ops(&self) -> u64 {
        self.classes.iter().map(|c| c.read_ops).sum()
    }

    /// Total write operations across all classes.
    pub fn total_write_ops(&self) -> u64 {
        self.classes.iter().map(|c| c.write_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_class() {
        let s = IoStats::new();
        s.record_read(IoClass::GcRead, 100);
        s.record_read(IoClass::GcRead, 50);
        s.record_write(IoClass::GcWrite, 70);
        let snap = s.snapshot();
        assert_eq!(snap.class(IoClass::GcRead).read_bytes, 150);
        assert_eq!(snap.class(IoClass::GcRead).read_ops, 2);
        assert_eq!(snap.class(IoClass::GcWrite).write_bytes, 70);
        assert_eq!(snap.class(IoClass::GcWrite).write_ops, 1);
        assert_eq!(snap.class(IoClass::Flush).write_bytes, 0);
    }

    #[test]
    fn totals_sum_all_classes() {
        let s = IoStats::new();
        s.record_read(IoClass::Compaction, 10);
        s.record_read(IoClass::FgIndexRead, 5);
        s.record_write(IoClass::Wal, 7);
        let snap = s.snapshot();
        assert_eq!(snap.total_read_bytes(), 15);
        assert_eq!(snap.total_write_bytes(), 7);
        assert_eq!(snap.total_read_ops(), 2);
        assert_eq!(snap.total_write_ops(), 1);
    }

    #[test]
    fn delta_subtracts_baseline() {
        let s = IoStats::new();
        s.record_write(IoClass::Flush, 100);
        let before = s.snapshot();
        s.record_write(IoClass::Flush, 25);
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.class(IoClass::Flush).write_bytes, 25);
        assert_eq!(d.class(IoClass::Flush).write_ops, 1);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = std::sync::Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s2 = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s2.record_read(IoClass::FgValueRead, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().class(IoClass::FgValueRead).read_ops, 8000);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_IO_CLASSES {
            assert!(seen.insert(c.label()));
        }
    }
}
