//! Real-filesystem environment backed by `std::fs`.
//!
//! Used by the examples when you want the engine to persist to disk, and by
//! tests that exercise OS-level behaviour. It shares the same [`IoStats`]
//! accounting as [`MemEnv`](crate::mem::MemEnv), so experiments can run on
//! either substrate.

use crate::io_stats::{IoClass, IoStats};
use crate::{Env, RandomAccessFile, WritableFile};
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_util::{Error, Result};
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Filesystem-backed environment rooted at a directory.
pub struct FsEnv {
    root: PathBuf,
    stats: Arc<IoStats>,
}

impl FsEnv {
    /// Create an environment rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FsEnv {
            root,
            stats: Arc::new(IoStats::new()),
        })
    }

    fn resolve(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }
}

struct FsWritable {
    file: fs::File,
    len: u64,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl WritableFile for FsWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        self.stats.record_write(self.class, data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct FsReadable {
    // A Mutex keeps the trait object Sync without resorting to per-platform
    // positional-read APIs; read paths clone the handle out of hot loops.
    file: Mutex<fs::File>,
    len: u64,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl RandomAccessFile for FsReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        if offset + len as u64 > self.len {
            return Err(Error::corruption(format!(
                "read past eof: {}..{} of {}",
                offset,
                offset + len as u64,
                self.len
            )));
        }
        let mut buf = vec![0u8; len];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(&mut buf)?;
        }
        self.stats.record_read(self.class, len as u64);
        Ok(Bytes::from(buf))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl Env for FsEnv {
    fn new_writable(&self, path: &str, class: IoClass) -> Result<Box<dyn WritableFile>> {
        let full = self.resolve(path);
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::File::create(&full)?;
        Ok(Box::new(FsWritable {
            file,
            len: 0,
            stats: self.stats.clone(),
            class,
        }))
    }

    fn open_random_access(&self, path: &str, class: IoClass) -> Result<Arc<dyn RandomAccessFile>> {
        let full = self.resolve(path);
        let file = fs::File::open(&full)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(FsReadable {
            file: Mutex::new(file),
            len,
            stats: self.stats.clone(),
            class,
        }))
    }

    fn read_file(&self, path: &str, class: IoClass) -> Result<Bytes> {
        let data = fs::read(self.resolve(path))?;
        self.stats.record_read(class, data.len() as u64);
        Ok(Bytes::from(data))
    }

    fn remove_file(&self, path: &str) -> Result<()> {
        fs::remove_file(self.resolve(path))?;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        fs::rename(self.resolve(from), self.resolve(to))?;
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        self.resolve(path).exists()
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        Ok(fs::metadata(self.resolve(path))?.len())
    }

    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>> {
        // Walk from the deepest existing directory of the prefix.
        let full_prefix = self.resolve(prefix);
        let dir = if full_prefix.is_dir() {
            full_prefix.clone()
        } else {
            full_prefix
                .parent()
                .map(Path::to_path_buf)
                .unwrap_or_else(|| self.root.clone())
        };
        let mut out = Vec::new();
        if dir.exists() {
            collect_files(&dir, &mut out)?;
        }
        let mut rel: Vec<String> = out
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&self.root)
                    .ok()
                    .map(|r| r.to_string_lossy().into_owned())
            })
            .filter(|r| r.starts_with(prefix))
            .collect();
        rel.sort();
        Ok(rel)
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        fs::create_dir_all(self.resolve(path))?;
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.stats.clone()
    }
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_env(tag: &str) -> (FsEnv, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "scavenger-fsenv-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        (FsEnv::new(&dir).unwrap(), dir)
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let (e, dir) = tmp_env("rt");
        let mut w = e.new_writable("db/file.sst", IoClass::Flush).unwrap();
        w.append(b"0123456789").unwrap();
        w.sync().unwrap();
        drop(w);
        let r = e
            .open_random_access("db/file.sst", IoClass::FgIndexRead)
            .unwrap();
        assert_eq!(&r.read_at(2, 4).unwrap()[..], b"2345");
        assert_eq!(r.len(), 10);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn list_prefix_filters_and_sorts() {
        let (e, dir) = tmp_env("list");
        for name in ["db/b.sst", "db/a.sst", "db/sub/c.sst", "elsewhere/d"] {
            let mut w = e.new_writable(name, IoClass::Other).unwrap();
            w.append(b"x").unwrap();
        }
        let files = e.list_prefix("db/").unwrap();
        assert_eq!(
            files,
            vec![
                "db/a.sst".to_string(),
                "db/b.sst".into(),
                "db/sub/c.sst".into()
            ]
        );
        assert_eq!(e.total_file_bytes("db/").unwrap(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn rename_and_remove() {
        let (e, dir) = tmp_env("mv");
        let mut w = e.new_writable("a", IoClass::Other).unwrap();
        w.append(b"z").unwrap();
        drop(w);
        e.rename("a", "b").unwrap();
        assert!(!e.file_exists("a"));
        assert!(e.file_exists("b"));
        e.remove_file("b").unwrap();
        assert!(!e.file_exists("b"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn read_past_eof_is_error() {
        let (e, dir) = tmp_env("eof");
        let mut w = e.new_writable("f", IoClass::Other).unwrap();
        w.append(b"abc").unwrap();
        drop(w);
        let r = e.open_random_access("f", IoClass::Other).unwrap();
        assert!(r.read_at(2, 5).is_err());
        let _ = fs::remove_dir_all(dir);
    }
}
