//! Drives a [`KvStore`] through the paper's phases (load → update → read →
//! scan → YCSB), tracking the logical dataset size exactly.

use crate::dist::KeyDist;
use crate::keys::encode_key;
use crate::values::{make_value, ValueGen};
use crate::ycsb::{YcsbOp, YcsbWorkload};
use crate::KvStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scavenger_util::Result;

/// Per-phase report.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseReport {
    /// Operations performed.
    pub ops: u64,
    /// User bytes written (keys + values of writes).
    pub user_write_bytes: u64,
    /// User bytes read.
    pub user_read_bytes: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
}

impl PhaseReport {
    /// Wall-clock throughput in MB/s of user writes.
    pub fn write_mbps_wall(&self) -> f64 {
        if self.wall_secs == 0.0 {
            0.0
        } else {
            self.user_write_bytes as f64 / 1e6 / self.wall_secs
        }
    }
}

/// Workload driver holding the per-key version/size ground truth.
pub struct Runner {
    rng: StdRng,
    value_gen: ValueGen,
    /// Current version of each key (0 = never written).
    versions: Vec<u64>,
    /// Current value size of each key.
    sizes: Vec<u32>,
    /// Number of keys inserted so far.
    num_keys: u64,
    verify_reads: bool,
}

impl Runner {
    /// Create a runner for up to `capacity` keys.
    pub fn new(capacity: u64, value_gen: ValueGen, seed: u64) -> Self {
        Runner {
            rng: StdRng::seed_from_u64(seed),
            value_gen,
            versions: vec![0; capacity as usize],
            sizes: vec![0; capacity as usize],
            num_keys: 0,
            verify_reads: false,
        }
    }

    /// Enable read verification (tests): read values are checked against
    /// the deterministic expected payload.
    pub fn with_verification(mut self) -> Self {
        self.verify_reads = true;
        self
    }

    /// Keys inserted so far.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Exact logical dataset size: Σ (key length + current value size) —
    /// the denominator of space amplification.
    pub fn logical_bytes(&self) -> u64 {
        let key_len = crate::keys::KEY_LEN as u64;
        self.sizes
            .iter()
            .take(self.num_keys as usize)
            .map(|&s| key_len + u64::from(s))
            .sum()
    }

    fn write_key(&mut self, store: &impl KvStore, id: u64) -> Result<u64> {
        let size = self.value_gen.next_size(&mut self.rng);
        let version = self.versions[id as usize] + 1;
        self.versions[id as usize] = version;
        self.sizes[id as usize] = size as u32;
        let value = make_value(id, version, size);
        store.put(&encode_key(id), &value)?;
        Ok((crate::keys::KEY_LEN + value.len()) as u64)
    }

    /// Load phase: insert keys `[num_keys, num_keys + n)` in random order
    /// (the paper loads uniformly random data).
    pub fn load(&mut self, store: &impl KvStore, n: u64) -> Result<PhaseReport> {
        let start = std::time::Instant::now();
        let mut report = PhaseReport::default();
        let base = self.num_keys;
        let mut ids: Vec<u64> = (base..base + n).collect();
        // Fisher-Yates with the runner's RNG for determinism.
        for i in (1..ids.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        self.num_keys = base + n;
        for id in ids {
            report.user_write_bytes += self.write_key(store, id)?;
            report.ops += 1;
        }
        report.wall_secs = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Update phase: `n` overwrites with keys drawn from `dist`.
    pub fn update(&mut self, store: &impl KvStore, dist: &KeyDist, n: u64) -> Result<PhaseReport> {
        let start = std::time::Instant::now();
        let mut report = PhaseReport::default();
        for _ in 0..n {
            let id = dist.next(&mut self.rng, self.num_keys);
            report.user_write_bytes += self.write_key(store, id)?;
            report.ops += 1;
        }
        report.wall_secs = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Update until `bytes` user bytes have been written (the paper's
    /// "update 300 GB" phases).
    pub fn update_bytes(
        &mut self,
        store: &impl KvStore,
        dist: &KeyDist,
        bytes: u64,
    ) -> Result<PhaseReport> {
        let start = std::time::Instant::now();
        let mut report = PhaseReport::default();
        while report.user_write_bytes < bytes {
            let id = dist.next(&mut self.rng, self.num_keys);
            report.user_write_bytes += self.write_key(store, id)?;
            report.ops += 1;
        }
        report.wall_secs = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Read phase: `n` point lookups.
    pub fn read(&mut self, store: &impl KvStore, dist: &KeyDist, n: u64) -> Result<PhaseReport> {
        let start = std::time::Instant::now();
        let mut report = PhaseReport::default();
        for _ in 0..n {
            let id = dist.next(&mut self.rng, self.num_keys);
            let got = store.get(&encode_key(id))?;
            if let Some(v) = &got {
                report.user_read_bytes += v.len() as u64;
                if self.verify_reads {
                    let expected = make_value(
                        id,
                        self.versions[id as usize],
                        self.sizes[id as usize] as usize,
                    );
                    assert_eq!(v, &expected, "read verification failed for key {id}");
                }
            } else if self.verify_reads && self.versions[id as usize] > 0 {
                panic!("key {id} missing but was written");
            }
            report.ops += 1;
        }
        report.wall_secs = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Scan phase: `n` range scans of random length in `[1, max_len]`.
    pub fn scan(
        &mut self,
        store: &impl KvStore,
        dist: &KeyDist,
        n: u64,
        max_len: usize,
    ) -> Result<PhaseReport> {
        let start = std::time::Instant::now();
        let mut report = PhaseReport::default();
        for _ in 0..n {
            let id = dist.next(&mut self.rng, self.num_keys);
            let len = self.rng.gen_range(1..=max_len.max(1));
            let rows = store.scan(&encode_key(id), len)?;
            for (_, v) in &rows {
                report.user_read_bytes += v.len() as u64;
            }
            report.ops += 1;
        }
        report.wall_secs = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Run `n` YCSB operations of workload `w` with skew `theta`.
    pub fn ycsb(
        &mut self,
        store: &impl KvStore,
        w: YcsbWorkload,
        theta: f64,
        n: u64,
        scan_max_len: usize,
    ) -> Result<PhaseReport> {
        let start = std::time::Instant::now();
        let mut report = PhaseReport::default();
        let dist = w.key_dist(self.num_keys.max(1), theta);
        for _ in 0..n {
            match w.next_op(&mut self.rng) {
                YcsbOp::Read => {
                    let id = dist.next(&mut self.rng, self.num_keys);
                    if let Some(v) = store.get(&encode_key(id))? {
                        report.user_read_bytes += v.len() as u64;
                    }
                }
                YcsbOp::Update => {
                    let id = dist.next(&mut self.rng, self.num_keys);
                    report.user_write_bytes += self.write_key(store, id)?;
                }
                YcsbOp::Insert => {
                    if (self.num_keys as usize) < self.versions.len() {
                        let id = self.num_keys;
                        self.num_keys += 1;
                        report.user_write_bytes += self.write_key(store, id)?;
                    }
                }
                YcsbOp::Scan => {
                    let id = dist.next(&mut self.rng, self.num_keys);
                    let len = self.rng.gen_range(1..=scan_max_len.max(1));
                    let rows = store.scan(&encode_key(id), len)?;
                    for (_, v) in &rows {
                        report.user_read_bytes += v.len() as u64;
                    }
                }
                YcsbOp::ReadModifyWrite => {
                    let id = dist.next(&mut self.rng, self.num_keys);
                    if let Some(v) = store.get(&encode_key(id))? {
                        report.user_read_bytes += v.len() as u64;
                    }
                    report.user_write_bytes += self.write_key(store, id)?;
                }
            }
            report.ops += 1;
        }
        report.wall_secs = start.elapsed().as_secs_f64();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// A trivial in-memory KvStore for runner tests.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvStore for MapStore {
        fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete(&self, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
            Ok(self
                .map
                .lock()
                .range(start.to_vec()..)
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
    }

    #[test]
    fn load_then_read_verifies() {
        let store = MapStore::default();
        let mut r = Runner::new(500, ValueGen::fixed(256), 1).with_verification();
        let rep = r.load(&store, 500).unwrap();
        assert_eq!(rep.ops, 500);
        assert_eq!(rep.user_write_bytes, 500 * (24 + 256));
        assert_eq!(r.num_keys(), 500);
        assert_eq!(r.logical_bytes(), 500 * (24 + 256));
        let dist = KeyDist::uniform(500);
        let rep = r.read(&store, &dist, 1000).unwrap();
        assert_eq!(rep.ops, 1000);
        assert!(rep.user_read_bytes > 0);
    }

    #[test]
    fn updates_track_logical_size() {
        let store = MapStore::default();
        let mut r = Runner::new(100, ValueGen::mixed_8k(), 2).with_verification();
        r.load(&store, 100).unwrap();
        let before = r.logical_bytes();
        let dist = KeyDist::zipfian(100, 0.9);
        r.update(&store, &dist, 500).unwrap();
        // Logical size changed (value sizes re-drawn) but key count did not.
        assert_eq!(r.num_keys(), 100);
        let after = r.logical_bytes();
        assert!(after > 0 && (after != before || before > 0));
        // Verify all current values match ground truth.
        r.read(&store, &dist, 200).unwrap();
    }

    #[test]
    fn update_bytes_reaches_target() {
        let store = MapStore::default();
        let mut r = Runner::new(50, ValueGen::fixed(1000), 3);
        r.load(&store, 50).unwrap();
        let dist = KeyDist::uniform(50);
        let rep = r.update_bytes(&store, &dist, 100_000).unwrap();
        assert!(rep.user_write_bytes >= 100_000);
        assert!(rep.ops >= 97);
    }

    #[test]
    fn scan_reads_rows() {
        let store = MapStore::default();
        let mut r = Runner::new(200, ValueGen::fixed(100), 4);
        r.load(&store, 200).unwrap();
        let dist = KeyDist::uniform(200);
        let rep = r.scan(&store, &dist, 50, 10).unwrap();
        assert_eq!(rep.ops, 50);
        assert!(rep.user_read_bytes > 0);
    }

    #[test]
    fn ycsb_a_mixes_reads_and_writes() {
        let store = MapStore::default();
        let mut r = Runner::new(1000, ValueGen::fixed(500), 5);
        r.load(&store, 500).unwrap();
        let rep = r.ycsb(&store, YcsbWorkload::A, 0.99, 2000, 100).unwrap();
        assert_eq!(rep.ops, 2000);
        assert!(rep.user_write_bytes > 0);
        assert!(rep.user_read_bytes > 0);
    }

    #[test]
    fn ycsb_d_inserts_grow_keyspace() {
        let store = MapStore::default();
        let mut r = Runner::new(2000, ValueGen::fixed(100), 6);
        r.load(&store, 1000).unwrap();
        r.ycsb(&store, YcsbWorkload::D, 0.99, 4000, 100).unwrap();
        assert!(r.num_keys() > 1000, "inserts happened: {}", r.num_keys());
        assert!(r.num_keys() <= 2000);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let store = MapStore::default();
            let mut r = Runner::new(100, ValueGen::mixed_8k(), seed);
            r.load(&store, 100).unwrap();
            let dist = KeyDist::zipfian(100, 0.9);
            r.update(&store, &dist, 100).unwrap();
            r.logical_bytes()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
