//! Crash-recovery property workload: seeded operation sequences with a
//! replayable model, for driving an engine under fault injection.
//!
//! The harness contract (used by `tests/integration_crash_recovery.rs`
//! in the workspace root):
//!
//! 1. [`gen_ops`] produces a deterministic op sequence from a seed.
//! 2. The test applies a prefix of it to a real engine over a
//!    `FaultEnv`, which crashes at an injected point.
//! 3. After reopening on the surviving bytes, the recovered key space
//!    must equal the model state after *some* prefix of the acknowledged
//!    ops ([`check_prefix_consistent`]) — no reordering, no partial
//!    batches — and that prefix must cover at least the durable floor
//!    ([`durable_floor`]): every synced write and everything older than
//!    the last completed flush must have survived.
//!
//! Values are a pure function of `(key, stamp)` ([`value_bytes`]), so
//! the model never stores payloads — only which `(key, stamp, len)` is
//! live — and a recovered value can be checked byte-for-byte.

use std::collections::BTreeMap;

/// One operation in a generated crash workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// Insert or overwrite `key` with [`value_bytes`]`(key, stamp, len)`.
    Put {
        /// Key index (see [`key_bytes`]).
        key: u32,
        /// Version stamp mixed into the value payload.
        stamp: u64,
        /// Value payload length.
        len: usize,
        /// Fsync the WAL record before acknowledging.
        sync: bool,
    },
    /// Delete `key`.
    Delete {
        /// Key index (see [`key_bytes`]).
        key: u32,
        /// Fsync the WAL record before acknowledging.
        sync: bool,
    },
    /// Flush memtables — a durability point for everything before it.
    Flush,
    /// Run one GC pass (no logical state change; exercises the value
    /// store's crash surface).
    Gc,
    /// Atomically write all three keys (drawn from the dedicated
    /// [`txn_key_bytes`] space, which only this op touches) with the
    /// same stamp, through the engine's atomic-batch path with
    /// `sync = true`. On a sharded store the keys usually straddle
    /// shards, exercising the 2PC coordinator; recovery must surface
    /// the batch all-or-nothing ([`check_txn_atomic`]).
    TxnBatch {
        /// Three distinct key indices in the txn key space.
        keys: [u32; 3],
        /// Version stamp shared by every member (unique per op).
        stamp: u64,
        /// Value payload length for every member.
        len: usize,
    },
}

/// Size of the dedicated transactional key space ([`txn_key_bytes`]).
/// Small on purpose: batches overlap heavily, so partial application
/// would collide with concurrent history and be caught.
pub const TXN_KEY_SPACE: u32 = 12;

/// Key bytes for txn-batch key index `k` — a namespace disjoint from
/// [`key_bytes`], touched only by [`CrashOp::TxnBatch`].
pub fn txn_key_bytes(k: u32) -> Vec<u8> {
    format!("txn{k:04}").into_bytes()
}

/// The logical key space state: key bytes → expected value bytes.
pub type Model = BTreeMap<Vec<u8>, Vec<u8>>;

/// splitmix64 — the same tiny deterministic generator the fault env
/// uses; good enough statistical quality for workload shaping and has
/// no dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Key bytes for key index `k` (fixed-width, so scan order == index
/// order).
pub fn key_bytes(k: u32) -> Vec<u8> {
    format!("key{k:06}").into_bytes()
}

/// Deterministic value payload for `(key, stamp)`: `len` bytes whose
/// prefix encodes the pair (so mismatches identify themselves) and
/// whose tail is seeded pseudo-random filler.
pub fn value_bytes(key: u32, stamp: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&u64::from(key).to_le_bytes());
    v.extend_from_slice(&stamp.to_le_bytes());
    let mut rng = stamp ^ (u64::from(key) << 32) ^ 0x5eed_5eed_5eed_5eed;
    while v.len() < len {
        v.extend_from_slice(&splitmix64(&mut rng).to_le_bytes());
    }
    v.truncate(len);
    v
}

/// Generate a deterministic sequence of `n` operations over a key space
/// of `key_space` keys. The mix is write-heavy with occasional deletes,
/// flushes, and GC passes; value sizes straddle the KV-separation
/// threshold so both inline and separated paths are exercised; roughly
/// a third of the writes are synced.
pub fn gen_ops(seed: u64, n: usize, key_space: u32) -> Vec<CrashOp> {
    let mut rng = seed ^ 0xc4a5_4c4a_5c4a_54c4;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let roll = splitmix64(&mut rng) % 100;
        let key = (splitmix64(&mut rng) % u64::from(key_space.max(1))) as u32;
        let sync = splitmix64(&mut rng).is_multiple_of(3);
        if roll < 62 {
            // Size classes: small (inline), medium, large (separated).
            let len = match splitmix64(&mut rng) % 3 {
                0 => 64 + (splitmix64(&mut rng) % 128) as usize,
                1 => 600 + (splitmix64(&mut rng) % 512) as usize,
                _ => 2048 + (splitmix64(&mut rng) % 2048) as usize,
            };
            ops.push(CrashOp::Put {
                key,
                stamp: (i as u64) << 20 | (seed & 0xf_ffff),
                len,
                sync,
            });
        } else if roll < 72 {
            // Three distinct keys from the (small) txn space — on a
            // 4-shard store they straddle shards more often than not.
            let a = (splitmix64(&mut rng) % u64::from(TXN_KEY_SPACE)) as u32;
            let mut b = (splitmix64(&mut rng) % u64::from(TXN_KEY_SPACE)) as u32;
            while b == a {
                b = (b + 1) % TXN_KEY_SPACE;
            }
            let mut c = (splitmix64(&mut rng) % u64::from(TXN_KEY_SPACE)) as u32;
            while c == a || c == b {
                c = (c + 1) % TXN_KEY_SPACE;
            }
            ops.push(CrashOp::TxnBatch {
                keys: [a, b, c],
                stamp: (i as u64) << 20 | (seed & 0xf_ffff),
                len: 64 + (splitmix64(&mut rng) % 700) as usize,
            });
        } else if roll < 85 {
            ops.push(CrashOp::Delete { key, sync });
        } else if roll < 95 {
            ops.push(CrashOp::Flush);
        } else {
            ops.push(CrashOp::Gc);
        }
    }
    ops
}

/// Replay `ops` into a fresh model and return the resulting state.
pub fn apply_ops(ops: &[CrashOp]) -> Model {
    let mut m = Model::new();
    apply_more(&mut m, ops);
    m
}

/// Replay `ops` on top of an existing model state.
pub fn apply_more(model: &mut Model, ops: &[CrashOp]) {
    for op in ops {
        match *op {
            CrashOp::Put {
                key, stamp, len, ..
            } => {
                model.insert(key_bytes(key), value_bytes(key, stamp, len));
            }
            CrashOp::Delete { key, .. } => {
                model.remove(&key_bytes(key));
            }
            CrashOp::Flush | CrashOp::Gc => {}
            CrashOp::TxnBatch { keys, stamp, len } => {
                for k in keys {
                    model.insert(txn_key_bytes(k), value_bytes(k, stamp, len));
                }
            }
        }
    }
}

/// The durable floor after the first `acked` ops were acknowledged
/// `Ok`: the smallest prefix length every correct recovery must cover.
/// A synced write makes the whole WAL prefix durable; a completed flush
/// makes everything before it durable. Unsynced writes after the last
/// such point may legally be lost.
pub fn durable_floor(ops: &[CrashOp], acked: usize) -> usize {
    let mut floor = 0;
    for (i, op) in ops.iter().take(acked).enumerate() {
        match op {
            CrashOp::Put { sync: true, .. } | CrashOp::Delete { sync: true, .. } => {
                floor = i + 1;
            }
            // Flush persists everything *before* it; the flush op
            // itself mutates nothing, so covering `i` is equivalent
            // and keeps the arithmetic uniform.
            CrashOp::Flush => floor = i + 1,
            // Txn batches are always applied with `sync = true` (and
            // the 2PC path forces a sync regardless), so an ack makes
            // the whole prefix durable like any synced write.
            CrashOp::TxnBatch { .. } => floor = i + 1,
            _ => {}
        }
    }
    floor
}

/// Check that `recovered` equals the model after some prefix `k` of
/// `ops` with `floor <= k <= attempted` (prefix consistency: nothing
/// reordered, nothing below the durable floor lost, nothing beyond the
/// attempted ops invented). Returns the matching `k`, or a diagnostic
/// describing the closest mismatch.
pub fn check_prefix_consistent(
    recovered: &Model,
    ops: &[CrashOp],
    floor: usize,
    attempted: usize,
) -> Result<usize, String> {
    let attempted = attempted.min(ops.len());
    let mut model = apply_ops(&ops[..floor.min(attempted)]);
    if model == *recovered {
        return Ok(floor);
    }
    for k in floor..attempted {
        apply_more(&mut model, &ops[k..k + 1]);
        if model == *recovered {
            return Ok(k + 1);
        }
    }
    // No prefix matched — describe the divergence from the floor state
    // (the weakest state recovery was allowed to return).
    let model = apply_ops(&ops[..floor.min(attempted)]);
    let mut diffs = Vec::new();
    for (k, v) in recovered {
        match model.get(k) {
            None => diffs.push(format!("extra key {}", String::from_utf8_lossy(k))),
            Some(mv) if mv != v => diffs.push(format!(
                "key {} has {}B, floor model expects {}B",
                String::from_utf8_lossy(k),
                v.len(),
                mv.len()
            )),
            _ => {}
        }
    }
    for k in model.keys() {
        if !recovered.contains_key(k) {
            diffs.push(format!("missing key {}", String::from_utf8_lossy(k)));
        }
    }
    diffs.truncate(8);
    Err(format!(
        "no prefix in [{floor}, {attempted}] matches recovered state \
         ({} keys recovered, {} at floor): {}",
        recovered.len(),
        model.len(),
        diffs.join("; ")
    ))
}

/// Per-key crash consistency, for engines without one global WAL order
/// (a sharded store persists each shard's WAL independently, so the
/// recovered state need not be a prefix of the *global* op sequence).
///
/// For every key, its recovered value must equal the result of some
/// prefix of the ops *on that key*, and that prefix must cover every op
/// of the key that is guaranteed durable: a key's synced acknowledged
/// write (same key → same shard → same WAL, so earlier ops on the key
/// are below it in the log), any write older than the last acknowledged
/// flush (flush persists every shard), and nothing beyond `attempted`
/// may be visible. Weaker than [`check_prefix_consistent`] — use that
/// one for single-WAL engines.
pub fn check_per_key_consistent(
    recovered: &Model,
    ops: &[CrashOp],
    acked: usize,
    attempted: usize,
) -> Result<(), String> {
    let attempted = attempted.min(ops.len());
    let last_flush = ops
        .iter()
        .take(acked)
        .rposition(|o| matches!(o, CrashOp::Flush));
    // Gather, per key, the mutation subsequence within `attempted`.
    let mut per_key: BTreeMap<u32, Vec<(usize, CrashOp)>> = BTreeMap::new();
    for (i, op) in ops.iter().take(attempted).enumerate() {
        if let CrashOp::Put { key, .. } | CrashOp::Delete { key, .. } = *op {
            per_key.entry(key).or_default().push((i, *op));
        }
    }
    for (key, seq) in &per_key {
        let kb = key_bytes(*key);
        // Durable floor within this key's subsequence.
        let mut floor = 0;
        for (pos, (i, op)) in seq.iter().enumerate() {
            let synced = matches!(
                op,
                CrashOp::Put { sync: true, .. } | CrashOp::Delete { sync: true, .. }
            );
            if (synced && *i < acked) || last_flush.is_some_and(|f| *i < f) {
                floor = pos + 1;
            }
        }
        // Allowed values: the key's state after each prefix length in
        // [floor, seq.len()] (absent counts as a state).
        let got = recovered.get(&kb);
        let mut ok = false;
        for j in floor..=seq.len() {
            let state = match j.checked_sub(1).map(|p| &seq[p].1) {
                None => None,
                Some(CrashOp::Put {
                    key, stamp, len, ..
                }) => Some(value_bytes(*key, *stamp, *len)),
                Some(CrashOp::Delete { .. }) => None,
                Some(CrashOp::Flush | CrashOp::Gc | CrashOp::TxnBatch { .. }) => {
                    unreachable!("only per-key mutations collected")
                }
            };
            if got == state.as_ref() {
                ok = true;
                break;
            }
        }
        if !ok {
            return Err(format!(
                "key {} recovered to {} which matches no durable prefix \
                 (floor {floor} of {} ops on the key)",
                String::from_utf8_lossy(&kb),
                got.map_or("<absent>".into(), |v| format!("{}B", v.len())),
                seq.len()
            ));
        }
    }
    // No invented keys. Txn-space keys are validated (prefix, stamp,
    // atomicity) by [`check_txn_atomic`]; here just confirm membership.
    let txn_keys: std::collections::BTreeSet<u32> = ops
        .iter()
        .take(attempted)
        .filter_map(|o| match o {
            CrashOp::TxnBatch { keys, .. } => Some(keys),
            _ => None,
        })
        .flatten()
        .copied()
        .collect();
    for k in recovered.keys() {
        let s = std::str::from_utf8(k).unwrap_or("");
        let ok = if let Some(n) = s.strip_prefix("key") {
            n.parse::<u32>().is_ok_and(|n| per_key.contains_key(&n))
        } else if let Some(n) = s.strip_prefix("txn") {
            n.parse::<u32>().is_ok_and(|n| txn_keys.contains(&n))
        } else {
            false
        };
        if !ok {
            return Err(format!(
                "recovered key {} was never written",
                String::from_utf8_lossy(k)
            ));
        }
    }
    Ok(())
}

/// All-or-nothing oracle for [`CrashOp::TxnBatch`]: no recovered state
/// may reflect a *partial* batch, acked or not — that is the 2PC
/// coordinator's whole guarantee.
///
/// Each txn key's recovered value identifies (via its embedded stamp)
/// the last batch applied on it, and per-shard WAL recovery is
/// prefix-ordered per key, so batch `i` was applied on key `k` iff
/// `k`'s visible batch index is `>= i`. The oracle checks, for every
/// batch in `ops[..attempted]`:
///
/// * **atomicity** — all member keys agree on whether the batch
///   applied;
/// * **durability** — an acknowledged batch (index `< acked`; txn
///   batches are always synced) applied on *all* members;
/// * **honesty** — every recovered txn value byte-matches a batch that
///   actually wrote that key.
pub fn check_txn_atomic(
    recovered: &Model,
    ops: &[CrashOp],
    acked: usize,
    attempted: usize,
) -> Result<(), String> {
    let attempted = attempted.min(ops.len());
    // (global op index, keys, stamp, len) of every batch in scope.
    let batches: Vec<(usize, [u32; 3], u64, usize)> = ops
        .iter()
        .take(attempted)
        .enumerate()
        .filter_map(|(i, o)| match *o {
            CrashOp::TxnBatch { keys, stamp, len } => Some((i, keys, stamp, len)),
            _ => None,
        })
        .collect();
    // Visible batch position per txn key: index into `batches` of the
    // batch the key's recovered value came from.
    let mut visible: BTreeMap<u32, usize> = BTreeMap::new();
    for k in 0..TXN_KEY_SPACE {
        let Some(v) = recovered.get(&txn_key_bytes(k)) else {
            continue;
        };
        if v.len() < 16 {
            return Err(format!("txn key {k} recovered {}B, too short", v.len()));
        }
        let stamp = u64::from_le_bytes(v[8..16].try_into().unwrap());
        let pos = batches
            .iter()
            .position(|(_, keys, s, _)| *s == stamp && keys.contains(&k))
            .ok_or_else(|| {
                format!("txn key {k} recovered stamp {stamp:#x} from no batch writing it")
            })?;
        let (_, _, s, len) = batches[pos];
        if *v != value_bytes(k, s, len) {
            return Err(format!("txn key {k} value bytes mismatch stamp {stamp:#x}"));
        }
        visible.insert(k, pos);
    }
    for (pos, &(op_idx, keys, stamp, _)) in batches.iter().enumerate() {
        let applied: Vec<bool> = keys
            .iter()
            .map(|k| {
                visible.get(k).is_some_and(|&v| {
                    // Applied iff the key's visible batch is this one or
                    // a later batch also containing the key.
                    v >= pos && batches[v].1.contains(k)
                })
            })
            .collect();
        let n = applied.iter().filter(|a| **a).count();
        if n != 0 && n != keys.len() {
            return Err(format!(
                "batch op {op_idx} stamp {stamp:#x} partially applied: \
                 {n}/{} members visible (keys {keys:?})",
                keys.len()
            ));
        }
        if op_idx < acked && n != keys.len() {
            return Err(format!(
                "acked synced batch op {op_idx} stamp {stamp:#x} lost \
                 ({n}/{} members visible, keys {keys:?})",
                keys.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_ops_is_deterministic() {
        let a = gen_ops(42, 200, 32);
        let b = gen_ops(42, 200, 32);
        assert_eq!(a, b);
        let c = gen_ops(43, 200, 32);
        assert_ne!(a, c);
        assert!(a.iter().any(|o| matches!(o, CrashOp::Put { .. })));
        assert!(a.iter().any(|o| matches!(o, CrashOp::Flush)));
    }

    #[test]
    fn value_bytes_encode_identity() {
        let v = value_bytes(7, 99, 600);
        assert_eq!(v.len(), 600);
        assert_eq!(&v[..8], &7u64.to_le_bytes());
        assert_eq!(&v[8..16], &99u64.to_le_bytes());
        assert_eq!(v, value_bytes(7, 99, 600));
        assert_ne!(v, value_bytes(7, 100, 600));
    }

    #[test]
    fn durable_floor_advances_on_sync_and_flush() {
        let ops = vec![
            CrashOp::Put {
                key: 0,
                stamp: 1,
                len: 64,
                sync: false,
            },
            CrashOp::Put {
                key: 1,
                stamp: 2,
                len: 64,
                sync: true,
            },
            CrashOp::Put {
                key: 2,
                stamp: 3,
                len: 64,
                sync: false,
            },
            CrashOp::Flush,
            CrashOp::Put {
                key: 3,
                stamp: 4,
                len: 64,
                sync: false,
            },
        ];
        assert_eq!(durable_floor(&ops, 0), 0);
        assert_eq!(durable_floor(&ops, 1), 0); // unsynced: may be lost
        assert_eq!(durable_floor(&ops, 2), 2); // synced write
        assert_eq!(durable_floor(&ops, 3), 2);
        assert_eq!(durable_floor(&ops, 4), 4); // flush covers the tail
        assert_eq!(durable_floor(&ops, 5), 4);
    }

    #[test]
    fn prefix_check_accepts_any_prefix_at_or_above_floor() {
        let ops = gen_ops(7, 50, 8);
        let floor = durable_floor(&ops, 50);
        for k in [floor, (floor + 50) / 2, 50] {
            let state = apply_ops(&ops[..k]);
            let got = check_prefix_consistent(&state, &ops, floor, 50).unwrap();
            // The matching prefix need not be exactly k (adjacent ops can
            // be no-ops on the state), but replaying to it must reproduce
            // the state.
            assert_eq!(apply_ops(&ops[..got]), state);
        }
    }

    #[test]
    fn prefix_check_rejects_non_prefix_states() {
        let ops = gen_ops(9, 60, 8);
        let floor = durable_floor(&ops, 60);
        // A state with an invented key matches no prefix.
        let mut bogus = apply_ops(&ops[..30]);
        bogus.insert(b"zzz-not-a-key".to_vec(), vec![1, 2, 3]);
        let err = check_prefix_consistent(&bogus, &ops, floor, 60).unwrap_err();
        assert!(err.contains("no prefix"), "{err}");
    }

    #[test]
    fn per_key_check_allows_per_shard_divergence_but_not_lost_sync() {
        let ops = vec![
            // key 0: unsynced put — may be lost.
            CrashOp::Put {
                key: 0,
                stamp: 1,
                len: 64,
                sync: false,
            },
            // key 1: synced put — must survive.
            CrashOp::Put {
                key: 1,
                stamp: 2,
                len: 64,
                sync: true,
            },
        ];
        // Sharded recovery may keep the later synced write while losing
        // the earlier unsynced one (different shard WALs): fine per-key,
        // while the global prefix check would need key 0 present too.
        let mut partial = Model::new();
        partial.insert(key_bytes(1), value_bytes(1, 2, 64));
        check_per_key_consistent(&partial, &ops, 2, 2).unwrap();
        assert!(check_prefix_consistent(&partial, &ops, 0, 2).is_err());
        // Losing the synced write is a violation either way.
        let mut lost = Model::new();
        lost.insert(key_bytes(0), value_bytes(0, 1, 64));
        assert!(check_per_key_consistent(&lost, &ops, 2, 2).is_err());
        // A value that matches no stamp ever written is a violation.
        let mut bogus = Model::new();
        bogus.insert(key_bytes(1), vec![9; 64]);
        assert!(check_per_key_consistent(&bogus, &ops, 2, 2).is_err());
        // An invented key is a violation.
        let mut extra = partial.clone();
        extra.insert(b"stray".to_vec(), vec![1]);
        assert!(check_per_key_consistent(&extra, &ops, 2, 2).is_err());
    }

    #[test]
    fn prefix_check_rejects_states_below_the_floor() {
        // Build ops by hand: put k0 (synced), put k1 (synced). Floor = 2.
        let ops = vec![
            CrashOp::Put {
                key: 0,
                stamp: 1,
                len: 64,
                sync: true,
            },
            CrashOp::Put {
                key: 1,
                stamp: 2,
                len: 64,
                sync: true,
            },
        ];
        // Recovery that lost the second synced write is a violation.
        let lost = apply_ops(&ops[..1]);
        assert!(check_prefix_consistent(&lost, &ops, 2, 2).is_err());
        // With an honest floor of 1 it would be accepted.
        assert_eq!(check_prefix_consistent(&lost, &ops, 1, 2).unwrap(), 1);
    }
}
