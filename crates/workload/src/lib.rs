//! Workload generators for the Scavenger experiments.
//!
//! Reproduces the paper's workload matrix (§IV-A):
//!
//! * **Value sizes** — fixed (256 B…32 KB), *Mixed-8K* (1:1 small uniform
//!   100–512 B : large 16 KB, ByteDance's OLTP pattern), and *Pareto-1K*
//!   (generalized Pareto, ≈1 KB mean).
//! * **Key distributions** — uniform and Zipfian (YCSB's scrambled
//!   zipfian; constants 0.5–0.99).
//! * **Keys** — constant 24 B.
//! * **YCSB** core workloads A–F.
//!
//! The [`runner`] drives any store implementing [`KvStore`] and tracks the
//! logical dataset size (the denominator of space amplification) exactly.

pub mod crash;
pub mod dist;
pub mod follower;
pub mod keys;
pub mod ops;
pub mod runner;
pub mod values;
pub mod ycsb;

use scavenger_util::Result;

/// Minimal store interface the workloads drive. The bench crate's
/// `EngineKvStore` adapter implements it once, generically, for any
/// engine behind scavenger's unified trait surface (`KvRead +
/// KvWrite`): a single `Db`, a sharded `DbShards`, or a future backend.
pub trait KvStore {
    /// Insert or overwrite.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;
    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Delete.
    fn delete(&self, key: &[u8]) -> Result<()>;
    /// Scan from `start`, returning up to `limit` `(key, value)` pairs.
    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
}
