//! YCSB core workloads A–F (Cooper et al., SoCC'10), as used in paper §IV-C.

use crate::dist::KeyDist;
use rand::Rng;

/// YCSB operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbOp {
    /// Point read.
    Read,
    /// Overwrite an existing key.
    Update,
    /// Insert a new key (grows the keyspace).
    Insert,
    /// Short range scan.
    Scan,
    /// Read-modify-write.
    ReadModifyWrite,
}

/// A YCSB core workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read / 5% insert, latest.
    D,
    /// 95% scan / 5% insert, zipfian.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
}

impl YcsbWorkload {
    /// All six, in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }

    /// `(read, update, insert, scan, rmw)` proportions.
    pub fn mix(&self) -> (f64, f64, f64, f64, f64) {
        match self {
            YcsbWorkload::A => (0.5, 0.5, 0.0, 0.0, 0.0),
            YcsbWorkload::B => (0.95, 0.05, 0.0, 0.0, 0.0),
            YcsbWorkload::C => (1.0, 0.0, 0.0, 0.0, 0.0),
            YcsbWorkload::D => (0.95, 0.0, 0.05, 0.0, 0.0),
            YcsbWorkload::E => (0.0, 0.0, 0.05, 0.95, 0.0),
            YcsbWorkload::F => (0.5, 0.0, 0.0, 0.0, 0.5),
        }
    }

    /// Request distribution for this workload over `n` keys.
    pub fn key_dist(&self, n: u64, theta: f64) -> KeyDist {
        match self {
            YcsbWorkload::D => KeyDist::latest(n, theta),
            _ => KeyDist::zipfian(n, theta),
        }
    }

    /// Draw the next operation kind.
    pub fn next_op(&self, rng: &mut impl Rng) -> YcsbOp {
        let (r, u, i, s, _f) = self.mix();
        let x: f64 = rng.gen();
        if x < r {
            YcsbOp::Read
        } else if x < r + u {
            YcsbOp::Update
        } else if x < r + u + i {
            YcsbOp::Insert
        } else if x < r + u + i + s {
            YcsbOp::Scan
        } else {
            YcsbOp::ReadModifyWrite
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(w: YcsbWorkload, n: usize) -> std::collections::HashMap<YcsbOp, usize> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = std::collections::HashMap::new();
        for _ in 0..n {
            *h.entry(w.next_op(&mut rng)).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn workload_a_is_half_reads_half_updates() {
        let h = histogram(YcsbWorkload::A, 100_000);
        let r = h[&YcsbOp::Read] as f64 / 100_000.0;
        let u = h[&YcsbOp::Update] as f64 / 100_000.0;
        assert!((r - 0.5).abs() < 0.02, "reads {r}");
        assert!((u - 0.5).abs() < 0.02, "updates {u}");
        assert!(!h.contains_key(&YcsbOp::Scan));
    }

    #[test]
    fn workload_c_is_read_only() {
        let h = histogram(YcsbWorkload::C, 10_000);
        assert_eq!(h[&YcsbOp::Read], 10_000);
    }

    #[test]
    fn workload_e_is_scan_heavy() {
        let h = histogram(YcsbWorkload::E, 100_000);
        let s = h[&YcsbOp::Scan] as f64 / 100_000.0;
        let i = h[&YcsbOp::Insert] as f64 / 100_000.0;
        assert!((s - 0.95).abs() < 0.01);
        assert!((i - 0.05).abs() < 0.01);
    }

    #[test]
    fn workload_f_has_rmw() {
        let h = histogram(YcsbWorkload::F, 100_000);
        let f = h[&YcsbOp::ReadModifyWrite] as f64 / 100_000.0;
        assert!((f - 0.5).abs() < 0.02);
    }

    #[test]
    fn mixes_sum_to_one() {
        for w in YcsbWorkload::ALL {
            let (r, u, i, s, f) = w.mix();
            assert!((r + u + i + s + f - 1.0).abs() < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn d_uses_latest_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = YcsbWorkload::D.key_dist(10_000, 0.99);
        let mut recent = 0;
        for _ in 0..10_000 {
            if d.next(&mut rng, 10_000) >= 9_000 {
                recent += 1;
            }
        }
        assert!(recent > 5_000);
    }
}
