//! Key-choice distributions: uniform, (scrambled) Zipfian, latest.

use rand::Rng;

/// YCSB-style Zipfian generator over `[0, n)`.
///
/// Uses Gray et al.'s rejection-free inversion with precomputed
/// `zeta(n, theta)`. With `scrambled`, ranks are hashed so the hot items
/// spread over the keyspace (YCSB's `ScrambledZipfianGenerator`).
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scrambled: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum for the sizes used in experiments (≤ a few million).
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// FNV-1a 64-bit, used to scramble ranks.
pub fn fnv1a(mut x: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x100000001b3);
        x >>= 8;
    }
    h
}

impl Zipfian {
    /// Create a generator over `[0, n)` with skew `theta` (0 < theta < 1;
    /// the paper sweeps 0.5–0.99).
    pub fn new(n: u64, theta: f64, scrambled: bool) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        let theta = theta.clamp(0.01, 0.9999);
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            scrambled,
        }
    }

    /// Draw the next rank.
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scrambled {
            fnv1a(rank) % self.n
        } else {
            rank
        }
    }
}

/// How operation keys are chosen.
pub enum KeyDist {
    /// Uniform over `[0, n)`.
    Uniform {
        /// Domain size.
        n: u64,
    },
    /// Zipfian (optionally scrambled).
    Zipfian(Zipfian),
    /// Skewed toward the most recently inserted keys (YCSB-D): the
    /// zipfian rank is measured back from the end of the key space.
    Latest {
        /// Underlying zipfian over recency ranks.
        zipf: Zipfian,
    },
}

impl KeyDist {
    /// Uniform over `n` keys.
    pub fn uniform(n: u64) -> Self {
        KeyDist::Uniform { n }
    }

    /// Scrambled zipfian over `n` keys.
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyDist::Zipfian(Zipfian::new(n, theta, true))
    }

    /// Latest-skewed over `n` keys.
    pub fn latest(n: u64, theta: f64) -> Self {
        KeyDist::Latest {
            zipf: Zipfian::new(n, theta, false),
        }
    }

    /// Draw a key id given the current total number of keys `n_now`
    /// (needed by `Latest` as the keyspace grows).
    pub fn next(&self, rng: &mut impl Rng, n_now: u64) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..(*n).min(n_now.max(1))),
            KeyDist::Zipfian(z) => z.next(rng) % n_now.max(1),
            KeyDist::Latest { zipf } => {
                let back = zipf.next(rng) % n_now.max(1);
                n_now.saturating_sub(1).saturating_sub(back)
            }
        }
    }
}

/// Generalized Pareto value-size sampler (paper §IV-A; Hosking & Wallis).
///
/// `X = mu + sigma * ((1-U)^(-xi) - 1) / xi`, clamped to `[min, max]`.
/// With shape `xi < 1`, the mean is `mu + sigma / (1 - xi)`.
pub struct GenPareto {
    mu: f64,
    sigma: f64,
    xi: f64,
    min: usize,
    max: usize,
}

impl GenPareto {
    /// Construct with explicit parameters.
    pub fn new(mu: f64, sigma: f64, xi: f64, min: usize, max: usize) -> Self {
        GenPareto {
            mu,
            sigma,
            xi,
            min,
            max,
        }
    }

    /// A sampler with the requested mean (the paper's Pareto-1K uses mean
    /// ≈ 1024 B with a heavy tail).
    pub fn with_mean(mean: f64) -> Self {
        let xi = 0.2;
        let sigma = mean * (1.0 - xi);
        GenPareto::new(0.0, sigma, xi, 16, 64 * 1024)
    }

    /// Draw a value size.
    pub fn next(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0f64..1.0).min(0.999_999);
        let x = if self.xi.abs() < 1e-9 {
            self.mu - self.sigma * (1.0 - u).ln()
        } else {
            self.mu + self.sigma * ((1.0 - u).powf(-self.xi) - 1.0) / self.xi
        };
        (x.max(0.0) as usize).clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_stays_in_range_and_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipfian::new(1000, 0.99, false);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let v = z.next(&mut rng);
            assert!(v < 1000);
            counts[v as usize] += 1;
        }
        // Rank 0 must dominate under high skew: P(rank 0) = 1/zeta(n)
        // which is ~12.8% for n=1000, theta=0.99.
        assert!(counts[0] > 10_000, "rank0: {}", counts[0]);
        assert!(counts[0] > counts[10] * 5);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_ranks() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipfian::new(1000, 0.99, true);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // The hottest key is no longer id 0 (scrambling moved it).
        let hottest = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap()
            .0;
        assert_ne!(hottest, 0);
        let max = counts[hottest];
        assert!(max > 10_000, "still skewed: {max}");
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hot_share = |theta: f64| {
            let z = Zipfian::new(1000, theta, false);
            let mut hot = 0u64;
            for _ in 0..50_000 {
                if z.next(&mut rng) < 10 {
                    hot += 1;
                }
            }
            hot
        };
        assert!(hot_share(0.99) > hot_share(0.5) + 5_000);
    }

    #[test]
    fn uniform_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = KeyDist::uniform(100);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(d.next(&mut rng, 100));
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = KeyDist::latest(10_000, 0.99);
        let mut recent = 0;
        for _ in 0..10_000 {
            if d.next(&mut rng, 10_000) >= 9_900 {
                recent += 1;
            }
        }
        assert!(recent > 5_000, "recent hits: {recent}");
    }

    #[test]
    fn pareto_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = GenPareto::with_mean(1024.0);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| p.next(&mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 1024.0).abs() < 150.0,
            "mean {mean} should be near 1024"
        );
    }

    #[test]
    fn pareto_has_heavy_tail_but_clamps() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = GenPareto::with_mean(1024.0);
        let mut max = 0;
        for _ in 0..200_000 {
            max = max.max(p.next(&mut rng));
        }
        assert!(max > 8 * 1024, "tail reaches large values: {max}");
        assert!(max <= 64 * 1024);
    }

    #[test]
    fn fnv_is_deterministic_and_spreading() {
        assert_eq!(fnv1a(1), fnv1a(1));
        assert_ne!(fnv1a(1), fnv1a(2));
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(fnv1a(i) % 10_000);
        }
        assert!(seen.len() > 6_000, "spread: {}", seen.len());
    }
}
