//! Value-size generators (paper §IV-A) and deterministic value payloads.

use crate::dist::GenPareto;
use rand::Rng;

/// Value-size distribution.
pub enum ValueGen {
    /// Every value is `len` bytes (Fixed-NK workloads).
    Fixed {
        /// Value length.
        len: usize,
    },
    /// The paper's Mixed workload: small values uniform in
    /// `[small_lo, small_hi]`, large values exactly `large`, with
    /// `small_parts : large_parts` mixing (Mixed-8K is 1:1 → mean ≈ 8 KB).
    Mixed {
        /// Smallest small value.
        small_lo: usize,
        /// Largest small value.
        small_hi: usize,
        /// Large value size.
        large: usize,
        /// Small parts per `small_parts + large_parts`.
        small_parts: u32,
        /// Large parts.
        large_parts: u32,
    },
    /// Generalized Pareto (Pareto-1K).
    Pareto(GenPareto),
}

impl ValueGen {
    /// Fixed-size values.
    pub fn fixed(len: usize) -> Self {
        ValueGen::Fixed { len }
    }

    /// The paper's Mixed-8K: 1:1 small (uniform 100–512 B) to large (16 KB).
    pub fn mixed_8k() -> Self {
        ValueGen::Mixed {
            small_lo: 100,
            small_hi: 512,
            large: 16 * 1024,
            small_parts: 1,
            large_parts: 1,
        }
    }

    /// Mixed with an explicit `small:large` ratio (paper Fig. 19b sweeps
    /// 1:9 … 9:1).
    pub fn mixed_ratio(small_parts: u32, large_parts: u32) -> Self {
        ValueGen::Mixed {
            small_lo: 100,
            small_hi: 512,
            large: 16 * 1024,
            small_parts,
            large_parts,
        }
    }

    /// The paper's Pareto-1K (≈1 KB mean).
    pub fn pareto_1k() -> Self {
        ValueGen::Pareto(GenPareto::with_mean(1024.0))
    }

    /// Draw a value size.
    pub fn next_size(&self, rng: &mut impl Rng) -> usize {
        match self {
            ValueGen::Fixed { len } => *len,
            ValueGen::Mixed {
                small_lo,
                small_hi,
                large,
                small_parts,
                large_parts,
            } => {
                let total = small_parts + large_parts;
                if rng.gen_range(0..total) < *small_parts {
                    rng.gen_range(*small_lo..=*small_hi)
                } else {
                    *large
                }
            }
            ValueGen::Pareto(p) => p.next(rng),
        }
    }

    /// Expected mean size (approximate; used for sizing datasets).
    pub fn mean_size(&self) -> f64 {
        match self {
            ValueGen::Fixed { len } => *len as f64,
            ValueGen::Mixed {
                small_lo,
                small_hi,
                large,
                small_parts,
                large_parts,
            } => {
                let small_mean = (*small_lo + *small_hi) as f64 / 2.0;
                let total = (*small_parts + *large_parts) as f64;
                (small_mean * *small_parts as f64 + *large as f64 * *large_parts as f64) / total
            }
            ValueGen::Pareto(_) => 1024.0,
        }
    }
}

/// Deterministic value payload for `(key_id, version)` of the given size —
/// verifiable without storing expected values.
pub fn make_value(key_id: u64, version: u64, size: usize) -> Vec<u8> {
    let mut v = vec![0u8; size.max(9)];
    v[0] = 0x5c;
    v[1..9].copy_from_slice(&(key_id ^ version.rotate_left(32)).to_le_bytes());
    let mut x = key_id.wrapping_mul(0x9e3779b97f4a7c15) ^ version;
    for b in v.iter_mut().skip(9) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = ValueGen::fixed(4096);
        for _ in 0..100 {
            assert_eq!(g.next_size(&mut rng), 4096);
        }
        assert_eq!(g.mean_size(), 4096.0);
    }

    #[test]
    fn mixed_8k_mean_is_about_8k() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = ValueGen::mixed_8k();
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| g.next_size(&mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        // (306 + 16384) / 2 ≈ 8345.
        assert!((mean - 8345.0).abs() < 200.0, "mean {mean}");
        assert!((g.mean_size() - 8345.0).abs() < 10.0);
    }

    #[test]
    fn mixed_sizes_come_from_both_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = ValueGen::mixed_8k();
        let mut small = 0;
        let mut large = 0;
        for _ in 0..10_000 {
            let s = g.next_size(&mut rng);
            if s <= 512 {
                small += 1;
            } else {
                assert_eq!(s, 16 * 1024);
                large += 1;
            }
        }
        let ratio = small as f64 / large as f64;
        assert!((ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn mixed_ratio_9_1_is_mostly_small() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = ValueGen::mixed_ratio(9, 1);
        let small = (0..10_000).filter(|_| g.next_size(&mut rng) <= 512).count();
        assert!(small > 8_500, "small: {small}");
    }

    #[test]
    fn make_value_deterministic_and_distinct() {
        let a = make_value(5, 1, 4096);
        let b = make_value(5, 1, 4096);
        let c = make_value(5, 2, 4096);
        let d = make_value(6, 1, 4096);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 4096);
    }

    #[test]
    fn make_value_minimum_size() {
        assert_eq!(make_value(1, 1, 4).len(), 9, "clamped to header size");
    }
}
