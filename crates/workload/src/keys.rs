//! Key encoding: constant 24-byte keys (paper §IV-A).

/// Key length used across all experiments.
pub const KEY_LEN: usize = 24;

/// Encode key id `i` as a 24-byte key: a 4-byte prefix plus a 20-digit
/// zero-padded decimal. Lexicographic order equals numeric order.
pub fn encode_key(i: u64) -> Vec<u8> {
    format!("user{i:020}").into_bytes()
}

/// Decode a key produced by [`encode_key`].
pub fn decode_key(key: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(key).ok()?;
    s.strip_prefix("user")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_24_bytes() {
        assert_eq!(encode_key(0).len(), KEY_LEN);
        assert_eq!(encode_key(u64::MAX).len(), KEY_LEN);
    }

    #[test]
    fn roundtrip() {
        for i in [0u64, 1, 999, 123_456_789, u64::MAX] {
            assert_eq!(decode_key(&encode_key(i)), Some(i));
        }
        assert_eq!(decode_key(b"junk"), None);
    }

    #[test]
    fn lexicographic_equals_numeric() {
        let mut keys: Vec<Vec<u8>> = (0..1000).map(|i| encode_key(i * 7919)).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        keys.sort_by_key(|k| decode_key(k).unwrap());
        assert_eq!(keys, sorted);
    }
}
