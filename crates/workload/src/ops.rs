//! Deterministic client op streams and an ack oracle, for driving a
//! server over the network.
//!
//! Each simulated client owns a disjoint **key stripe**, so concurrent
//! clients never write the same key and every client can verify its
//! own acknowledged writes exactly — no cross-client races to reason
//! about. An [`OpStream`] yields a reproducible op sequence (same
//! seed → same ops); the driver applies each op and reports successes
//! to an [`AckOracle`], which accumulates the expected final state of
//! the stripe. After a shutdown + reopen, [`AckOracle::check`]
//! replays the expectations against the store: any acknowledged write
//! that is missing or stale is a durability bug.

use crate::dist::KeyDist;
use crate::keys::encode_key;
use crate::values::{make_value, ValueGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One operation to issue against the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Point lookup.
    Get {
        /// Encoded key.
        key: Vec<u8>,
    },
    /// Insert or overwrite.
    Put {
        /// Encoded key.
        key: Vec<u8>,
        /// Deterministic value (key id + version baked in).
        value: Vec<u8>,
    },
    /// Delete.
    Delete {
        /// Encoded key.
        key: Vec<u8>,
    },
    /// Short bounded scan.
    Scan {
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Maximum entries.
        limit: u32,
    },
}

impl ClientOp {
    /// Short label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            ClientOp::Get { .. } => "get",
            ClientOp::Put { .. } => "put",
            ClientOp::Delete { .. } => "delete",
            ClientOp::Scan { .. } => "scan",
        }
    }

    /// True for ops that mutate the store.
    pub fn is_write(&self) -> bool {
        matches!(self, ClientOp::Put { .. } | ClientOp::Delete { .. })
    }
}

/// Relative op-class weights.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of point reads.
    pub get: u32,
    /// Weight of puts.
    pub put: u32,
    /// Weight of deletes.
    pub delete: u32,
    /// Weight of short scans.
    pub scan: u32,
}

impl OpMix {
    /// 90% reads with a write trickle — the serving-path mix.
    pub fn read_heavy() -> OpMix {
        OpMix {
            get: 90,
            put: 8,
            delete: 1,
            scan: 1,
        }
    }

    /// Ingest-dominated: 80% puts with deletes and verification reads.
    pub fn write_heavy() -> OpMix {
        OpMix {
            get: 10,
            put: 80,
            delete: 8,
            scan: 2,
        }
    }

    fn total(&self) -> u32 {
        self.get + self.put + self.delete + self.scan
    }
}

/// A deterministic op generator over one client's key stripe.
pub struct OpStream {
    rng: StdRng,
    mix: OpMix,
    stripe_base: u64,
    stripe_len: u64,
    dist: KeyDist,
    values: ValueGen,
    /// Per-key put counter: versions increase monotonically so stale
    /// values are distinguishable from fresh ones.
    versions: HashMap<u64, u64>,
}

impl OpStream {
    /// Stream for client `client_id`: keys `[client_id * stripe_len,
    /// (client_id + 1) * stripe_len)`, Zipfian-skewed within the
    /// stripe. Same `(seed, client_id, stripe_len, mix)` → same ops.
    pub fn new(seed: u64, client_id: u64, stripe_len: u64, mix: OpMix) -> OpStream {
        assert!(stripe_len > 0, "stripe must hold at least one key");
        assert!(mix.total() > 0, "op mix must have positive weight");
        OpStream {
            // Distinct, deterministic per client.
            rng: StdRng::seed_from_u64(seed ^ client_id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            mix,
            stripe_base: client_id * stripe_len,
            stripe_len,
            dist: KeyDist::zipfian(stripe_len, 0.99),
            values: ValueGen::mixed_ratio(9, 1),
            versions: HashMap::new(),
        }
    }

    /// Key id (within the global space) for a local stripe offset.
    fn key_id(&mut self) -> u64 {
        self.stripe_base + self.dist.next(&mut self.rng, self.stripe_len)
    }

    /// Produce the next op.
    pub fn next_op(&mut self) -> ClientOp {
        let mut pick = self.rng.gen_range(0..self.mix.total());
        if pick < self.mix.get {
            return ClientOp::Get {
                key: encode_key(self.key_id()),
            };
        }
        pick -= self.mix.get;
        if pick < self.mix.put {
            let id = self.key_id();
            let version = {
                let v = self.versions.entry(id).or_insert(0);
                *v += 1;
                *v
            };
            let size = self.values.next_size(&mut self.rng);
            return ClientOp::Put {
                value: make_value(id, version, size),
                key: encode_key(id),
            };
        }
        pick -= self.mix.put;
        if pick < self.mix.delete {
            return ClientOp::Delete {
                key: encode_key(self.key_id()),
            };
        }
        ClientOp::Scan {
            lo: encode_key(self.key_id()),
            limit: 1 + self.rng.gen_range(0..32),
        }
    }
}

/// Expected final state of one client's stripe, built from
/// acknowledged writes only.
#[derive(Default)]
pub struct AckOracle {
    /// key → `Some(value)` for an acked put, `None` for an acked
    /// delete; unacked ops leave no entry.
    expected: HashMap<Vec<u8>, Option<Vec<u8>>>,
    acked_writes: u64,
}

impl AckOracle {
    /// Empty oracle.
    pub fn new() -> AckOracle {
        AckOracle::default()
    }

    /// Record a successfully acknowledged op. Reads are ignored.
    pub fn ack(&mut self, op: &ClientOp) {
        match op {
            ClientOp::Put { key, value } => {
                self.expected.insert(key.clone(), Some(value.clone()));
                self.acked_writes += 1;
            }
            ClientOp::Delete { key } => {
                self.expected.insert(key.clone(), None);
                self.acked_writes += 1;
            }
            ClientOp::Get { .. } | ClientOp::Scan { .. } => {}
        }
    }

    /// Number of acknowledged writes recorded.
    pub fn acked_writes(&self) -> u64 {
        self.acked_writes
    }

    /// Number of keys with an expectation.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// True if no writes were acked.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Verify every expectation against a point-lookup function
    /// (typically a freshly reopened store). Returns the number of
    /// keys checked, or a description of the first divergence.
    pub fn check(&self, mut lookup: impl FnMut(&[u8]) -> Option<Vec<u8>>) -> Result<usize, String> {
        for (key, want) in &self.expected {
            let got = lookup(key);
            if got != *want {
                return Err(format!(
                    "acked write lost: key {:?} expected {} got {}",
                    String::from_utf8_lossy(key),
                    match want {
                        Some(v) => format!("{} bytes", v.len()),
                        None => "deleted".to_string(),
                    },
                    match got {
                        Some(v) => format!("{} bytes", v.len()),
                        None => "absent".to_string(),
                    },
                ));
            }
        }
        Ok(self.expected.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = OpStream::new(42, 3, 1000, OpMix::write_heavy());
        let mut b = OpStream::new(42, 3, 1000, OpMix::write_heavy());
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn stripes_are_disjoint() {
        let mut a = OpStream::new(7, 0, 100, OpMix::write_heavy());
        let mut b = OpStream::new(7, 1, 100, OpMix::write_heavy());
        let key_of = |op: &ClientOp| match op {
            ClientOp::Get { key }
            | ClientOp::Put { key, .. }
            | ClientOp::Delete { key }
            | ClientOp::Scan { lo: key, .. } => crate::keys::decode_key(key).unwrap(),
        };
        for _ in 0..500 {
            assert!(key_of(&a.next_op()) < 100);
            let k = key_of(&b.next_op());
            assert!((100..200).contains(&k));
        }
    }

    #[test]
    fn mix_weights_shape_the_stream() {
        let mut s = OpStream::new(1, 0, 1000, OpMix::read_heavy());
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..2000 {
            if s.next_op().is_write() {
                writes += 1;
            } else {
                reads += 1;
            }
        }
        assert!(
            reads > writes * 4,
            "read-heavy mix produced {reads} reads vs {writes} writes"
        );
    }

    #[test]
    fn put_versions_increase_per_key() {
        let mut s = OpStream::new(
            9,
            0,
            1,
            OpMix {
                get: 0,
                put: 1,
                delete: 0,
                scan: 0,
            },
        );
        let mut last = Vec::new();
        for _ in 0..10 {
            if let ClientOp::Put { value, .. } = s.next_op() {
                assert_ne!(value, last, "versions must change the value bytes");
                last = value;
            }
        }
    }

    #[test]
    fn oracle_tracks_last_acked_state_only() {
        let mut o = AckOracle::new();
        let k = encode_key(5);
        o.ack(&ClientOp::Put {
            key: k.clone(),
            value: b"v1".to_vec(),
        });
        o.ack(&ClientOp::Get { key: k.clone() });
        o.ack(&ClientOp::Put {
            key: k.clone(),
            value: b"v2".to_vec(),
        });
        assert_eq!(o.acked_writes(), 2);
        assert_eq!(o.check(|_| Some(b"v2".to_vec())), Ok(1));
        assert!(o.check(|_| Some(b"v1".to_vec())).is_err());
        o.ack(&ClientOp::Delete { key: k });
        assert_eq!(o.check(|_| None), Ok(1));
        assert!(o.check(|_| Some(b"v2".to_vec())).is_err());
    }
}
