//! Follower workload: one writer, N change-stream subscribers.
//!
//! YCSB-D's "read latest" pattern, restated for CDC: a writer appends
//! fresh records while followers tail the change stream, and the
//! interesting numbers are how fast a cold follower catches up on a
//! backlog and how far live followers trail the commit head. Three
//! phases:
//!
//! 1. **Preload** — the writer commits a backlog before any follower
//!    exists (timed: baseline write throughput).
//! 2. **Catch-up** — every follower subscribes from the oldest change
//!    and drains the backlog in parallel (timed per follower: replay
//!    throughput).
//! 3. **Live tail** — the writer commits a second batch while the
//!    followers poll; each poll samples the stream's reported lag into
//!    a histogram (lag distribution + tail throughput).
//!
//! The driver is engine-agnostic: the writer is a closure and each
//! follower is a [`ChangeTail`], so the bench adapts an in-process
//! engine stream or a wire client without this crate depending on
//! either.

use scavenger_util::hist::Histogram;
use scavenger_util::Result;

/// One follower's view of the change feed.
pub trait ChangeTail: Send {
    /// Poll up to `max` events; returns `(delivered, lag_after_poll)`.
    fn poll_tail(&mut self, max: usize) -> Result<(u64, u64)>;
}

/// Shape of one follower run.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Backlog committed before any follower subscribes.
    pub preload_ops: u64,
    /// Ops committed while the followers tail live.
    pub live_ops: u64,
    /// Concurrent followers.
    pub subscribers: usize,
    /// Events requested per poll.
    pub poll_chunk: usize,
}

impl Default for FollowerConfig {
    fn default() -> FollowerConfig {
        FollowerConfig {
            preload_ops: 30_000,
            live_ops: 30_000,
            subscribers: 4,
            poll_chunk: 512,
        }
    }
}

/// Per-follower outcome.
#[derive(Debug)]
pub struct SubscriberReport {
    /// Backlog events replayed in phase 2.
    pub catchup_events: u64,
    /// Phase-2 wall time.
    pub catchup_secs: f64,
    /// Live events observed in phase 3.
    pub tail_events: u64,
    /// Phase-3 wall time (writer + drain).
    pub tail_secs: f64,
    /// Stream-reported lag sampled after every live poll.
    pub lag: Histogram,
}

/// Whole-run outcome.
#[derive(Debug)]
pub struct FollowerReport {
    /// Ops the writer committed (both phases).
    pub write_ops: u64,
    /// Phase-1 wall time (uncontended writes).
    pub preload_secs: f64,
    /// One report per follower.
    pub subs: Vec<SubscriberReport>,
}

impl FollowerReport {
    /// Slowest follower's catch-up throughput, events/s — the number
    /// that bounds how fast a rebuilt replica becomes serviceable.
    pub fn catchup_floor_events_s(&self) -> f64 {
        self.subs
            .iter()
            .map(|s| s.catchup_events as f64 / s.catchup_secs.max(1e-9))
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst p99 lag (in sequence numbers) any follower reported while
    /// tailing live.
    pub fn worst_lag_p99(&self) -> f64 {
        self.subs
            .iter()
            .filter(|s| s.lag.count() > 0)
            .map(|s| s.lag.percentile(99.0))
            .fold(0.0, f64::max)
    }

    /// Writer throughput during the uncontended preload, ops/s.
    pub fn preload_ops_s(&self) -> f64 {
        (self.write_ops / 2).max(1) as f64 / self.preload_secs.max(1e-9)
    }
}

/// Consecutive empty polls before a follower declares the stream
/// stalled (at 1 ms per empty poll, ~30 s of silence).
const STALL_POLLS: u32 = 30_000;

/// Deterministic follower-workload key (fresh key per op, YCSB-D's
/// insert stream).
pub fn follower_key(op: u64) -> Vec<u8> {
    format!("follow{op:012}").into_bytes()
}

/// Deterministic payload for `op`, `len` bytes.
pub fn follower_value(op: u64, len: usize) -> Vec<u8> {
    let mut v = op.to_le_bytes().to_vec();
    v.resize(len.max(8), (op % 251) as u8);
    v
}

/// Run the three phases. `write(op)` commits one record; `make_tail()`
/// subscribes one follower from the oldest change (called once per
/// follower, after the preload).
pub fn run_follower<T, W, F>(
    cfg: &FollowerConfig,
    mut write: W,
    mut make_tail: F,
) -> Result<FollowerReport>
where
    T: ChangeTail,
    W: FnMut(u64) -> Result<()> + Send,
    F: FnMut() -> Result<T>,
{
    use std::time::Instant;

    // Phase 1: preload backlog, no subscribers registered.
    let t0 = Instant::now();
    for op in 0..cfg.preload_ops {
        write(op)?;
    }
    let preload_secs = t0.elapsed().as_secs_f64();

    let mut tails = Vec::with_capacity(cfg.subscribers);
    for _ in 0..cfg.subscribers {
        tails.push(make_tail()?);
    }

    // Phase 2: parallel catch-up on the backlog.
    let backlog = cfg.preload_ops;
    let chunk = cfg.poll_chunk.max(1);
    let catchups: Vec<Result<(u64, f64, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tails
            .into_iter()
            .map(|mut tail| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut seen = 0u64;
                    let mut empty_polls = 0u32;
                    while seen < backlog {
                        let (n, _lag) = tail.poll_tail(chunk)?;
                        seen += n;
                        if n == 0 {
                            // The writer is done, so an empty poll can
                            // only mean lost history — fail instead of
                            // spinning forever (e.g. the subscriber was
                            // created after retention reclaimed the
                            // backlog's WAL segments).
                            empty_polls += 1;
                            if empty_polls > STALL_POLLS {
                                return Err(scavenger_util::Error::internal(format!(
                                    "follower stalled catching up: {seen}/{backlog} events"
                                )));
                            }
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        } else {
                            empty_polls = 0;
                        }
                    }
                    Ok((seen, start.elapsed().as_secs_f64(), tail))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("catch-up follower panicked"))
            .collect()
    });
    let mut tails = Vec::with_capacity(cfg.subscribers);
    let mut subs = Vec::with_capacity(cfg.subscribers);
    for c in catchups {
        let (events, secs, tail) = c?;
        tails.push(tail);
        subs.push(SubscriberReport {
            catchup_events: events,
            catchup_secs: secs,
            tail_events: 0,
            tail_secs: 0.0,
            lag: Histogram::new(),
        });
    }

    // Phase 3: live tail — writer and followers run concurrently.
    let live = cfg.live_ops;
    let tail_runs: Vec<Result<(u64, f64, Histogram)>> = std::thread::scope(|scope| -> Result<_> {
        let writer = scope.spawn(move || -> Result<()> {
            for op in 0..live {
                write(cfg.preload_ops + op)?;
            }
            Ok(())
        });
        let handles: Vec<_> = tails
            .into_iter()
            .map(|mut tail| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut seen = 0u64;
                    let mut empty_polls = 0u32;
                    let mut lag_hist = Histogram::new();
                    while seen < live {
                        let (n, lag) = tail.poll_tail(chunk)?;
                        seen += n;
                        lag_hist.record(lag);
                        if n == 0 {
                            empty_polls += 1;
                            if empty_polls > STALL_POLLS {
                                return Err(scavenger_util::Error::internal(format!(
                                    "follower stalled tailing: {seen}/{live} events"
                                )));
                            }
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        } else {
                            empty_polls = 0;
                        }
                    }
                    Ok((seen, start.elapsed().as_secs_f64(), lag_hist))
                })
            })
            .collect();
        writer.join().expect("writer panicked")?;
        Ok(handles
            .into_iter()
            .map(|h| h.join().expect("live follower panicked"))
            .collect::<Vec<_>>())
    })?;
    for (sub, run) in subs.iter_mut().zip(tail_runs) {
        let (events, secs, lag) = run?;
        sub.tail_events = events;
        sub.tail_secs = secs;
        sub.lag = lag;
    }

    Ok(FollowerReport {
        write_ops: cfg.preload_ops + cfg.live_ops,
        preload_secs,
        subs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// In-memory "change log": the writer pushes op ids, tails consume
    /// from their own cursor.
    struct FakeTail {
        log: Arc<Mutex<Vec<u64>>>,
        pos: usize,
    }

    impl ChangeTail for FakeTail {
        fn poll_tail(&mut self, max: usize) -> Result<(u64, u64)> {
            let log = self.log.lock();
            let n = (log.len() - self.pos).min(max);
            self.pos += n;
            Ok((n as u64, (log.len() - self.pos) as u64))
        }
    }

    #[test]
    fn phases_account_every_event_exactly_once() {
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let cfg = FollowerConfig {
            preload_ops: 500,
            live_ops: 700,
            subscribers: 3,
            poll_chunk: 64,
        };
        let wlog = log.clone();
        let report = run_follower(
            &cfg,
            move |op| {
                wlog.lock().push(op);
                Ok(())
            },
            || {
                Ok(FakeTail {
                    log: log.clone(),
                    pos: 0,
                })
            },
        )
        .unwrap();
        assert_eq!(report.write_ops, 1200);
        assert_eq!(report.subs.len(), 3);
        for sub in &report.subs {
            assert_eq!(sub.catchup_events, 500);
            assert_eq!(sub.tail_events, 700);
            assert!(sub.lag.count() > 0);
        }
        assert!(report.catchup_floor_events_s() > 0.0);
        assert!(report.preload_ops_s() > 0.0);
    }

    #[test]
    fn deterministic_keys_and_values() {
        assert_eq!(follower_key(7), b"follow000000000007".to_vec());
        let v = follower_value(9, 64);
        assert_eq!(v.len(), 64);
        assert_eq!(&v[..8], &9u64.to_le_bytes());
        assert_eq!(follower_value(9, 64), v);
    }
}
