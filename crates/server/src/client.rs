//! A blocking client for the framed protocol.
//!
//! One [`Client`] wraps one TCP connection; requests are synchronous
//! (send a frame, read the reply). Error frames come back as typed
//! [`Error`]s via [`WireCode::to_error`], so `err.is_read_only()`
//! detects a degraded server and [`WireCode::of`] recovers the exact
//! wire code (`RATE_LIMITED`, `PIN_EXPIRED`, ...) client-side. Writes
//! return the engine's [`WriteReceipt`] reconstructed from the
//! [`Response::Written`] frame, so a caller can check `synced` (and
//! observe group-commit amortization through `group_len`) end to end.

use crate::protocol::{
    read_frame, write_frame, BatchOp, Request, Response, SubscribeSpec, WireChange, WireCode,
    DEFAULT_MAX_FRAME,
};
use scavenger::WriteReceipt;
use scavenger_util::{Error, Result};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a scavenger server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connect to a server's data-plane address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Send one request and read one response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response> {
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(payload) => Response::decode(&payload),
            None => Err(Error::io("server closed the connection")),
        }
    }

    fn expect_done(resp: Response) -> Result<()> {
        match resp {
            Response::Done => Ok(()),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    fn expect_written(resp: Response) -> Result<WriteReceipt> {
        match resp {
            Response::Written {
                seq,
                group_len,
                synced,
            } => Ok(WriteReceipt {
                seq,
                group_len,
                synced,
            }),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Point lookup against the latest state.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_impl(None, key)
    }

    /// Point lookup through a pinned server-side snapshot.
    pub fn get_pinned(&mut self, snap: u64, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_impl(Some(snap), key)
    }

    fn get_impl(&mut self, snap: Option<u64>, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.request(&Request::Get {
            snap,
            key: key.to_vec(),
        })? {
            Response::Value { value } => Ok(value),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Insert or overwrite one key (durable: `sync = true`).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<WriteReceipt> {
        self.put_sync(key, value, true)
    }

    /// Insert or overwrite one key with an explicit sync flag.
    pub fn put_sync(&mut self, key: &[u8], value: &[u8], sync: bool) -> Result<WriteReceipt> {
        let resp = self.request(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
            sync,
        })?;
        Self::expect_written(resp)
    }

    /// Delete one key (durable: `sync = true`).
    pub fn delete(&mut self, key: &[u8]) -> Result<WriteReceipt> {
        self.delete_sync(key, true)
    }

    /// Delete one key with an explicit sync flag.
    pub fn delete_sync(&mut self, key: &[u8], sync: bool) -> Result<WriteReceipt> {
        let resp = self.request(&Request::Delete {
            key: key.to_vec(),
            sync,
        })?;
        Self::expect_written(resp)
    }

    /// Apply an atomic batch (durable: `sync = true`).
    pub fn write(&mut self, ops: Vec<BatchOp>) -> Result<WriteReceipt> {
        self.write_sync(ops, true)
    }

    /// Apply an atomic batch with an explicit sync flag.
    pub fn write_sync(&mut self, ops: Vec<BatchOp>, sync: bool) -> Result<WriteReceipt> {
        let resp = self.request(&Request::Write { ops, sync })?;
        Self::expect_written(resp)
    }

    /// Bounded scan; collects the streamed chunks into one vector.
    /// `limit = 0` means unlimited.
    pub fn scan(
        &mut self,
        snap: Option<u64>,
        lo: &[u8],
        hi: Option<&[u8]>,
        limit: u32,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        write_frame(
            &mut self.stream,
            &Request::Scan {
                snap,
                lo: lo.to_vec(),
                hi: hi.map(|h| h.to_vec()),
                limit,
            }
            .encode(),
        )?;
        let mut out = Vec::new();
        loop {
            match self.read_response()? {
                Response::ScanChunk { entries, last } => {
                    out.extend(entries);
                    if last {
                        return Ok(out);
                    }
                }
                Response::Err { code, message } => return Err(code.to_error(&message)),
                other => {
                    return Err(Error::internal(format!("unexpected response {other:?}")));
                }
            }
        }
    }

    /// Open a server-side snapshot; returns its id.
    pub fn snap_open(&mut self) -> Result<u64> {
        match self.request(&Request::SnapOpen)? {
            Response::SnapId { id } => Ok(id),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Close a server-side snapshot.
    pub fn snap_close(&mut self, id: u64) -> Result<()> {
        let resp = self.request(&Request::SnapClose { id })?;
        Self::expect_done(resp)
    }

    /// Flush the engine's memtables.
    pub fn flush(&mut self) -> Result<()> {
        let resp = self.request(&Request::Flush)?;
        Self::expect_done(resp)
    }

    /// Run one GC pass; returns `(jobs, files_collected,
    /// records_rewritten, bytes_reclaimed)`.
    pub fn run_gc(&mut self) -> Result<(u32, u64, u64, u64)> {
        match self.request(&Request::RunGc)? {
            Response::GcDone {
                jobs,
                files_collected,
                records_rewritten,
                bytes_reclaimed,
            } => Ok((jobs, files_collected, records_rewritten, bytes_reclaimed)),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetch the Prometheus exposition text over the data plane.
    pub fn stats(&mut self) -> Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats { text } => Ok(text),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Ask the server to begin its graceful shutdown.
    pub fn shutdown(&mut self) -> Result<()> {
        let resp = self.request(&Request::Shutdown)?;
        Self::expect_done(resp)
    }

    // ---------------- transactions ----------------

    /// Begin a server-side optimistic transaction; returns its id.
    /// The transaction follows snapshot TTL rules: left idle past the
    /// server's `pin_ttl` it expires (discarding its buffered writes)
    /// and further ops report `PIN_EXPIRED`.
    pub fn txn_begin(&mut self) -> Result<u64> {
        match self.request(&Request::TxnBegin)? {
            Response::TxnId { id } => Ok(id),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Read a key inside a transaction (joins its read set).
    pub fn txn_get(&mut self, txn: u64, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.request(&Request::TxnGet {
            txn,
            key: key.to_vec(),
        })? {
            Response::Value { value } => Ok(value),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Buffer a put inside a transaction.
    pub fn txn_put(&mut self, txn: u64, key: &[u8], value: &[u8]) -> Result<()> {
        let resp = self.request(&Request::TxnPut {
            txn,
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        Self::expect_done(resp)
    }

    /// Buffer a delete inside a transaction.
    pub fn txn_delete(&mut self, txn: u64, key: &[u8]) -> Result<()> {
        let resp = self.request(&Request::TxnDelete {
            txn,
            key: key.to_vec(),
        })?;
        Self::expect_done(resp)
    }

    /// Commit a transaction (durable: `sync = true`). On conflict the
    /// error satisfies [`Error::is_txn_conflict`] (also
    /// [`is_txn_conflict`]) and nothing was written — re-run the
    /// transaction from [`txn_begin`](Client::txn_begin).
    pub fn txn_commit(&mut self, txn: u64) -> Result<WriteReceipt> {
        self.txn_commit_sync(txn, true)
    }

    /// Commit a transaction with an explicit sync flag.
    pub fn txn_commit_sync(&mut self, txn: u64, sync: bool) -> Result<WriteReceipt> {
        let resp = self.request(&Request::TxnCommit { txn, sync })?;
        Self::expect_written(resp)
    }

    /// Discard a transaction without writing.
    pub fn txn_rollback(&mut self, txn: u64) -> Result<()> {
        let resp = self.request(&Request::TxnRollback { txn })?;
        Self::expect_done(resp)
    }

    // ---------------- change streams ----------------

    /// Open a server-side change stream; returns its id. The stream
    /// follows snapshot TTL rules: left unpolled past the server's
    /// `pin_ttl` it expires (releasing its pinned WAL history) and
    /// further polls report `PIN_EXPIRED` — re-subscribe with the last
    /// resume token to continue without loss.
    pub fn subscribe_changes(&mut self, from: SubscribeSpec) -> Result<u64> {
        match self.request(&Request::SubscribeChanges { from })? {
            Response::StreamId { id } => Ok(id),
            Response::Err { code, message } => Err(code.to_error(&message)),
            other => Err(Error::internal(format!("unexpected response {other:?}"))),
        }
    }

    /// Drain pending changes from a stream, collecting the chunked
    /// frames into one [`ChangeBatch`]. `max = 0` means the server
    /// default (deliver until caught up). An empty batch means the
    /// stream is caught up, not ended.
    pub fn poll_changes(&mut self, stream: u64, max: u32) -> Result<ChangeBatch> {
        write_frame(
            &mut self.stream,
            &Request::PollChanges { stream, max }.encode(),
        )?;
        let mut batch = ChangeBatch {
            events: Vec::new(),
            resume: Vec::new(),
            lag: 0,
        };
        loop {
            match self.read_response()? {
                Response::ChangeChunk {
                    events,
                    resume,
                    lag,
                    last,
                } => {
                    batch.events.extend(events);
                    batch.resume = resume;
                    batch.lag = lag;
                    if last {
                        return Ok(batch);
                    }
                }
                Response::Err { code, message } => return Err(code.to_error(&message)),
                other => {
                    return Err(Error::internal(format!("unexpected response {other:?}")));
                }
            }
        }
    }

    /// Close a change stream, releasing its pinned WAL history.
    pub fn close_stream(&mut self, stream: u64) -> Result<()> {
        let resp = self.request(&Request::CloseStream { stream })?;
        Self::expect_done(resp)
    }
}

/// One `poll_changes` reply: the delivered events plus the position to
/// resume from if the connection (or the stream's TTL) is lost.
#[derive(Debug, Clone)]
pub struct ChangeBatch {
    /// Committed change events, in stream order.
    pub events: Vec<WireChange>,
    /// Encoded resume token for the position after the last event.
    pub resume: Vec<u8>,
    /// Sequence numbers still trailing the commit head after this poll.
    pub lag: u64,
}

/// True if `err` is a rate-limit rejection from the server.
pub fn is_rate_limited(err: &Error) -> bool {
    WireCode::of(err) == Some(WireCode::RateLimited)
}

/// True if `err` reports an unknown/expired snapshot pin.
pub fn is_pin_expired(err: &Error) -> bool {
    WireCode::of(err) == Some(WireCode::PinExpired)
}

/// True if `err` is a transaction-conflict rejection (the typed
/// [`Error::TxnConflict`] also survives the wire, so
/// `err.is_txn_conflict()` works equally).
pub fn is_txn_conflict(err: &Error) -> bool {
    WireCode::of(err) == Some(WireCode::TxnConflict)
}
