//! `scavenger-server`: the network service layer over the unified
//! [`Engine`](scavenger::Engine) surface.
//!
//! The storage engine below this crate is a library; this crate makes
//! it a service. One generic [`Server`] hosts any engine handle —
//! a single [`Db`](scavenger::Db) or a sharded
//! [`DbShards`](scavenger::DbShards), chosen at startup — behind a
//! hand-rolled length-prefixed binary protocol on plain TCP
//! (`std::net` + threads; the workspace builds without a registry, so
//! there is no async runtime or protobuf to lean on).
//!
//! Module map:
//!
//! - [`protocol`] — frame codec, request/response types, and the
//!   exhaustive [`Error`](scavenger_util::Error) → [`WireCode`]
//!   mapping (typed errors on the wire, including `DEGRADED` for a
//!   read-only engine).
//! - [`service`] — the server itself: accept loop, connection cap,
//!   token-bucket rate limiting, slow-query log, pin-table-backed
//!   snapshots, graceful drain, and the `/metrics` HTTP listener.
//! - [`client`] — a blocking client used by the load generator, the
//!   integration tests, and anyone scripting against the server.
//! - [`pins`] — TTL'd server-side snapshot table.
//! - [`rate_limit`] — the token bucket.
//! - [`metrics`] — service-layer counters and Prometheus rendering.

#![deny(missing_docs)]

pub mod client;
pub mod metrics;
pub mod pins;
pub mod protocol;
pub mod rate_limit;
pub mod service;

pub use client::{is_pin_expired, is_rate_limited, ChangeBatch, Client};
pub use metrics::{render_metrics, ServerMetrics};
pub use pins::PinTable;
pub use protocol::{BatchOp, Request, Response, SubscribeSpec, WireChange, WireCode};
pub use rate_limit::TokenBucket;
pub use service::{scrape_metrics, ServeEngine, Server, ServerConfig, ServerHandle};
