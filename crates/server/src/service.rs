//! The TCP server: accept loop, connection threads, graceful drain.
//!
//! [`Server::start`] takes any engine handle behind the
//! [`ServeEngine`] bound — [`Db`](scavenger::Db) and
//! [`DbShards`](scavenger::DbShards) both qualify — and serves the
//! framed protocol from [`crate::protocol`] on a TCP listener, with an
//! optional second listener speaking just enough HTTP/1.0 to answer
//! `GET /metrics` with Prometheus exposition text.
//!
//! Production behaviors, in the order a request meets them:
//!
//! 1. **Connection cap** — at accept time, a connection over
//!    [`ServerConfig::max_conns`] gets a typed `CONN_LIMIT` error
//!    frame and is closed; it never reaches a worker thread.
//! 2. **Rate limiting** — every data op takes a token from the global
//!    bucket *and* the connection's own bucket; an empty bucket means
//!    an immediate `RATE_LIMITED` error frame (no queueing, no sleep).
//! 3. **Slow-query log** — any request slower than
//!    [`ServerConfig::slow_query_threshold`] is logged to stderr with
//!    its op, key size, and latency, and counted in `/metrics`.
//! 4. **Graceful drain** — shutdown (wire request or
//!    [`ServerHandle::shutdown_and_wait`]) stops the accept loop,
//!    lets in-flight requests finish (idle connections notice the flag
//!    at their next read-timeout tick), answers anything that arrives
//!    after the flag with `SHUTTING_DOWN`, joins every worker, drops
//!    the pin table (releasing GC read points), and flushes the engine
//!    before returning — acknowledged writes survive a reopen.

use crate::metrics::{render_metrics, ServerMetrics};
use crate::pins::PinTable;
use crate::protocol::{
    write_frame, FrameBuffer, Request, Response, SubscribeSpec, WireChange, WireCode,
    DEFAULT_MAX_FRAME,
};
use crate::rate_limit::TokenBucket;
use parking_lot::Mutex;
use scavenger::{
    Bytes, ChangeOp, ChangeRecord, ChangeStream, ChangeSubscriber, Engine, PinnedReader,
    ResumeToken, SubscribeFrom, Transaction, Transactional, WriteBatch, WriteOptions, WriteReceipt,
};
use scavenger_util::{Error, Result};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engines the server can host: the full [`Engine`] surface plus
/// optimistic transactions ([`Transactional`]) and change streams
/// ([`ChangeSubscriber`]), cloneable across connection threads, with
/// snapshots, transaction views, and change streams that may live in
/// the shared pin tables.
pub trait ServeEngine:
    Engine + Transactional + ChangeSubscriber + Clone + Send + Sync + 'static
where
    Self::Snap: Send + Sync,
    Self::View: Send,
{
}

impl<E> ServeEngine for E
where
    E: Engine + Transactional + ChangeSubscriber + Clone + Send + Sync + 'static,
    E::Snap: Send + Sync,
    E::View: Send,
{
}

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Data-plane listen address (use port 0 to let the OS pick).
    pub addr: String,
    /// Metrics HTTP listen address, or `None` to disable the endpoint.
    pub metrics_addr: Option<String>,
    /// Maximum concurrent connections; further accepts are rejected
    /// with `CONN_LIMIT`.
    pub max_conns: usize,
    /// Global sustained requests/second across all connections
    /// (`0.0` = unlimited).
    pub global_rate: f64,
    /// Global burst size.
    pub global_burst: f64,
    /// Per-connection sustained requests/second (`0.0` = unlimited).
    pub conn_rate: f64,
    /// Per-connection burst size.
    pub conn_burst: f64,
    /// Requests at or above this latency are logged and counted.
    pub slow_query_threshold: Duration,
    /// Idle server-side snapshots expire after this long.
    pub pin_ttl: Duration,
    /// Maximum frame payload accepted or produced.
    pub max_frame: usize,
    /// Entries per streamed `ScanChunk` frame.
    pub scan_chunk: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            max_conns: 256,
            global_rate: 0.0,
            global_burst: 0.0,
            conn_rate: 0.0,
            conn_burst: 0.0,
            slow_query_threshold: Duration::from_millis(100),
            pin_ttl: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            scan_chunk: 256,
        }
    }
}

/// How often idle loops re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(20);

struct Shared<E: ServeEngine>
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    engine: E,
    cfg: ServerConfig,
    metrics: Arc<ServerMetrics>,
    pins: PinTable<E::Snap>,
    /// Server-side transactions, keyed like snapshots (clients cannot
    /// hold a [`Transaction`] across the network, so the server does).
    /// The inner `Option` lets commit/rollback *take* the transaction
    /// out while other requests still resolve the id to a typed error
    /// instead of a race.
    txns: PinTable<Mutex<Option<Transaction<E>>>>,
    /// Server-side change streams, keyed like snapshots. Each live
    /// stream pins retained WAL history in the engine, so the same TTL
    /// sweep that bounds abandoned snapshots bounds abandoned streams.
    streams: PinTable<Mutex<E::Stream>>,
    global_bucket: TokenBucket,
    shutdown: Arc<AtomicBool>,
}

/// A running server. Dropping the handle without calling
/// [`shutdown_and_wait`](ServerHandle::shutdown_and_wait) requests
/// shutdown but does not wait for the drain.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    accept_join: Option<JoinHandle<()>>,
    metrics_join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bound data-plane address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bound metrics address, if the endpoint is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The server's live counters (shared with the worker threads).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// True once shutdown has been requested (wire or local).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown and block until the drain completes: accept
    /// loop stopped, every connection joined, pin table dropped,
    /// engine flushed.
    pub fn shutdown_and_wait(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    /// Block until the server shuts down by itself (a wire `Shutdown`
    /// request, typically). Used by the binary's main thread.
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
        if let Some(j) = self.metrics_join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }
}

/// The server entry point; see the module docs for behavior.
pub struct Server;

impl Server {
    /// Bind the listeners and spawn the accept loop. Returns once the
    /// server is ready to take connections.
    pub fn start<E: ServeEngine>(engine: E, cfg: ServerConfig) -> Result<ServerHandle>
    where
        E::Snap: Send + Sync,
        E::View: Send,
    {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        let shared = Arc::new(Shared {
            global_bucket: TokenBucket::new(cfg.global_rate, cfg.global_burst),
            pins: PinTable::new(cfg.pin_ttl),
            txns: PinTable::new(cfg.pin_ttl),
            streams: PinTable::new(cfg.pin_ttl),
            engine,
            metrics: metrics.clone(),
            shutdown: shutdown.clone(),
            cfg,
        });

        let accept_shared = shared.clone();
        let accept_join = std::thread::Builder::new()
            .name("scv-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| Error::io(format!("spawn accept thread: {e}")))?;

        let metrics_join = match metrics_listener {
            Some(l) => {
                let m_shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("scv-metrics".to_string())
                        .spawn(move || metrics_loop(l, m_shared))
                        .map_err(|e| Error::io(format!("spawn metrics thread: {e}")))?,
                )
            }
            None => None,
        };

        Ok(ServerHandle {
            addr,
            metrics_addr,
            shutdown,
            metrics,
            accept_join: Some(accept_join),
            metrics_join: Some(metrics_join).flatten(),
        })
    }
}

fn accept_loop<E: ServeEngine>(listener: TcpListener, shared: Arc<Shared<E>>)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                workers.retain(|j| !j.is_finished());
                let m = &shared.metrics;
                let admitted = m
                    .conns_active
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                        if (n as usize) < shared.cfg.max_conns {
                            Some(n + 1)
                        } else {
                            None
                        }
                    })
                    .is_ok();
                if !admitted {
                    m.conns_rejected.fetch_add(1, Ordering::Relaxed);
                    reject_conn(stream);
                    continue;
                }
                m.conns_total.fetch_add(1, Ordering::Relaxed);
                let conn_shared = shared.clone();
                match std::thread::Builder::new()
                    .name("scv-conn".to_string())
                    .spawn(move || {
                        serve_conn(stream, &conn_shared);
                        conn_shared
                            .metrics
                            .conns_active
                            .fetch_sub(1, Ordering::SeqCst);
                    }) {
                    Ok(j) => workers.push(j),
                    Err(_) => {
                        shared.metrics.conns_active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
    // Drain: workers notice the flag at their next tick and exit once
    // their in-flight request (if any) has been answered.
    for j in workers {
        let _ = j.join();
    }
    // All GC read points and pinned WAL history held on behalf of
    // clients are released before the final flush — including
    // uncommitted transactions, whose buffered writes are discarded (a
    // client that never committed has nothing durable to lose).
    shared.pins.clear();
    shared.txns.clear();
    shared.streams.clear();
    if let Err(e) = shared.engine.flush() {
        eprintln!("scavenger-server: flush on shutdown failed: {e}");
    }
}

/// Tell an over-cap client why it is being dropped: one typed error
/// frame, best-effort, then close.
fn reject_conn(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let payload = Response::error(WireCode::ConnLimit, "server at connection limit").encode();
    let _ = write_frame(&mut stream, &payload);
}

fn serve_conn<E: ServeEngine>(mut stream: TcpStream, shared: &Shared<E>)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let conn_bucket = TokenBucket::new(shared.cfg.conn_rate, shared.cfg.conn_burst);
    let mut frames = FrameBuffer::new(shared.cfg.max_frame);
    let mut read_buf = vec![0u8; 64 << 10];
    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => frames.extend(&read_buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) && frames.buffered() == 0 {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        loop {
            let payload = match frames.pop() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable after a bad length
                    // prefix: answer and close.
                    let _ = send(
                        &mut stream,
                        &Response::error(WireCode::Protocol, e.to_string()),
                    );
                    return;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                let _ = send(
                    &mut stream,
                    &Response::error(WireCode::ShuttingDown, "server is draining"),
                );
                return;
            }
            let req = match Request::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    // Opcode-level garbage: the stream itself is still
                    // framed correctly, but trust is gone — close.
                    let _ = send(
                        &mut stream,
                        &Response::error(WireCode::Protocol, e.to_string()),
                    );
                    return;
                }
            };
            if !handle_request(&mut stream, shared, &conn_bucket, req) {
                return;
            }
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> Result<()> {
    write_frame(stream, &resp.encode())
}

/// Put the engine's [`WriteReceipt`] on the wire.
fn written(r: WriteReceipt) -> Response {
    Response::Written {
        seq: r.seq,
        group_len: r.group_len,
        synced: r.synced,
    }
}

/// True if this op consumes rate-limit tokens (the data plane; control
/// and observability ops stay reachable on a saturated server).
fn is_data_op(req: &Request) -> bool {
    matches!(
        req,
        Request::Get { .. }
            | Request::Put { .. }
            | Request::Delete { .. }
            | Request::Write { .. }
            | Request::Scan { .. }
            | Request::TxnGet { .. }
            | Request::TxnPut { .. }
            | Request::TxnDelete { .. }
            | Request::TxnCommit { .. }
            | Request::SubscribeChanges { .. }
            | Request::PollChanges { .. }
    )
}

/// Charge one streamed-chunk frame against both buckets. The request's
/// own admission token covers the first chunk; every further `ScanChunk`
/// or `ChangeChunk` frame pays separately, so a single request cannot
/// smuggle an unbounded reply past the rate limiter.
fn take_chunk_token<E: ServeEngine>(shared: &Shared<E>, conn_bucket: &TokenBucket) -> bool
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    shared.global_bucket.try_take() && conn_bucket.try_take()
}

/// Handle one request; returns `false` when the connection should
/// close (shutdown request or write failure).
fn handle_request<E: ServeEngine>(
    stream: &mut TcpStream,
    shared: &Shared<E>,
    conn_bucket: &TokenBucket,
    req: Request,
) -> bool
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let m = &shared.metrics;
    if is_data_op(&req) && !(shared.global_bucket.try_take() && conn_bucket.try_take()) {
        m.rate_limited.fetch_add(1, Ordering::Relaxed);
        m.requests_err.fetch_add(1, Ordering::Relaxed);
        return send(
            stream,
            &Response::error(WireCode::RateLimited, "rate limit exceeded"),
        )
        .is_ok();
    }

    let label = req.label();
    let key_bytes = request_key_bytes(&req);
    let start = Instant::now();
    let keep_open = dispatch(stream, shared, conn_bucket, req);
    let elapsed = start.elapsed();

    m.record_latency(label, elapsed);
    if elapsed >= shared.cfg.slow_query_threshold {
        m.slow_queries.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "scavenger-server: slow query op={label} key_bytes={key_bytes} latency_us={}",
            elapsed.as_micros()
        );
    }
    keep_open
}

/// Key payload size for the slow-query log: key length for point ops,
/// total key bytes for batches, lower-bound length for scans.
fn request_key_bytes(req: &Request) -> usize {
    match req {
        Request::Get { key, .. }
        | Request::Put { key, .. }
        | Request::Delete { key, .. }
        | Request::TxnGet { key, .. }
        | Request::TxnPut { key, .. }
        | Request::TxnDelete { key, .. } => key.len(),
        Request::Write { ops, .. } => ops
            .iter()
            .map(|op| match op {
                crate::protocol::BatchOp::Put { key, .. }
                | crate::protocol::BatchOp::Delete { key } => key.len(),
            })
            .sum(),
        Request::Scan { lo, .. } => lo.len(),
        _ => 0,
    }
}

fn dispatch<E: ServeEngine>(
    stream: &mut TcpStream,
    shared: &Shared<E>,
    conn_bucket: &TokenBucket,
    req: Request,
) -> bool
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let m = &shared.metrics;
    let ok = |resp: Response, stream: &mut TcpStream| {
        if matches!(resp, Response::Err { .. }) {
            m.requests_err.fetch_add(1, Ordering::Relaxed);
        } else {
            m.requests_ok.fetch_add(1, Ordering::Relaxed);
        }
        send(stream, &resp).is_ok()
    };

    match req {
        Request::Ping => ok(Response::Pong, stream),
        Request::Get { snap, key } => {
            let result = match snap {
                None => shared.engine.get(&key),
                Some(id) => match shared.pins.get(id) {
                    Some(s) => s.get(&key),
                    None => {
                        m.pin_misses.fetch_add(1, Ordering::Relaxed);
                        return ok(
                            Response::error(
                                WireCode::PinExpired,
                                format!("snapshot {id} unknown or expired"),
                            ),
                            stream,
                        );
                    }
                },
            };
            let resp = match result {
                Ok(v) => Response::Value {
                    value: v.map(|b| b.as_ref().to_vec()),
                },
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::Put { key, value, sync } => {
            let opts = WriteOptions::with_sync(sync);
            let resp = match shared.engine.put_with(&opts, &key, Bytes::from(value)) {
                Ok(r) => written(r),
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::Delete { key, sync } => {
            let opts = WriteOptions::with_sync(sync);
            let resp = match shared.engine.delete_with(&opts, &key) {
                Ok(r) => written(r),
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::Write { ops, sync } => {
            let mut batch = WriteBatch::new();
            for op in ops {
                match op {
                    crate::protocol::BatchOp::Put { key, value } => {
                        batch.put(key, Bytes::from(value))
                    }
                    crate::protocol::BatchOp::Delete { key } => batch.delete(key),
                }
            }
            let opts = WriteOptions::with_sync(sync);
            let resp = match shared.engine.write_with(&opts, batch) {
                Ok(r) => written(r),
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::Scan {
            snap,
            lo,
            hi,
            limit,
        } => {
            let hi_ref = hi.as_deref();
            let iter = match snap {
                None => shared.engine.scan(&lo, hi_ref),
                Some(id) => match shared.pins.get(id) {
                    Some(s) => s.scan(&lo, hi_ref),
                    None => {
                        m.pin_misses.fetch_add(1, Ordering::Relaxed);
                        return ok(
                            Response::error(
                                WireCode::PinExpired,
                                format!("snapshot {id} unknown or expired"),
                            ),
                            stream,
                        );
                    }
                },
            };
            let iter = match iter {
                Ok(it) => it,
                Err(e) => return ok(Response::from_error(&e), stream),
            };
            stream_scan(stream, shared, conn_bucket, iter, limit)
        }
        Request::SnapOpen => {
            let id = shared.pins.open(shared.engine.snapshot());
            ok(Response::SnapId { id }, stream)
        }
        Request::SnapClose { id } => {
            let resp = if shared.pins.close(id) {
                Response::Done
            } else {
                m.pin_misses.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    WireCode::PinExpired,
                    format!("snapshot {id} unknown or expired"),
                )
            };
            ok(resp, stream)
        }
        Request::Flush => {
            let resp = match shared.engine.flush() {
                Ok(()) => Response::Done,
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::RunGc => {
            let resp = match shared.engine.run_gc() {
                Ok(report) => {
                    let agg = report.aggregate();
                    Response::GcDone {
                        jobs: report.jobs() as u32,
                        files_collected: agg.files_collected as u64,
                        records_rewritten: agg.records_rewritten,
                        bytes_reclaimed: agg.bytes_reclaimed,
                    }
                }
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::Stats => {
            let text = render_metrics(
                &shared.engine,
                &shared.metrics,
                shared.pins.len(),
                shared.streams.len(),
            );
            ok(Response::Stats { text }, stream)
        }
        Request::Shutdown => {
            let sent = ok(Response::Done, stream);
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = sent;
            false
        }
        Request::TxnBegin => {
            let id = shared.txns.open(Mutex::new(Some(shared.engine.begin())));
            ok(Response::TxnId { id }, stream)
        }
        Request::TxnGet { txn, key } => {
            let resp = match shared.txns.get(txn) {
                Some(cell) => match cell.lock().as_mut() {
                    Some(t) => match t.get(&key) {
                        Ok(v) => Response::Value {
                            value: v.map(|b| b.as_ref().to_vec()),
                        },
                        Err(e) => Response::from_error(&e),
                    },
                    None => txn_gone(m, txn),
                },
                None => txn_gone(m, txn),
            };
            ok(resp, stream)
        }
        Request::TxnPut { txn, key, value } => {
            let resp = match shared.txns.get(txn) {
                Some(cell) => match cell.lock().as_mut() {
                    Some(t) => {
                        t.put(key, Bytes::from(value));
                        Response::Done
                    }
                    None => txn_gone(m, txn),
                },
                None => txn_gone(m, txn),
            };
            ok(resp, stream)
        }
        Request::TxnDelete { txn, key } => {
            let resp = match shared.txns.get(txn) {
                Some(cell) => match cell.lock().as_mut() {
                    Some(t) => {
                        t.delete(key);
                        Response::Done
                    }
                    None => txn_gone(m, txn),
                },
                None => txn_gone(m, txn),
            };
            ok(resp, stream)
        }
        Request::TxnCommit { txn, sync } => {
            // Take ownership out of the cell (commit consumes the
            // transaction), then drop the table entry; a concurrent
            // request for the same id resolves to a typed error.
            let taken = shared.txns.get(txn).and_then(|cell| cell.lock().take());
            let resp = match taken {
                Some(t) => {
                    shared.txns.close(txn);
                    let opts = WriteOptions::with_sync(sync);
                    match t.commit_with(&opts) {
                        Ok(r) => written(r),
                        Err(e) => Response::from_error(&e),
                    }
                }
                None => txn_gone(m, txn),
            };
            ok(resp, stream)
        }
        Request::TxnRollback { txn } => {
            let taken = shared.txns.get(txn).and_then(|cell| cell.lock().take());
            let resp = match taken {
                Some(t) => {
                    shared.txns.close(txn);
                    t.rollback();
                    Response::Done
                }
                None => txn_gone(m, txn),
            };
            ok(resp, stream)
        }
        Request::SubscribeChanges { from } => {
            let from = match from {
                SubscribeSpec::Oldest => SubscribeFrom::Oldest,
                SubscribeSpec::Latest => SubscribeFrom::Latest,
                SubscribeSpec::Token(raw) => match ResumeToken::decode(&raw) {
                    Ok(t) => SubscribeFrom::Token(t),
                    Err(e) => return ok(Response::from_error(&e), stream),
                },
            };
            let resp = match shared.engine.subscribe_changes(from) {
                Ok(s) => Response::StreamId {
                    id: shared.streams.open(Mutex::new(s)),
                },
                Err(e) => Response::from_error(&e),
            };
            ok(resp, stream)
        }
        Request::PollChanges { stream: sid, max } => match shared.streams.get(sid) {
            Some(cell) => stream_changes(stream, shared, conn_bucket, &cell, max),
            None => {
                m.pin_misses.fetch_add(1, Ordering::Relaxed);
                ok(
                    Response::error(
                        WireCode::PinExpired,
                        format!("change stream {sid} unknown or expired"),
                    ),
                    stream,
                )
            }
        },
        Request::CloseStream { stream: sid } => {
            let resp = if shared.streams.close(sid) {
                Response::Done
            } else {
                m.pin_misses.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    WireCode::PinExpired,
                    format!("change stream {sid} unknown or expired"),
                )
            };
            ok(resp, stream)
        }
    }
}

/// Typed error for a transaction id that is unknown, TTL-expired, or
/// already committed/rolled back.
fn txn_gone(m: &ServerMetrics, id: u64) -> Response {
    m.pin_misses.fetch_add(1, Ordering::Relaxed);
    Response::error(
        WireCode::PinExpired,
        format!("transaction {id} unknown, expired, or already resolved"),
    )
}

/// Stream a scan as chunked frames; the final chunk carries
/// `last = true`. An iterator error mid-stream is sent as a trailing
/// error frame (clients treat it as terminating the scan). Every chunk
/// after the first takes a fresh rate-limit token; exhaustion ends the
/// scan with a `RATE_LIMITED` error frame.
fn stream_scan<E: ServeEngine>(
    stream: &mut TcpStream,
    shared: &Shared<E>,
    conn_bucket: &TokenBucket,
    iter: E::Iter,
    limit: u32,
) -> bool
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let m = &shared.metrics;
    let chunk_cap = shared.cfg.scan_chunk.max(1);
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut remaining = if limit == 0 { u64::MAX } else { limit as u64 };
    let mut first_chunk = true;
    for entry in iter {
        if remaining == 0 {
            break;
        }
        match entry {
            Ok(e) => {
                entries.push((e.key, e.value.as_ref().to_vec()));
                remaining -= 1;
                if entries.len() >= chunk_cap {
                    if !first_chunk && !take_chunk_token(shared, conn_bucket) {
                        m.rate_limited.fetch_add(1, Ordering::Relaxed);
                        m.requests_err.fetch_add(1, Ordering::Relaxed);
                        return send(
                            stream,
                            &Response::error(WireCode::RateLimited, "rate limit exceeded mid-scan"),
                        )
                        .is_ok();
                    }
                    first_chunk = false;
                    let chunk = Response::ScanChunk {
                        entries: std::mem::take(&mut entries),
                        last: false,
                    };
                    if send(stream, &chunk).is_err() {
                        return false;
                    }
                }
            }
            Err(e) => {
                m.requests_err.fetch_add(1, Ordering::Relaxed);
                return send(stream, &Response::from_error(&e)).is_ok();
            }
        }
    }
    if !first_chunk && !take_chunk_token(shared, conn_bucket) {
        m.rate_limited.fetch_add(1, Ordering::Relaxed);
        m.requests_err.fetch_add(1, Ordering::Relaxed);
        return send(
            stream,
            &Response::error(WireCode::RateLimited, "rate limit exceeded mid-scan"),
        )
        .is_ok();
    }
    m.requests_ok.fetch_add(1, Ordering::Relaxed);
    send(
        stream,
        &Response::ScanChunk {
            entries,
            last: true,
        },
    )
    .is_ok()
}

/// Put one committed change event on the wire.
fn wire_change(r: ChangeRecord) -> WireChange {
    WireChange {
        shard: r.shard as u32,
        seq: r.seq,
        key: r.key,
        value: match r.op {
            ChangeOp::Put(v) => Some(v.as_ref().to_vec()),
            ChangeOp::Delete => None,
        },
        txn: r.txn_id,
    }
}

/// Deliver pending changes from a stream as chunked `ChangeChunk`
/// frames. Each chunk carries a resume token for the position *after*
/// it, so a client that disconnects mid-poll can re-subscribe without
/// loss. A short chunk means the stream is caught up (`last = true`,
/// possibly with zero events). Like scans, every chunk after the first
/// pays a rate-limit token; exhaustion truncates the poll with an early
/// `last = true` chunk rather than an error frame — the chunk's `lag`
/// tells the client there is more, and because the bucket is charged
/// *before* events leave the cursor, a throttled poll can never drop
/// history (unlike a scan, a change stream is a position, not a
/// request-scoped iterator, so truncation is lossless).
fn stream_changes<E: ServeEngine>(
    stream: &mut TcpStream,
    shared: &Shared<E>,
    conn_bucket: &TokenBucket,
    cell: &Mutex<E::Stream>,
    max: u32,
) -> bool
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let m = &shared.metrics;
    let chunk_cap = shared.cfg.scan_chunk.max(1);
    let mut remaining = if max == 0 { u64::MAX } else { max as u64 };
    let mut s = cell.lock();
    let mut first_chunk = true;
    loop {
        // Charge *before* polling: a rejected chunk must not consume
        // events from the stream's cursor, or they would be lost — the
        // stream keeps its position and the client re-polls later.
        if !first_chunk && !take_chunk_token(shared, conn_bucket) {
            m.rate_limited.fetch_add(1, Ordering::Relaxed);
            let trunc = Response::ChangeChunk {
                events: Vec::new(),
                resume: s.resume_token().encode(),
                lag: s.lag(),
                last: true,
            };
            if send(stream, &trunc).is_err() {
                return false;
            }
            break;
        }
        first_chunk = false;
        let take = chunk_cap.min(remaining.min(usize::MAX as u64) as usize);
        let events = match s.poll_changes(take) {
            Ok(v) => v,
            Err(e) => {
                m.requests_err.fetch_add(1, Ordering::Relaxed);
                return send(stream, &Response::from_error(&e)).is_ok();
            }
        };
        remaining -= events.len() as u64;
        let last = events.len() < take || remaining == 0;
        m.cdc_events_streamed
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        let chunk = Response::ChangeChunk {
            events: events.into_iter().map(wire_change).collect(),
            resume: s.resume_token().encode(),
            lag: s.lag(),
            last,
        };
        if send(stream, &chunk).is_err() {
            return false;
        }
        if last {
            break;
        }
    }
    m.requests_ok.fetch_add(1, Ordering::Relaxed);
    true
}

// ---------------- metrics endpoint ----------------

fn metrics_loop<E: ServeEngine>(listener: TcpListener, shared: Arc<Shared<E>>)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_metrics_conn(stream, &shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Answer one HTTP/1.0 request on the metrics listener. Only
/// `GET /metrics` exists; everything else is a 404.
fn serve_metrics_conn<E: ServeEngine>(mut stream: TcpStream, shared: &Shared<E>)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 << 10 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let first_line = req.split(|b| *b == b'\r').next().unwrap_or(&[]);
    let (status, body) = if first_line.starts_with(b"GET /metrics") {
        (
            "200 OK",
            render_metrics(
                &shared.engine,
                &shared.metrics,
                shared.pins.len(),
                shared.streams.len(),
            ),
        )
    } else {
        ("404 Not Found", "only GET /metrics is served\n".to_string())
    };
    let resp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
}

/// Fetch `GET /metrics` from a running server over plain TCP; returns
/// the body. Used by the load generator and tests (no HTTP client
/// dependency exists in this workspace).
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let Some(split) = resp.find("\r\n\r\n") else {
        return Err(Error::io("malformed http response from metrics endpoint"));
    };
    if !resp.starts_with("HTTP/1.0 200") {
        return Err(Error::io(format!(
            "metrics endpoint returned: {}",
            resp.lines().next().unwrap_or("")
        )));
    }
    Ok(resp[split + 4..].to_string())
}
