//! Token-bucket rate limiting.
//!
//! Two buckets gate every request: a **global** bucket shared by all
//! connections (protects the engine) and a **per-connection** bucket
//! (protects other clients from one noisy neighbour). A request must
//! take a token from both; failing either returns a typed
//! `RATE_LIMITED` wire error immediately — the server never queues or
//! sleeps on behalf of a throttled client, so a throttled connection
//! cannot occupy a thread that compliant ones need.

use parking_lot::Mutex;
use std::time::Instant;

/// A classic token bucket: capacity `burst`, refilled at `rate` tokens
/// per second. Thread-safe; cheap enough to sit on every request.
pub struct TokenBucket {
    state: Mutex<BucketState>,
    rate: f64,
    burst: f64,
}

struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// Create a bucket that admits `rate` requests/second sustained
    /// with bursts up to `burst`. A `rate` of `0.0` disables limiting
    /// (every [`try_take`](TokenBucket::try_take) succeeds).
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            state: Mutex::new(BucketState {
                tokens: burst,
                last: Instant::now(),
            }),
            rate,
            burst,
        }
    }

    /// Unlimited bucket: never rejects.
    pub fn unlimited() -> TokenBucket {
        TokenBucket::new(0.0, 0.0)
    }

    /// Try to take one token. Returns `false` when the bucket is empty
    /// (the caller should reject with `RATE_LIMITED`).
    pub fn try_take(&self) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let mut s = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(s.last).as_secs_f64();
        s.last = now;
        s.tokens = (s.tokens + elapsed * self.rate).min(self.burst);
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_reject() {
        // 1 req/s sustained, burst of 3: the first three calls drain
        // the burst, the fourth is rejected (no meaningful time has
        // passed to refill).
        let b = TokenBucket::new(1.0, 3.0);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take());
    }

    #[test]
    fn refills_over_time() {
        let b = TokenBucket::new(1000.0, 1.0);
        assert!(b.try_take());
        assert!(!b.try_take());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(b.try_take(), "10ms at 1000/s should refill a token");
    }

    #[test]
    fn unlimited_never_rejects() {
        let b = TokenBucket::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_take());
        }
    }

    #[test]
    fn tokens_cap_at_burst() {
        // After a long idle period the bucket must not have accumulated
        // more than `burst` tokens.
        let b = TokenBucket::new(1_000_000.0, 2.0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(b.try_take());
        assert!(b.try_take());
        // Allow at most a couple more from refill during the calls
        // themselves, then it must reject.
        let extra = (0..10).filter(|_| b.try_take()).count();
        assert!(extra < 10, "bucket failed to cap at burst");
    }
}
