//! The `scavenger-server` binary: open a store on a local directory
//! and serve it over TCP.
//!
//! ```text
//! scavenger-server --data-dir /var/lib/scavenger --addr 127.0.0.1:7272 \
//!     --metrics-addr 127.0.0.1:7273 --shards 4 \
//!     --global-rate 50000 --conn-rate 5000 --max-conns 256 \
//!     --slow-query-ms 100 --pin-ttl-secs 30
//! ```
//!
//! `--shards 1` (the default) serves a single [`Db`]; anything higher
//! serves a [`DbShards`] — same binary, same protocol, chosen through
//! the one generic [`Server`] entry point. The process runs until a
//! client sends the `Shutdown` request (the load generator's
//! `--shutdown` flag, for instance), then drains and exits 0.

use scavenger::{Db, DbShards, EngineMode, FsEnv, Options, ShardedOptions};
use scavenger_server::{Server, ServerConfig, ServerHandle};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    data_dir: String,
    shards: usize,
    cfg: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data_dir: String::new(),
        shards: 1,
        cfg: ServerConfig {
            addr: "127.0.0.1:7272".to_string(),
            ..ServerConfig::default()
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--data-dir" => args.data_dir = val("--data-dir")?,
            "--addr" => args.cfg.addr = val("--addr")?,
            "--metrics-addr" => args.cfg.metrics_addr = Some(val("--metrics-addr")?),
            "--shards" => {
                args.shards = val("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--max-conns" => {
                args.cfg.max_conns = val("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--global-rate" => {
                args.cfg.global_rate = val("--global-rate")?
                    .parse()
                    .map_err(|e| format!("--global-rate: {e}"))?;
                if args.cfg.global_burst == 0.0 {
                    args.cfg.global_burst = args.cfg.global_rate;
                }
            }
            "--conn-rate" => {
                args.cfg.conn_rate = val("--conn-rate")?
                    .parse()
                    .map_err(|e| format!("--conn-rate: {e}"))?;
                if args.cfg.conn_burst == 0.0 {
                    args.cfg.conn_burst = args.cfg.conn_rate;
                }
            }
            "--global-burst" => {
                args.cfg.global_burst = val("--global-burst")?
                    .parse()
                    .map_err(|e| format!("--global-burst: {e}"))?
            }
            "--conn-burst" => {
                args.cfg.conn_burst = val("--conn-burst")?
                    .parse()
                    .map_err(|e| format!("--conn-burst: {e}"))?
            }
            "--slow-query-ms" => {
                let ms: u64 = val("--slow-query-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-query-ms: {e}"))?;
                args.cfg.slow_query_threshold = Duration::from_millis(ms);
            }
            "--pin-ttl-secs" => {
                let s: u64 = val("--pin-ttl-secs")?
                    .parse()
                    .map_err(|e| format!("--pin-ttl-secs: {e}"))?;
                args.cfg.pin_ttl = Duration::from_secs(s);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.data_dir.is_empty() {
        return Err(format!("--data-dir is required\n{USAGE}"));
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    Ok(args)
}

const USAGE: &str = "usage: scavenger-server --data-dir DIR [--addr HOST:PORT] \
[--metrics-addr HOST:PORT] [--shards N] [--max-conns N] \
[--global-rate R] [--global-burst B] [--conn-rate R] [--conn-burst B] \
[--slow-query-ms MS] [--pin-ttl-secs S]";

fn start(args: &Args) -> scavenger::Result<ServerHandle> {
    let env = Arc::new(FsEnv::new(args.data_dir.clone())?);
    if args.shards == 1 {
        let db = Db::open(Options::new(env, "db", EngineMode::Scavenger))?;
        Server::start(db, args.cfg.clone())
    } else {
        let mut opts = ShardedOptions::new(env, "db", EngineMode::Scavenger);
        opts.num_shards = args.shards;
        let db = DbShards::open(opts)?;
        Server::start(db, args.cfg.clone())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match start(&args) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("scavenger-server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "scavenger-server: serving {} shard(s) from {} on {}{}",
        args.shards,
        args.data_dir,
        handle.addr(),
        match handle.metrics_addr() {
            Some(m) => format!(", metrics on http://{m}/metrics"),
            None => String::new(),
        }
    );
    // Runs until a wire Shutdown request flips the flag; wait() then
    // returns after the full drain (workers joined, pins dropped,
    // engine flushed).
    handle.wait();
    eprintln!("scavenger-server: drained, exiting");
    ExitCode::SUCCESS
}
