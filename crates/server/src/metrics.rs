//! Server-side counters and the Prometheus exposition page.
//!
//! [`ServerMetrics`] is the service layer's own telemetry — connection
//! accounting, rate-limit and slow-query counters, per-op latency
//! histograms. [`render_metrics`] stitches it together with the
//! engine's [`DbStats`] exposition (including
//! per-shard I/O attribution from `Maintenance::per_shard_stats`) into
//! the single text page served on the `/metrics` HTTP listener and the
//! `Stats` wire request.

use parking_lot::Mutex;
use scavenger::stats::{prom_header, prom_line, render_io_prometheus};
use scavenger::{DbStats, Maintenance};
use scavenger_util::hist::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Request-op classes tracked by the per-op latency histograms.
pub const OP_LABELS: [&str; 5] = ["get", "put", "delete", "write", "scan"];

/// Live counters for the service layer. All methods are lock-free or
/// take a short histogram lock; safe to share across connection
/// threads via `Arc`.
#[derive(Default)]
pub struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    pub conns_total: AtomicU64,
    /// Connections currently being served.
    pub conns_active: AtomicU64,
    /// Connections rejected at accept time (connection cap).
    pub conns_rejected: AtomicU64,
    /// Requests rejected by a token bucket.
    pub rate_limited: AtomicU64,
    /// Requests whose latency crossed the slow-query threshold.
    pub slow_queries: AtomicU64,
    /// Requests answered, by outcome.
    pub requests_ok: AtomicU64,
    /// Requests answered with an error frame.
    pub requests_err: AtomicU64,
    /// Pinned-read requests that named an unknown/expired snapshot id.
    pub pin_misses: AtomicU64,
    /// Change events delivered in `ChangeChunk` frames.
    pub cdc_events_streamed: AtomicU64,
    /// Per-op latency histograms (microseconds), indexed like
    /// [`OP_LABELS`].
    latency_us: [Mutex<Histogram>; 5],
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Record one request's latency under its op label. Ops outside
    /// [`OP_LABELS`] (maintenance, snapshots) are counted in
    /// `requests_ok`/`requests_err` but not histogrammed.
    pub fn record_latency(&self, op: &str, latency: Duration) {
        if let Some(idx) = OP_LABELS.iter().position(|l| *l == op) {
            self.latency_us[idx]
                .lock()
                .record(latency.as_micros() as u64);
        }
    }

    /// Snapshot one op's histogram (for rendering and tests).
    pub fn latency_snapshot(&self, op: &str) -> Option<Histogram> {
        let idx = OP_LABELS.iter().position(|l| *l == op)?;
        Some(self.latency_us[idx].lock().clone())
    }

    /// Append the service-layer series to a Prometheus page.
    pub fn render(&self, out: &mut String, pinned: usize, change_streams: usize) {
        prom_header(
            out,
            "scavenger_server_connections_total",
            "counter",
            "Connections accepted since start.",
        );
        prom_line(
            out,
            "scavenger_server_connections_total",
            "",
            self.conns_total.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_connections_active",
            "gauge",
            "Connections currently open.",
        );
        prom_line(
            out,
            "scavenger_server_connections_active",
            "",
            self.conns_active.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_connections_rejected_total",
            "counter",
            "Connections refused at accept time by the connection cap.",
        );
        prom_line(
            out,
            "scavenger_server_connections_rejected_total",
            "",
            self.conns_rejected.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_rate_limited_total",
            "counter",
            "Requests rejected by a token bucket.",
        );
        prom_line(
            out,
            "scavenger_server_rate_limited_total",
            "",
            self.rate_limited.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_slow_queries_total",
            "counter",
            "Requests slower than the slow-query threshold.",
        );
        prom_line(
            out,
            "scavenger_server_slow_queries_total",
            "",
            self.slow_queries.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_requests_total",
            "counter",
            "Requests answered, by outcome.",
        );
        prom_line(
            out,
            "scavenger_server_requests_total",
            "outcome=\"ok\"",
            self.requests_ok.load(Ordering::Relaxed) as f64,
        );
        prom_line(
            out,
            "scavenger_server_requests_total",
            "outcome=\"error\"",
            self.requests_err.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_pin_misses_total",
            "counter",
            "Pinned reads that named an unknown or expired snapshot id.",
        );
        prom_line(
            out,
            "scavenger_server_pin_misses_total",
            "",
            self.pin_misses.load(Ordering::Relaxed) as f64,
        );
        prom_header(
            out,
            "scavenger_server_pinned_snapshots",
            "gauge",
            "Snapshots currently held in the server pin table.",
        );
        prom_line(out, "scavenger_server_pinned_snapshots", "", pinned as f64);
        prom_header(
            out,
            "scavenger_server_change_streams",
            "gauge",
            "Change streams currently held in the server stream table.",
        );
        prom_line(
            out,
            "scavenger_server_change_streams",
            "",
            change_streams as f64,
        );
        prom_header(
            out,
            "scavenger_server_cdc_events_streamed_total",
            "counter",
            "Change events delivered in ChangeChunk frames.",
        );
        prom_line(
            out,
            "scavenger_server_cdc_events_streamed_total",
            "",
            self.cdc_events_streamed.load(Ordering::Relaxed) as f64,
        );

        prom_header(
            out,
            "scavenger_server_op_latency_us",
            "summary",
            "Per-op request latency in microseconds.",
        );
        for (idx, op) in OP_LABELS.iter().enumerate() {
            let h = self.latency_us[idx].lock();
            if h.count() == 0 {
                continue;
            }
            for (q, p) in [("0.5", 50.0), ("0.99", 99.0)] {
                prom_line(
                    out,
                    "scavenger_server_op_latency_us",
                    &format!("op=\"{op}\",quantile=\"{q}\""),
                    h.percentile(p),
                );
            }
            prom_line(
                out,
                "scavenger_server_op_latency_us_count",
                &format!("op=\"{op}\""),
                h.count() as f64,
            );
            prom_line(
                out,
                "scavenger_server_op_latency_us_sum",
                &format!("op=\"{op}\""),
                h.sum() as f64,
            );
        }
    }
}

/// Render the full `/metrics` page: engine stats (aggregate), per-shard
/// I/O attribution, and service-layer counters.
pub fn render_metrics<E: Maintenance>(
    engine: &E,
    metrics: &ServerMetrics,
    pinned: usize,
    change_streams: usize,
) -> String {
    let mut out = String::new();
    let stats: DbStats = engine.stats();
    stats.render_prometheus(&mut out, "");

    // Per-shard I/O: one series set per member, labelled by shard
    // index. For an unsharded engine this is a single shard="0" set
    // mirroring the aggregate.
    let shards = engine.per_shard_stats();
    prom_header(
        &mut out,
        "scavenger_shard_count",
        "gauge",
        "Members reporting per-shard statistics.",
    );
    prom_line(&mut out, "scavenger_shard_count", "", shards.len() as f64);
    for (i, s) in shards.iter().enumerate() {
        render_io_prometheus(&mut out, &s.io, &format!("shard=\"{i}\""));
    }

    metrics.render(&mut out, pinned, change_streams);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_counters_and_latency_quantiles() {
        let m = ServerMetrics::new();
        m.conns_total.store(5, Ordering::Relaxed);
        m.rate_limited.store(2, Ordering::Relaxed);
        m.record_latency("get", Duration::from_micros(100));
        m.record_latency("get", Duration::from_micros(300));
        m.cdc_events_streamed.store(7, Ordering::Relaxed);
        let mut out = String::new();
        m.render(&mut out, 3, 2);
        assert!(out.contains("scavenger_server_connections_total 5\n"));
        assert!(out.contains("scavenger_server_rate_limited_total 2\n"));
        assert!(out.contains("scavenger_server_pinned_snapshots 3\n"));
        assert!(out.contains("scavenger_server_change_streams 2\n"));
        assert!(out.contains("scavenger_server_cdc_events_streamed_total 7\n"));
        assert!(out.contains("op=\"get\",quantile=\"0.99\""));
        assert!(out.contains("scavenger_server_op_latency_us_count{op=\"get\"} 2\n"));
        // Ops never recorded are omitted rather than emitting zeros.
        assert!(!out.contains("op=\"scan\""));
    }

    #[test]
    fn unknown_op_label_is_ignored() {
        let m = ServerMetrics::new();
        m.record_latency("flush", Duration::from_micros(1));
        for op in OP_LABELS {
            assert_eq!(m.latency_snapshot(op).unwrap().count(), 0);
        }
        assert!(m.latency_snapshot("flush").is_none());
    }
}
